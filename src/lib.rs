//! Facade crate for the Unison Cache (MICRO 2014) reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use unison_repro::...`. See the repository
//! README for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.

pub use unison_core as core;
pub use unison_dram as dram;
pub use unison_harness as harness;
pub use unison_memhier as memhier;
pub use unison_predictors as predictors;
pub use unison_sim as sim;
pub use unison_trace as trace;
