//! Compare all five cache organizations on one workload — a miniature
//! version of the paper's Figures 6 and 7 on a single (workload, size)
//! point, useful for understanding what each design trades away.
//!
//! ```sh
//! cargo run --release --example design_comparison [workload] [cache_mb]
//! ```
//!
//! `workload` is one of: `Data Analytics`, `Data Serving`,
//! `Software Testing`, `Web Search`, `Web Serving`, `TPC-H`
//! (case-insensitive; default `Data Serving`). `cache_mb` defaults to
//! 1024.

use unison_repro::sim::{run_experiment, Design, SimConfig};
use unison_repro::trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_name = args.first().map(String::as_str).unwrap_or("Data Serving");
    let cache_mb: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);

    let Some(spec) = workloads::by_name(workload_name) else {
        eprintln!("unknown workload {workload_name:?}; try one of:");
        for w in workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    };

    let cfg = SimConfig::bench_default();
    let size = cache_mb << 20;
    println!(
        "workload {} | cache {} MB (scale 1/{}) | {}+ accesses per design\n",
        spec.name, cache_mb, cfg.scale, cfg.accesses
    );

    let base = run_experiment(Design::NoCache, 0, &spec, &cfg);
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>12} {:>12}",
        "design", "miss%", "latency", "speedup", "offchip B/a", "stacked B/a"
    );
    for d in [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Unison1984,
        Design::Ideal,
        Design::NoCache,
    ] {
        let r = run_experiment(d, size, &spec, &cfg);
        let acc = r.cache.accesses.max(1) as f64;
        println!(
            "{:<14} {:>6.1}% {:>6.0} cy {:>8.2}x {:>12.1} {:>12.1}",
            r.design,
            r.cache.miss_ratio() * 100.0,
            r.cache.mean_latency_ps() * 3.0 / 1000.0,
            r.uipc / base.uipc,
            r.cache.offchip_bytes() as f64 / acc,
            (r.cache.stacked_read_bytes + r.cache.stacked_write_bytes) as f64 / acc,
        );
    }
    println!("\nReading the table: Alloy pays misses (no spatial fetch), Footprint pays its");
    println!("SRAM tag latency at large sizes, Unison pays neither — the paper's Table I.");
}
