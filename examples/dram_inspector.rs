//! DRAM timing inspector: poke the timing model directly and watch the
//! row-buffer and bus mechanics the cache designs are built on.
//!
//! ```sh
//! cargo run --release --example dram_inspector
//! ```

use unison_repro::dram::{ps_to_cpu_cycles, DramConfig, DramModel, Op, RowCol};

fn show(label: &str, start_ps: u64, c: unison_repro::dram::Completion) {
    println!(
        "{label:<46} cas@{:>6} first@{:>6} last@{:>6}  ({} cy)  row_hit={} act={}",
        c.cas_ps,
        c.first_data_ps,
        c.last_data_ps,
        ps_to_cpu_cycles(c.last_data_ps - start_ps),
        c.row_hit,
        c.activated,
    );
}

fn main() {
    println!("stacked DRAM (Table III): 4ch x 128-bit @1.6GHz DDR, 8KB rows\n");
    let mut d = DramModel::new(DramConfig::stacked());

    println!("-- the Unison Cache hit sequence: overlapped tag + data reads --");
    let meta = d.access(0, Op::Read, RowCol::new(0, 0), 32);
    show("32B set metadata read (row 0)", 0, meta);
    let data = d.access(0, Op::Read, RowCol::new(0, 128), 64);
    show("64B data read, predicted way (same row)", 0, data);
    println!(
        ">> the data read finishes {} CPU cycles after the metadata read — overlapped,\n>> not serialized (one extra burst, not one extra DRAM access)\n",
        ps_to_cpu_cycles(data.last_data_ps - meta.last_data_ps)
    );

    println!("-- way misprediction recovery: the row is already open --");
    let fix = d.access(data.last_data_ps, Op::Read, RowCol::new(0, 192), 64);
    show(
        "64B data read, correct way (row hit)",
        data.last_data_ps,
        fix,
    );
    println!();

    println!("-- row conflict: the expensive case --");
    let total_banks = u64::from(d.config().total_banks());
    let t0 = fix.last_data_ps + 100_000;
    let conflict = d.access(t0, Op::Read, RowCol::new(total_banks, 0), 64);
    show("64B read, different row, same bank", t0, conflict);
    println!();

    println!("-- off-chip DDR3-1600: one channel, 64-bit --");
    let mut off = DramModel::new(DramConfig::ddr3_1600());
    let a = off.access(0, Op::Read, RowCol::new(0, 0), 64);
    show("64B read (cold bank)", 0, a);
    let b = off.access(a.last_data_ps, Op::Read, RowCol::new(0, 64), 64);
    show("64B read (row-buffer hit)", a.last_data_ps, b);
    let burst = off.access(b.last_data_ps, Op::Read, RowCol::new(0, 128), 960);
    show(
        "960B footprint read (one row activation!)",
        b.last_data_ps,
        burst,
    );
    println!(
        "\n>> a whole footprint streams out of ONE off-chip row activation — the\n>> energy argument of the paper's Section V.D"
    );

    let e = off.energy();
    println!(
        "\noff-chip counters: {} activations, {} column reads, {} bytes",
        e.activations, e.read_cmds, e.bytes_read
    );
}
