//! Capacity planner: for a chosen workload, sweep stacked-DRAM capacities
//! and report what each design would deliver and what its tags cost —
//! the scalability argument of the paper condensed into one table.
//!
//! ```sh
//! cargo run --release --example capacity_planner [workload]
//! ```

use unison_repro::core::layout::{AlloyRowLayout, FcTagModel, UnisonRowLayout};
use unison_repro::sim::{run_experiment, Design, SimConfig};
use unison_repro::trace::workloads;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "TPC-H".into());
    let Some(spec) = workloads::by_name(&name) else {
        eprintln!("unknown workload {name:?}");
        std::process::exit(2);
    };

    let mut cfg = SimConfig::bench_default();
    cfg.scale = 16; // keep the multi-GB points quick
    let sizes: [u64; 4] = [1 << 30, 2 << 30, 4 << 30, 8 << 30];

    println!("capacity plan for {} (scale 1/{})\n", spec.name, cfg.scale);
    println!(
        "{:>6} | {:>9} {:>10} | {:>9} {:>10} {:>11} | {:>9} {:>10} {:>10}",
        "size",
        "AC miss%",
        "AC spdup",
        "FC miss%",
        "FC spdup",
        "FC SRAM",
        "UC miss%",
        "UC spdup",
        "UC tags"
    );
    let base = run_experiment(Design::NoCache, 0, &spec, &cfg);
    let uc_layout = UnisonRowLayout::new(15, 4);
    let ac_layout = AlloyRowLayout::paper();
    for size in sizes {
        let ac = run_experiment(Design::Alloy, size, &spec, &cfg);
        let fc = run_experiment(Design::Footprint, size, &spec, &cfg);
        let uc = run_experiment(Design::Unison, size, &spec, &cfg);
        let fc_tags = FcTagModel::for_cache_size(size);
        println!(
            "{:>5}G | {:>8.1} {:>9.2}x | {:>8.1} {:>9.2}x {:>8.1}MB* | {:>8.1} {:>9.2}x {:>7}MB",
            size >> 30,
            ac.cache.miss_ratio() * 100.0,
            ac.uipc / base.uipc,
            fc.cache.miss_ratio() * 100.0,
            fc.uipc / base.uipc,
            fc_tags.tag_mb,
            uc.cache.miss_ratio() * 100.0,
            uc.uipc / base.uipc,
            uc_layout.in_dram_tag_bytes(size) >> 20,
        );
    }
    println!("\n*  FC's SRAM tag array (on-chip!): infeasible beyond ~3MB — the paper's point.");
    println!(
        "   UC tags live in the stacked DRAM itself; AC tags cost {}MB of DRAM at 8GB (12.5%).",
        ac_layout.in_dram_tag_bytes(8 << 30) >> 20
    );
}
