//! Hierarchy explorer: demonstrates the full L1 → L2 → DRAM-cache path.
//!
//! The headline experiments feed the DRAM caches post-L2 streams
//! directly; this example instead starts from a raw (L1-level) trace,
//! filters it through the Table III SRAM hierarchy, and shows how the
//! on-chip levels strip temporal locality — the reason block-based DRAM
//! caches see such poor hit rates (§II-A of the paper).
//!
//! ```sh
//! cargo run --release --example hierarchy_explorer
//! ```

use unison_repro::core::{DramCacheModel, MemPorts, UnisonCache, UnisonConfig};
use unison_repro::memhier::HierarchyFilter;
use unison_repro::sim::{CoreParams, System};
use unison_repro::trace::{workloads, WorkloadGen};

fn main() {
    // A raw-ish trace: the generator's stream stands in for L1 demand
    // references here (tighter reuse than the post-L2 streams the
    // benches use, because the hierarchy will strip it).
    let mut spec = workloads::data_serving().scaled(16);
    spec.mean_igap = 40; // L1-level access density
    let raw = WorkloadGen::new(spec, 7).take(2_000_000);

    let mut filter = HierarchyFilter::new(16, raw);
    let cache = UnisonCache::new(UnisonConfig::new(64 << 20));
    let mut system = System::new(16, cache, MemPorts::paper_default(), CoreParams::default());
    system.run(&mut filter.by_ref(), u64::MAX);

    let fstats = *filter.stats();
    println!("L1-level records in:   {:>9}", fstats.input_records);
    println!(
        "absorbed on-chip:      {:>9} ({:.1}%)",
        fstats.input_records - fstats.output_records,
        fstats.absorption() * 100.0
    );
    println!("post-L2 misses out:    {:>9}", fstats.output_records);
    println!(
        "shared L2 miss ratio:  {:>8.1}%",
        filter.hierarchy().l2_stats().miss_ratio() * 100.0
    );

    let stats = system.cache().stats();
    println!("\nDRAM cache saw {} requests:", stats.accesses);
    println!("  miss ratio:          {:5.1}%", stats.miss_ratio() * 100.0);
    println!(
        "  footprint accuracy:  {:5.1}%",
        stats.fp_accuracy() * 100.0
    );
    println!("\nThe on-chip levels absorb the temporal reuse; what reaches the DRAM cache");
    println!("is spatially correlated but temporally cold — footprints, not hot blocks.");
}
