//! Quickstart: build a Unison Cache, run a workload through it, and read
//! the statistics the paper's evaluation is built on.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use unison_repro::core::{DramCacheModel, MemPorts, UnisonCache, UnisonConfig};
use unison_repro::sim::{CoreParams, System};
use unison_repro::trace::{workloads, WorkloadGen};

fn main() {
    // A 128 MB Unison Cache in its paper configuration: 960 B pages
    // (15 blocks + in-DRAM tag per page), 4-way sets, way prediction,
    // footprint prediction with singleton bypass.
    let cache = UnisonCache::new(UnisonConfig::new(128 << 20));
    println!(
        "Unison Cache: {} MB, {} sets x {} ways, {} blocks per 8KB row",
        cache.capacity_bytes() >> 20,
        cache.num_sets(),
        cache.config().assoc,
        cache.layout().blocks_per_row,
    );

    // The Table III memory system: 4-channel stacked DRAM + one DDR3-1600
    // channel, shared by the cache and the off-chip fill path.
    let mem = MemPorts::paper_default();

    // A 16-core pod running the synthetic Web Serving workload, scaled
    // 8x down (cache was scaled above by simply asking for 128 MB).
    let mut system = System::new(16, cache, mem, CoreParams::default());
    let mut trace = WorkloadGen::new(workloads::web_serving().scaled(8), 42);

    // Warm up (paper: two thirds of the trace), then measure.
    system.run(&mut trace, 2_000_000);
    system.reset_measurement();
    let before = system.progress();
    system.run(&mut trace, 1_000_000);
    let after = system.progress();

    let stats = system.cache().stats();
    println!("\n-- measurement over {} accesses --", stats.accesses);
    println!("miss ratio:            {:5.1}%", stats.miss_ratio() * 100.0);
    println!("  trigger misses:      {:>9}", stats.trigger_misses);
    println!("  underpredictions:    {:>9}", stats.underprediction_misses);
    println!("  singleton bypasses:  {:>9}", stats.singleton_bypasses);
    println!(
        "footprint accuracy:    {:5.1}%",
        stats.fp_accuracy() * 100.0
    );
    println!(
        "footprint overfetch:   {:5.1}%",
        stats.fp_overfetch() * 100.0
    );
    println!(
        "way-predictor accuracy:{:5.1}%",
        stats.wp_accuracy() * 100.0
    );
    println!(
        "mean access latency:   {:5.1} CPU cycles",
        stats.mean_latency_ps() * 3.0 / 1000.0
    );
    println!(
        "off-chip traffic:      {:5.1} B/access",
        stats.offchip_bytes() as f64 / stats.accesses as f64
    );

    let instr = after.instructions - before.instructions;
    let cycles = (after.elapsed_ps - before.elapsed_ps) as f64 * 3.0 / 1000.0;
    println!(
        "\npod throughput:        {:.2} user instructions/cycle",
        instr as f64 / cycles
    );
}
