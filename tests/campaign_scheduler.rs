//! Tier-1 acceptance tests for the planner/executor campaign
//! architecture: a sharded campaign, merged, must be **bit-identical**
//! to the single-process run, and a campaign resumed after a kill must
//! be **bit-identical** to an uninterrupted one. Both properties go
//! through the real serialization path (JSON files on disk), so the
//! serde round-trip of `CellResult` is pinned too.
//!
//! Cells carry per-cell `wall_ns` telemetry, which is observability —
//! never identity: two runs of the same plan read different clocks, so
//! every byte-compare here serializes `CampaignResult::canonical_cells`
//! (timing stripped). That the timing is *present* in journals and
//! results is pinned separately.

use std::path::PathBuf;

use unison_repro::harness::{
    merge_shards, Campaign, ScenarioGrid, ShardOutput, ShardSpec, TaskPlan,
};
use unison_repro::sim::{Design, Scenario, SimConfig, SystemSpec};
use unison_repro::trace::workloads;

/// A configuration even smaller than `quick_test`, for grid-shaped tests
/// that run dozens of cells.
fn tiny() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    cfg
}

/// A grid exercising every axis the planner keys on: two designs, two
/// workloads, two sizes, and a non-default scenario.
fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .designs([Design::Unison, Design::Alloy])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20])
        .scenarios([
            Scenario::default(),
            Scenario::from_spec(SystemSpec {
                cores: Some(4),
                ..SystemSpec::default()
            }),
        ])
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "unison-scheduler-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn two_shards_merged_are_bit_identical_to_the_unsharded_run() {
    let g = grid();
    let unsharded = Campaign::new(tiny()).threads(4).run_speedups(&g);
    assert_eq!(unsharded.cells().len(), 16);

    let dir = scratch("shard-merge");
    let mut files = Vec::new();
    for i in 0..2u32 {
        let out = Campaign::new(tiny())
            .threads(2)
            .run_shard_speedups(&g, ShardSpec::new(i, 2).unwrap());
        assert_eq!(out.total_cells, 16);
        assert!(
            !out.cells.is_empty() && out.cells.len() < 16,
            "a 2-way split of 16 keyed cells should give each shard some work, \
             got {} cells in shard {i}",
            out.cells.len()
        );
        // Through the real file format, like a multi-machine run.
        let path = dir.join(format!("shard-{i}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).unwrap();
        files.push(path);
    }

    let outputs: Vec<ShardOutput> = files
        .iter()
        .map(|p| serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap())
        .collect();
    assert_eq!(
        outputs.iter().map(|o| o.cells.len()).sum::<usize>(),
        16,
        "shards must partition the grid"
    );
    let merged = merge_shards(outputs).expect("complete partition merges");

    assert_eq!(
        serde_json::to_string(&merged.canonical_cells()).unwrap(),
        serde_json::to_string(&unsharded.canonical_cells()).unwrap(),
        "merged shard campaign diverged from the single-process run"
    );
    // Timing rides along without perturbing identity: the executed
    // cells carry real wall times and the merged timing block sums the
    // shards' phases.
    assert!(
        merged.cells.iter().all(|c| c.wall_ns > 0),
        "merged cells must keep their per-cell wall times"
    );
    assert!(
        merged.timing.cells_ns > 0,
        "shard timing must survive merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_kill_is_bit_identical_to_an_uninterrupted_run() {
    let g = ScenarioGrid::new()
        .designs([Design::Unison, Design::Ideal])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20]);
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);
    assert_eq!(uninterrupted.cells().len(), 8);
    assert_eq!(uninterrupted.resumed_cells, 0);

    let dir = scratch("resume");
    let path = dir.join("campaign.jsonl");

    // First run, journaled to completion...
    let first = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .run_speedups(&g);
    assert_eq!(
        serde_json::to_string(&first.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap(),
        "journaling must not change results"
    );

    // ...then "killed": keep the header, three completed entries, and a
    // torn partial line (the append a kill interrupted).
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"wall_ns\""),
        "journal entries must record per-cell wall time"
    );
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "header + one line per cell");
    let torn = format!(
        "{}\n{}\n{}\n{}\n{}",
        lines[0],
        lines[1],
        lines[2],
        lines[3],
        &lines[4][..lines[4].len() / 2]
    );
    std::fs::write(&path, torn).unwrap();

    let resumed = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .resume(true)
        .run_speedups(&g);
    assert_eq!(
        resumed.resumed_cells, 3,
        "three journaled cells restored, the torn one re-run"
    );
    assert_eq!(
        serde_json::to_string(&resumed.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap(),
        "resumed campaign diverged from the uninterrupted run"
    );

    // The journal is now complete again: a second resume restores
    // everything and simulates nothing.
    let rerun = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .resume(true)
        .run_speedups(&g);
    assert_eq!(rerun.resumed_cells, 8);
    assert_eq!(rerun.baseline_runs, 0, "nothing left to simulate");
    assert_eq!(
        serde_json::to_string(&rerun.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap()
    );
    // The restored cells are the journaled bytes: each still carries the
    // wall time the original run recorded.
    assert!(rerun.cells.iter().all(|c| c.wall_ns > 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_journal_from_a_different_campaign() {
    let dir = scratch("foreign");
    let path = dir.join("campaign.jsonl");
    let g = ScenarioGrid::new()
        .designs([Design::Ideal])
        .workloads([workloads::web_search()])
        .sizes([128 << 20]);
    Campaign::new(tiny()).threads(1).journal(&path).run(&g);

    // Same journal, different seed => different plan fingerprint.
    let mut other = tiny();
    other.seed = 7;
    let result = std::panic::catch_unwind(|| {
        Campaign::new(other)
            .threads(1)
            .journal(&path)
            .resume(true)
            .run(&g)
    });
    let err = result.expect_err("foreign journal must be refused");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("different campaign"),
        "refusal must say why: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plans_are_deterministic_across_processes_in_spirit() {
    // Re-lowering the same grid yields the same fingerprint and keys —
    // the property `--merge` uses to verify foreign shard files, and
    // what makes `--shard I/N` on N machines a true partition.
    let cfg = tiny();
    let g = grid();
    let a = TaskPlan::lower(&cfg, &g, true);
    let b = TaskPlan::lower(&cfg, &g, true);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.len(), 16);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.index, y.index);
    }
    // Shard membership is a pure function of the key.
    for pc in &a.cells {
        let s = pc.key.shard_of(4);
        assert!(s < 4);
        assert_eq!(s, b.cells[pc.index].key.shard_of(4));
    }
}

#[test]
fn sharded_runs_compute_only_their_own_dependencies() {
    // One workload appears only in cells of one shard half; the other
    // shard must not simulate its baseline or freeze its trace.
    let g = ScenarioGrid::new()
        .designs([Design::Unison, Design::Ideal])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20]);
    let full = Campaign::new(tiny()).threads(2).run_speedups(&g);
    let total_baselines = full.baseline_runs;
    assert_eq!(total_baselines, 2);

    let mut shard_baselines = 0;
    for i in 0..4u32 {
        let out = Campaign::new(tiny())
            .threads(2)
            .run_shard_speedups(&g, ShardSpec::new(i, 4).unwrap());
        // A shard needs at most one baseline per workload it touches.
        let touched: std::collections::HashSet<&str> = out
            .cells
            .iter()
            .map(|c| c.result.run.workload.as_str())
            .collect();
        assert!(
            out.baseline_runs <= touched.len(),
            "shard {i} simulated {} baselines for {} workloads",
            out.baseline_runs,
            touched.len()
        );
        shard_baselines += out.baseline_runs;
    }
    assert!(shard_baselines >= total_baselines);
}
