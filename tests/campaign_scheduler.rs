//! Tier-1 acceptance tests for the planner/executor campaign
//! architecture: a sharded campaign, merged, must be **bit-identical**
//! to the single-process run, and a campaign resumed after a kill must
//! be **bit-identical** to an uninterrupted one. Both properties go
//! through the real serialization path (JSON files on disk), so the
//! serde round-trip of `CellResult` is pinned too.
//!
//! Cells carry per-cell `wall_ns` telemetry, which is observability —
//! never identity: two runs of the same plan read different clocks, so
//! every byte-compare here serializes `CampaignResult::canonical_cells`
//! (timing stripped). That the timing is *present* in journals and
//! results is pinned separately.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use unison_repro::harness::fault::{FAULT_ENV, FAULT_ONCE_ENV};
use unison_repro::harness::{
    merge_shards, orchestrator, BalancedExecutor, Campaign, CellKey, CellResult, CostModel,
    OrchestratorConfig, ScenarioGrid, ShardOutput, ShardSpec, TaskPlan, WorkerLaunch,
};
use unison_repro::sim::{Design, Scenario, SimConfig, SystemSpec};
use unison_repro::trace::workloads;

/// A configuration even smaller than `quick_test`, for grid-shaped tests
/// that run dozens of cells.
fn tiny() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    cfg
}

/// A grid exercising every axis the planner keys on: two designs, two
/// workloads, two sizes, and a non-default scenario.
fn grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .designs([Design::Unison, Design::Alloy])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20])
        .scenarios([
            Scenario::default(),
            Scenario::from_spec(SystemSpec {
                cores: Some(4),
                ..SystemSpec::default()
            }),
        ])
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "unison-scheduler-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn two_shards_merged_are_bit_identical_to_the_unsharded_run() {
    let g = grid();
    let unsharded = Campaign::new(tiny()).threads(4).run_speedups(&g);
    assert_eq!(unsharded.cells().len(), 16);

    let dir = scratch("shard-merge");
    let mut files = Vec::new();
    for i in 0..2u32 {
        let out = Campaign::new(tiny())
            .threads(2)
            .run_shard_speedups(&g, ShardSpec::new(i, 2).unwrap());
        assert_eq!(out.total_cells, 16);
        assert!(
            !out.cells.is_empty() && out.cells.len() < 16,
            "a 2-way split of 16 keyed cells should give each shard some work, \
             got {} cells in shard {i}",
            out.cells.len()
        );
        // Through the real file format, like a multi-machine run.
        let path = dir.join(format!("shard-{i}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap()).unwrap();
        files.push(path);
    }

    let outputs: Vec<ShardOutput> = files
        .iter()
        .map(|p| serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap())
        .collect();
    assert_eq!(
        outputs.iter().map(|o| o.cells.len()).sum::<usize>(),
        16,
        "shards must partition the grid"
    );
    let merged = merge_shards(outputs).expect("complete partition merges");

    assert_eq!(
        serde_json::to_string(&merged.canonical_cells()).unwrap(),
        serde_json::to_string(&unsharded.canonical_cells()).unwrap(),
        "merged shard campaign diverged from the single-process run"
    );
    // Timing rides along without perturbing identity: the executed
    // cells carry real wall times and the merged timing block sums the
    // shards' phases.
    assert!(
        merged.cells.iter().all(|c| c.wall_ns > 0),
        "merged cells must keep their per-cell wall times"
    );
    assert!(
        merged.timing.cells_ns > 0,
        "shard timing must survive merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_kill_is_bit_identical_to_an_uninterrupted_run() {
    let g = ScenarioGrid::new()
        .designs([Design::Unison, Design::Ideal])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20]);
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);
    assert_eq!(uninterrupted.cells().len(), 8);
    assert_eq!(uninterrupted.resumed_cells, 0);

    let dir = scratch("resume");
    let path = dir.join("campaign.jsonl");

    // First run, journaled to completion...
    let first = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .run_speedups(&g);
    assert_eq!(
        serde_json::to_string(&first.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap(),
        "journaling must not change results"
    );

    // ...then "killed": keep the header, three completed entries, and a
    // torn partial line (the append a kill interrupted).
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"wall_ns\""),
        "journal entries must record per-cell wall time"
    );
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "header + one line per cell");
    let torn = format!(
        "{}\n{}\n{}\n{}\n{}",
        lines[0],
        lines[1],
        lines[2],
        lines[3],
        &lines[4][..lines[4].len() / 2]
    );
    std::fs::write(&path, torn).unwrap();

    let resumed = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .resume(true)
        .run_speedups(&g);
    assert_eq!(
        resumed.resumed_cells, 3,
        "three journaled cells restored, the torn one re-run"
    );
    assert_eq!(
        serde_json::to_string(&resumed.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap(),
        "resumed campaign diverged from the uninterrupted run"
    );

    // The journal is now complete again: a second resume restores
    // everything and simulates nothing.
    let rerun = Campaign::new(tiny())
        .threads(2)
        .journal(&path)
        .resume(true)
        .run_speedups(&g);
    assert_eq!(rerun.resumed_cells, 8);
    assert_eq!(rerun.baseline_runs, 0, "nothing left to simulate");
    assert_eq!(
        serde_json::to_string(&rerun.canonical_cells()).unwrap(),
        serde_json::to_string(&uninterrupted.canonical_cells()).unwrap()
    );
    // The restored cells are the journaled bytes: each still carries the
    // wall time the original run recorded.
    assert!(rerun.cells.iter().all(|c| c.wall_ns > 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_journal_from_a_different_campaign() {
    let dir = scratch("foreign");
    let path = dir.join("campaign.jsonl");
    let g = ScenarioGrid::new()
        .designs([Design::Ideal])
        .workloads([workloads::web_search()])
        .sizes([128 << 20]);
    Campaign::new(tiny()).threads(1).journal(&path).run(&g);

    // Same journal, different seed => different plan fingerprint.
    let mut other = tiny();
    other.seed = 7;
    let result = std::panic::catch_unwind(|| {
        Campaign::new(other)
            .threads(1)
            .journal(&path)
            .resume(true)
            .run(&g)
    });
    let err = result.expect_err("foreign journal must be refused");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("different campaign"),
        "refusal must say why: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plans_are_deterministic_across_processes_in_spirit() {
    // Re-lowering the same grid yields the same fingerprint and keys —
    // the property `--merge` uses to verify foreign shard files, and
    // what makes `--shard I/N` on N machines a true partition.
    let cfg = tiny();
    let g = grid();
    let a = TaskPlan::lower(&cfg, &g, true);
    let b = TaskPlan::lower(&cfg, &g, true);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.len(), 16);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.index, y.index);
    }
    // Shard membership is a pure function of the key.
    for pc in &a.cells {
        let s = pc.key.shard_of(4);
        assert!(s < 4);
        assert_eq!(s, b.cells[pc.index].key.shard_of(4));
    }
}

/// Re-entrant worker: the orchestrator tests spawn this test binary as
/// their shard worker processes (`subprocess_worker_entry --exact`),
/// steered by env vars. Without `UNISON_TEST_WORKER` set it is a no-op,
/// so a plain `cargo test` run skips straight past it.
#[test]
fn subprocess_worker_entry() {
    if std::env::var("UNISON_TEST_WORKER").is_err() {
        return;
    }
    let shard = ShardSpec::parse(&std::env::var("UNISON_TEST_SHARD").expect("shard env"))
        .expect("valid shard spec");
    let journal = PathBuf::from(std::env::var("UNISON_TEST_JOURNAL").expect("journal env"));
    let out_path = PathBuf::from(std::env::var("UNISON_TEST_OUT").expect("out env"));
    let mut campaign = Campaign::new(tiny())
        .threads(2)
        .journal(&journal)
        .resume(true);
    if let Ok(skip) = std::env::var("UNISON_TEST_SKIP") {
        let keys: Vec<CellKey> = skip
            .split(',')
            .filter(|k| !k.is_empty())
            .map(|k| CellKey::from_hex(k).expect("valid skip key"))
            .collect();
        campaign = campaign.exclude(keys);
    }
    let out = if std::env::var("UNISON_TEST_PARTITION").as_deref() == Ok("balanced") {
        // Like `sweep --shard I/N --partition balanced`: recompute the
        // parent's deterministic LPT partition from the shared costs
        // file and run exactly this worker's bin. If the recomputation
        // diverged from the parent's assignment, the orchestrator's
        // coverage verification would reject the output.
        let model = match std::env::var("UNISON_TEST_COSTS") {
            Ok(p) => CostModel::load(&PathBuf::from(p)).expect("costs file loads"),
            Err(_) => CostModel::new(),
        };
        let plan = TaskPlan::lower(&tiny(), &grid(), true);
        let bins = model.partition(&plan, tiny().accesses, shard.count);
        let bin = bins[shard.index as usize].clone();
        campaign.run_plan(&grid(), true, &BalancedExecutor::new(shard, bin))
    } else {
        campaign.run_shard_speedups(&grid(), shard)
    };
    orchestrator::write_shard_output(&out_path, &out).expect("write shard output");
    // Exit before libtest prints its summary: the orchestrator reads the
    // exit status and the output file, nothing else.
    std::process::exit(0);
}

/// The launch closure the orchestrator tests share: re-enter this test
/// binary as the worker, layering shared env vars (e.g. the balanced
/// partition steering) and per-worker fault env vars on top.
fn test_launcher_with(
    faults: HashMap<u32, Vec<(String, String)>>,
    shared: Vec<(String, String)>,
) -> impl Fn(&WorkerLaunch<'_>) -> Command {
    move |l| {
        let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
        cmd.args(["subprocess_worker_entry", "--exact", "--nocapture"]);
        cmd.env("UNISON_TEST_WORKER", "1")
            .env("UNISON_TEST_SHARD", l.shard.display())
            .env("UNISON_TEST_JOURNAL", &l.paths.journal)
            .env("UNISON_TEST_OUT", &l.paths.output)
            .env("UNISON_TEST_SKIP", l.skip.join(","))
            .env_remove(FAULT_ENV)
            .env_remove(FAULT_ONCE_ENV);
        for (k, v) in &shared {
            cmd.env(k, v);
        }
        for (k, v) in faults.get(&l.worker).into_iter().flatten() {
            cmd.env(k, v);
        }
        cmd
    }
}

fn test_launcher(
    faults: HashMap<u32, Vec<(String, String)>>,
) -> impl Fn(&WorkerLaunch<'_>) -> Command {
    test_launcher_with(faults, Vec::new())
}

fn canonical_json(cells: &[CellResult]) -> String {
    serde_json::to_string(cells).expect("cells serialize")
}

/// A fast supervision policy for tests: real restarts, token backoff.
fn test_orchestrator_config(workers: u32, dir: PathBuf) -> OrchestratorConfig {
    let mut cfg = OrchestratorConfig::new(workers, dir);
    cfg.backoff_base_ms = 10;
    cfg.backoff_cap_ms = 50;
    cfg.quiet = true;
    cfg
}

#[test]
fn orchestrated_run_with_two_injected_crashes_is_bit_identical() {
    let g = grid();
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);
    let plan = TaskPlan::lower(&tiny(), &g, true);
    let n0 = plan.cells.iter().filter(|c| c.key.shard_of(2) == 0).count();
    let n1 = plan.len() - n0;
    assert!(
        n0 >= 1 && n1 >= 2,
        "grid reshuffle broke the fault preconditions: shard sizes {n0}/{n1}"
    );

    let dir = scratch("orchestrate-crashes");
    let m0 = dir.join("marker-w0");
    let m1 = dir.join("marker-w1");
    // Worker 0 hard-aborts right after journaling its first cell; worker
    // 1 dies mid-append, leaving a torn journal line. Each fault fires
    // exactly once (marker files), so the restarted incarnations finish.
    let faults = HashMap::from([
        (
            0u32,
            vec![
                (FAULT_ENV.to_string(), "crash-after-cells:1".to_string()),
                (FAULT_ONCE_ENV.to_string(), m0.display().to_string()),
            ],
        ),
        (
            1u32,
            vec![
                (FAULT_ENV.to_string(), "torn-journal:2".to_string()),
                (FAULT_ONCE_ENV.to_string(), m1.display().to_string()),
            ],
        ),
    ]);
    let cfg = test_orchestrator_config(2, dir.join("scratch"));
    let outcome =
        orchestrator::run(&plan, &cfg, &test_launcher(faults)).expect("orchestrator runs");

    assert!(m0.exists(), "crash-after-cells fault must have fired");
    assert!(m1.exists(), "torn-journal fault must have fired");
    assert!(
        outcome.is_complete(),
        "both workers must recover: {:?}",
        outcome.manifest
    );
    assert_eq!(
        outcome.manifest.total_restarts, 2,
        "each injected crash costs exactly one restart"
    );
    assert_eq!(
        outcome.result.resumed_cells, 2,
        "each restarted worker restores its one durable cell from its journal"
    );
    assert_eq!(
        canonical_json(&outcome.result.canonical_cells()),
        canonical_json(&uninterrupted.canonical_cells()),
        "orchestrated campaign with two injected crashes diverged from the \
         uninterrupted single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn balanced_partition_orchestrated_run_is_bit_identical() {
    let g = grid();
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);
    let plan = TaskPlan::lower(&tiny(), &g, true);

    // Learn real costs from the uninterrupted run, like the sweep parent
    // folding a finished campaign's wall times back into costs.json.
    let mut model = CostModel::new();
    for cell in uninterrupted.cells() {
        model.observe(cell);
    }
    let dir = scratch("orchestrate-balanced");
    let costs_path = dir.join("costs.json");
    model.save(&costs_path).expect("costs save");

    let assignments = model.partition(&plan, tiny().accesses, 2);
    assert!(
        assignments.len() == 2 && assignments.iter().all(|b| !b.is_empty()),
        "LPT over 16 cells must give both workers work: {assignments:?}"
    );
    let mut cfg = test_orchestrator_config(2, dir.join("scratch"));
    cfg.assignments = Some(assignments);
    let shared = vec![
        ("UNISON_TEST_PARTITION".to_string(), "balanced".to_string()),
        (
            "UNISON_TEST_COSTS".to_string(),
            costs_path.display().to_string(),
        ),
    ];
    // The workers independently recompute the partition from the costs
    // file; any divergence from cfg.assignments fails coverage
    // verification, so completing at all pins cross-process determinism.
    let outcome = orchestrator::run(&plan, &cfg, &test_launcher_with(HashMap::new(), shared))
        .expect("orchestrator runs");
    assert!(
        outcome.is_complete(),
        "balanced partition must verify and merge: {:?}",
        outcome.manifest
    );
    assert_eq!(outcome.manifest.total_restarts, 0);
    assert!(
        outcome.manifest.imbalance_ratio >= 1.0,
        "two busy workers must yield a measured imbalance ratio, got {}",
        outcome.manifest.imbalance_ratio
    );
    assert_eq!(
        canonical_json(&outcome.result.canonical_cells()),
        canonical_json(&uninterrupted.canonical_cells()),
        "balanced-partition orchestrated campaign diverged from the \
         single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn balanced_partition_survives_an_injected_crash_bit_identically() {
    let g = grid();
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);
    let plan = TaskPlan::lower(&tiny(), &g, true);

    let dir = scratch("orchestrate-balanced-crash");
    let costs_path = dir.join("costs.json");
    // Prior-only model: a first-ever balanced campaign, before any
    // learned costs exist.
    let model = CostModel::new();
    model.save(&costs_path).expect("costs save");

    let marker = dir.join("marker-w0");
    let faults = HashMap::from([(
        0u32,
        vec![
            (FAULT_ENV.to_string(), "crash-after-cells:1".to_string()),
            (FAULT_ONCE_ENV.to_string(), marker.display().to_string()),
        ],
    )]);
    let mut cfg = test_orchestrator_config(2, dir.join("scratch"));
    cfg.assignments = Some(model.partition(&plan, tiny().accesses, 2));
    let shared = vec![
        ("UNISON_TEST_PARTITION".to_string(), "balanced".to_string()),
        (
            "UNISON_TEST_COSTS".to_string(),
            costs_path.display().to_string(),
        ),
    ];
    let outcome = orchestrator::run(&plan, &cfg, &test_launcher_with(faults, shared))
        .expect("orchestrator runs");

    assert!(marker.exists(), "crash-after-cells fault must have fired");
    assert!(
        outcome.is_complete(),
        "crashed balanced worker must restart into the same bin: {:?}",
        outcome.manifest
    );
    assert_eq!(outcome.manifest.total_restarts, 1);
    assert_eq!(
        outcome.result.resumed_cells, 1,
        "the restarted worker restores its one durable cell from its journal"
    );
    assert_eq!(
        canonical_json(&outcome.result.canonical_cells()),
        canonical_json(&uninterrupted.canonical_cells()),
        "balanced-partition campaign with an injected crash diverged from \
         the uninterrupted single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_exceeding_restart_budget_yields_partial_manifest() {
    let g = grid();
    let full = Campaign::new(tiny()).threads(4).run_speedups(&g);
    let plan = TaskPlan::lower(&tiny(), &g, true);

    let dir = scratch("orchestrate-budget");
    // No once-marker: the fault fires in EVERY incarnation, one new
    // journaled cell each, so a budget of 1 restart dies after two.
    let faults = HashMap::from([(
        0u32,
        vec![(FAULT_ENV.to_string(), "crash-after-cells:1".to_string())],
    )]);
    let mut cfg = test_orchestrator_config(1, dir.join("scratch"));
    cfg.max_restarts = 1;
    let outcome =
        orchestrator::run(&plan, &cfg, &test_launcher(faults)).expect("degrades, not errors");

    assert!(!outcome.is_complete(), "budget exhaustion must degrade");
    let m = &outcome.manifest;
    assert_eq!(m.total_restarts, 2, "initial launch + 1 restart, both die");
    assert_eq!(
        m.completed_cells, 2,
        "each incarnation journaled exactly one cell before dying"
    );
    assert_eq!(
        outcome.result.resumed_cells, 2,
        "the dead worker's durable cells are salvaged from its journal"
    );
    assert_eq!(m.quarantined.len(), plan.len() - 2);
    assert!(!m.workers[0].completed);
    let err = m.quarantined[0]
        .error
        .as_deref()
        .expect("quarantined cells carry the failure");
    assert!(
        err.contains("crash-after-cells") || err.contains("died"),
        "error must name the failure: {err}"
    );
    // The manifest landed on disk as valid JSON.
    let manifest_text = std::fs::read_to_string(&outcome.manifest_path).expect("manifest written");
    assert!(manifest_text.contains("\"complete\": false"));

    // What WAS salvaged is bit-identical to the same cells of a full run.
    let missing: HashSet<usize> = m.quarantined.iter().map(|q| q.index).collect();
    let full_cc = full.canonical_cells();
    let expect: Vec<CellResult> = (0..plan.len())
        .filter(|i| !missing.contains(i))
        .map(|i| full_cc[i].clone())
        .collect();
    assert_eq!(
        canonical_json(&outcome.result.canonical_cells()),
        canonical_json(&expect),
        "salvaged cells diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_cell_is_quarantined_and_the_rest_completes() {
    let g = grid();
    let full = Campaign::new(tiny()).threads(4).run_speedups(&g);
    let plan = TaskPlan::lower(&tiny(), &g, true);
    let poison = plan.cells[0].key.hex();

    let dir = scratch("orchestrate-poison");
    // No once-marker: the poison cell panics the worker in every
    // incarnation that attempts it, so the second consecutive death on
    // the same key triggers quarantine and the third incarnation
    // (launched with --skip-cells semantics) completes the rest.
    let faults = HashMap::from([(
        0u32,
        vec![(FAULT_ENV.to_string(), format!("panic-on-cell:{poison}"))],
    )]);
    let cfg = test_orchestrator_config(1, dir.join("scratch"));
    let outcome =
        orchestrator::run(&plan, &cfg, &test_launcher(faults)).expect("degrades, not errors");

    assert!(!outcome.is_complete());
    let m = &outcome.manifest;
    assert_eq!(
        m.quarantined.len(),
        1,
        "exactly the poison cell is lost: {:?}",
        m.quarantined
    );
    assert_eq!(m.quarantined[0].key, poison);
    assert_eq!(m.quarantined[0].index, 0);
    let err = m.quarantined[0].error.as_deref().unwrap_or_default();
    assert!(
        err.contains("poison"),
        "quarantine error must carry the panic diagnosis: {err}"
    );
    assert_eq!(
        m.total_restarts, 2,
        "two deaths on the same cell, then quarantine"
    );
    assert_eq!(outcome.result.cells.len(), plan.len() - 1);

    // Everything else matches the uninterrupted run bit-for-bit.
    let full_cc = full.canonical_cells();
    let expect: Vec<CellResult> = (1..plan.len()).map(|i| full_cc[i].clone()).collect();
    assert_eq!(
        canonical_json(&outcome.result.canonical_cells()),
        canonical_json(&expect),
        "quarantine must not perturb the surviving cells"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_campaign_resumes_bit_identically() {
    let g = grid();
    let uninterrupted = Campaign::new(tiny()).threads(4).run_speedups(&g);

    let dir = scratch("sigkill");
    let journal = dir.join("worker.journal.jsonl");
    let out_path = dir.join("worker.shard.json");
    let spawn = || {
        let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
        cmd.args(["subprocess_worker_entry", "--exact", "--nocapture"])
            .env("UNISON_TEST_WORKER", "1")
            .env("UNISON_TEST_SHARD", "1/1")
            .env("UNISON_TEST_JOURNAL", &journal)
            .env("UNISON_TEST_OUT", &out_path)
            .env_remove(FAULT_ENV)
            .env_remove(FAULT_ONCE_ENV)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .stdin(Stdio::null());
        cmd.spawn().expect("spawn worker")
    };

    // Run a real worker process and SIGKILL it once at least one cell is
    // durable (no fault injection — the raw kill -9 path).
    let mut child = spawn();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let journaled = std::fs::read(&journal)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if journaled >= 2 {
            break; // header + at least one durable cell
        }
        if child.try_wait().expect("poll worker").is_some() {
            break; // finished before we got to kill it — still a valid run
        }
        assert!(Instant::now() < deadline, "worker made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();

    // Restart from the journal; the torn tail (if the kill landed
    // mid-append) is truncated, durable cells are restored.
    let status = spawn().wait().expect("await restarted worker");
    assert!(status.success(), "restarted worker must finish: {status}");
    let out: ShardOutput =
        serde_json::from_str(&std::fs::read_to_string(&out_path).expect("shard output"))
            .expect("shard output parses");
    let merged = merge_shards(vec![out]).expect("1/1 shard covers the plan");
    assert_eq!(
        canonical_json(&merged.canonical_cells()),
        canonical_json(&uninterrupted.canonical_cells()),
        "campaign killed with SIGKILL and resumed diverged from the \
         uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_runs_compute_only_their_own_dependencies() {
    // One workload appears only in cells of one shard half; the other
    // shard must not simulate its baseline or freeze its trace.
    let g = ScenarioGrid::new()
        .designs([Design::Unison, Design::Ideal])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20]);
    let full = Campaign::new(tiny()).threads(2).run_speedups(&g);
    let total_baselines = full.baseline_runs;
    assert_eq!(total_baselines, 2);

    let mut shard_baselines = 0;
    for i in 0..4u32 {
        let out = Campaign::new(tiny())
            .threads(2)
            .run_shard_speedups(&g, ShardSpec::new(i, 4).unwrap());
        // A shard needs at most one baseline per workload it touches.
        let touched: std::collections::HashSet<&str> = out
            .cells
            .iter()
            .map(|c| c.result.run.workload.as_str())
            .collect();
        assert!(
            out.baseline_runs <= touched.len(),
            "shard {i} simulated {} baselines for {} workloads",
            out.baseline_runs,
            touched.len()
        );
        shard_baselines += out.baseline_runs;
    }
    assert!(shard_baselines >= total_baselines);
}
