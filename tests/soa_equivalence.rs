//! Golden-output equivalence suite for the SoA metadata engine.
//!
//! The hot-path refactor that moved per-set cache metadata from
//! arrays-of-structs into the struct-of-arrays `unison_core::MetaStore`
//! must be *behavior-preserving*: every design must produce bit-identical
//! hit/miss/writeback/prediction sequences — and therefore bit-identical
//! metrics — for every seed workload. These tests pin that property
//! against JSON fixtures captured from the pre-refactor tree.
//!
//! Each fixture under `tests/golden/` is the pretty-printed JSON of the
//! full [`RunResult`] (cache stats, DRAM stats, energy, UIPC) for one
//! `(design, workload, size)` cell at a small deterministic scale. The
//! comparison is a plain string comparison, so *any* divergence — one
//! extra hit, one reordered DRAM access, one differently-rounded float —
//! fails loudly.
//!
//! Regenerating fixtures (only after an *intentional* model change):
//!
//! ```text
//! UNISON_BLESS=1 cargo test --test soa_equivalence
//! ```
//!
//! then inspect the diff under `tests/golden/` before committing.

use std::fs;
use std::path::{Path, PathBuf};

use unison_repro::sim::{run_experiment, Design, RunResult, SimConfig, SystemSpec};
use unison_repro::trace::{workloads, WorkloadSpec};

/// All designs the experiments compare (the ablation way-policies are
/// covered by `UnisonAssoc(1)` + the unit tests in `unison.rs`).
fn all_designs() -> Vec<Design> {
    vec![
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Unison1984,
        Design::UnisonAssoc(1),
        Design::Ideal,
        Design::NoCache,
    ]
}

/// Small deterministic configuration: ÷64 scale, fixed seed, short
/// traces. Big enough to exercise evictions, writebacks, way and
/// footprint prediction, singleton bypasses; small enough to keep the
/// whole suite in seconds.
fn golden_cfg() -> SimConfig {
    SimConfig {
        accesses: 60_000,
        warmup_fraction: 0.5,
        system: SystemSpec::default(),
        seed: 42,
        scale: 64,
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn fixture_path(design: Design, spec: &WorkloadSpec, cache_bytes: u64) -> PathBuf {
    golden_dir().join(format!(
        "{}__{}__{}m.json",
        slug(&design.name()),
        slug(spec.name),
        cache_bytes >> 20
    ))
}

fn render(result: &RunResult) -> String {
    let mut s = serde_json::to_string_pretty(result).expect("render RunResult");
    s.push('\n');
    s
}

/// Runs one cell and compares (or, under `UNISON_BLESS=1`, rewrites) its
/// fixture. Returns an error string instead of panicking so callers can
/// report every divergent cell at once.
fn check_cell(design: Design, spec: &WorkloadSpec, cache_bytes: u64) -> Result<(), String> {
    let result = run_experiment(design, cache_bytes, spec, &golden_cfg());
    let rendered = render(&result);
    let path = fixture_path(design, spec, cache_bytes);
    if std::env::var("UNISON_BLESS").is_ok() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, rendered).expect("write fixture");
        return Ok(());
    }
    let expected = fs::read_to_string(&path).map_err(|e| {
        format!(
            "{}: missing fixture {} ({e}); regenerate with UNISON_BLESS=1",
            design.name(),
            path.display()
        )
    })?;
    if rendered != expected {
        return Err(format!(
            "{} on '{}' @ {}MB diverged from {}",
            design.name(),
            spec.name,
            cache_bytes >> 20,
            path.display()
        ));
    }
    Ok(())
}

fn check_design_over_all_workloads(design: Design) {
    let mut failures = Vec::new();
    for w in workloads::all() {
        if let Err(e) = check_cell(design, &w, 128 << 20) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "golden divergence:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn golden_alloy() {
    check_design_over_all_workloads(Design::Alloy);
}

#[test]
fn golden_footprint() {
    check_design_over_all_workloads(Design::Footprint);
}

#[test]
fn golden_unison() {
    check_design_over_all_workloads(Design::Unison);
}

#[test]
fn golden_unison_1984() {
    check_design_over_all_workloads(Design::Unison1984);
}

#[test]
fn golden_unison_direct_mapped() {
    check_design_over_all_workloads(Design::UnisonAssoc(1));
}

#[test]
fn golden_ideal() {
    check_design_over_all_workloads(Design::Ideal);
}

#[test]
fn golden_nocache() {
    check_design_over_all_workloads(Design::NoCache);
}

/// Geometry variety: a larger Unison cache changes sets-per-row packing,
/// set counts, and eviction pressure; pin it on a subset of workloads.
#[test]
fn golden_unison_512m() {
    let mut failures = Vec::new();
    for w in [
        workloads::web_search(),
        workloads::data_serving(),
        workloads::tpch(),
    ] {
        if let Err(e) = check_cell(Design::Unison, &w, 512 << 20) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "golden divergence:\n  {}",
        failures.join("\n  ")
    );
}

/// The fixture set on disk must exactly match the set of cells this suite
/// checks — no stale fixtures from renamed designs or workloads.
#[test]
fn golden_directory_has_no_strays() {
    if std::env::var("UNISON_BLESS").is_ok() {
        return; // directory is being rewritten
    }
    let mut expected: Vec<String> = Vec::new();
    for d in all_designs() {
        for w in workloads::all() {
            expected.push(
                fixture_path(d, &w, 128 << 20)
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .into_owned(),
            );
        }
    }
    for w in [
        workloads::web_search(),
        workloads::data_serving(),
        workloads::tpch(),
    ] {
        expected.push(
            fixture_path(Design::Unison, &w, 512 << 20)
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned(),
        );
    }
    expected.sort();
    let mut on_disk: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden exists; regenerate with UNISON_BLESS=1")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    assert_eq!(
        on_disk, expected,
        "stale or missing fixtures under tests/golden"
    );
}

/// The refactor's performance claim, measured rather than asserted in
/// prose: the SoA probe/touch walk must be no slower than the
/// pre-refactor nested-Vec arrays-of-structs walk on a scattered set
/// stream. Timing-sensitive, so it is `#[ignore]`d from the fast suite
/// and run in release mode by the nightly CI job
/// (`cargo test --release -- --include-ignored`).
#[test]
#[ignore = "perf assertion; meaningful in --release only (nightly CI runs it)"]
fn soa_probe_path_no_slower_than_nested_vec_walk() {
    use std::hint::black_box;
    use std::time::Instant;
    use unison_repro::core::meta::reference::NaiveStore;
    use unison_repro::core::{MetaStore, PageMeta, Replacement};

    const SETS: u64 = 1 << 16;
    const WAYS: u32 = 4;
    const OPS: u64 = 2_000_000;

    let mut soa = MetaStore::paged(SETS, WAYS, Replacement::AgingLru);
    let mut naive = NaiveStore::paged(SETS, WAYS, Replacement::AgingLru);
    for set in 0..SETS {
        for w in 0..WAYS {
            let meta = PageMeta {
                tag: u64::from(w) * 3 + (set % 5),
                present: 0x7ff,
                ..PageMeta::default()
            };
            soa.install(set, w, meta);
            naive.install(set, w, meta);
        }
    }

    let walk = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % SETS;
    let mut time_soa = f64::INFINITY;
    let mut time_naive = f64::INFINITY;
    // Interleaved best-of-5 to cancel frequency/thermal drift.
    for _ in 0..5 {
        let t = Instant::now();
        for i in 0..OPS {
            let set = walk(i);
            if let Some(w) = soa.probe_set(set, i % 16) {
                soa.touch(set, w, 0);
            }
            black_box(());
        }
        time_soa = time_soa.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for i in 0..OPS {
            let set = walk(i);
            if let Some(w) = naive.probe_set(set, i % 16) {
                naive.touch(set, w, 0);
            }
            black_box(());
        }
        time_naive = time_naive.min(t.elapsed().as_secs_f64());
    }
    println!(
        "probe+touch over {OPS} ops: SoA {:.1} ms vs nested-Vec {:.1} ms ({:.2}x)",
        time_soa * 1e3,
        time_naive * 1e3,
        time_naive / time_soa
    );
    // 10% tolerance absorbs timer noise; the expectation is a clear win.
    assert!(
        time_soa <= time_naive * 1.10,
        "SoA probe path slower than the nested-Vec walk: {:.1} ms vs {:.1} ms",
        time_soa * 1e3,
        time_naive * 1e3
    );
}

/// The vectorization claim, measured: the lane-parallel `probe_set`
/// must beat the retained scalar reference by a clear margin on a wide
/// set — 32 ways is where the chunked tag compare pays for its setup.
/// Mostly-miss probes force full-set scans, the vectorized kernel's
/// best case and the scalar loop's worst. Timing-sensitive, so it is
/// `#[ignore]`d from the fast suite and run in release mode by the
/// nightly CI job (`cargo test --release -- --include-ignored`).
#[test]
#[ignore = "perf assertion; meaningful in --release only (nightly CI runs it)"]
fn vectorized_probe_beats_scalar_reference() {
    use std::hint::black_box;
    use std::time::Instant;
    use unison_repro::core::{MetaStore, PageMeta, Replacement};

    const SETS: u64 = 1 << 14;
    const WAYS: u32 = 32;
    const OPS: u64 = 2_000_000;

    let mut store = MetaStore::paged(SETS, WAYS, Replacement::AgingLru);
    for set in 0..SETS {
        for w in 0..WAYS {
            store.install(
                set,
                w,
                PageMeta {
                    tag: u64::from(w) * 3 + (set % 5),
                    present: 0x7ff,
                    ..PageMeta::default()
                },
            );
        }
    }

    // Tags up to 32*3 + 4 are installed; probing `i % 997` makes most
    // probes misses that must scan every way.
    let walk = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % SETS;
    let mut time_vec = f64::INFINITY;
    let mut time_scalar = f64::INFINITY;
    // Interleaved best-of-5 to cancel frequency/thermal drift.
    for _ in 0..5 {
        let t = Instant::now();
        for i in 0..OPS {
            black_box(store.probe_set(walk(i), i % 997));
        }
        time_vec = time_vec.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for i in 0..OPS {
            black_box(store.probe_set_scalar(walk(i), i % 997));
        }
        time_scalar = time_scalar.min(t.elapsed().as_secs_f64());
    }
    println!(
        "{WAYS}-way probe over {OPS} ops: vectorized {:.1} ms vs scalar {:.1} ms ({:.2}x)",
        time_vec * 1e3,
        time_scalar * 1e3,
        time_scalar / time_vec
    );
    assert!(
        time_vec * 1.2 <= time_scalar,
        "vectorized probe is not >=1.2x the scalar reference: {:.1} ms vs {:.1} ms ({:.2}x)",
        time_vec * 1e3,
        time_scalar * 1e3,
        time_scalar / time_vec
    );
}

/// Cheap sanity on the fixtures themselves: the golden runs must exercise
/// the machinery the refactor touches (evictions, writebacks, way and
/// footprint prediction), otherwise "equivalence" would be vacuous.
#[test]
fn golden_runs_exercise_the_hot_paths() {
    let cfg = golden_cfg();
    let r = run_experiment(Design::Unison, 128 << 20, &workloads::web_serving(), &cfg);
    assert!(r.cache.hits > 0, "golden run never hit");
    assert!(
        r.cache.trigger_misses > 0,
        "golden run never trigger-missed"
    );
    assert!(r.cache.evictions > 0, "golden run never evicted");
    assert!(r.cache.writeback_blocks > 0, "golden run never wrote back");
    assert!(
        r.cache.wp_lookups > 0,
        "golden run never consulted the way predictor"
    );
    assert!(
        r.cache.fp_actual_blocks > 0,
        "golden run never trained the footprint predictor"
    );
}
