//! Integration tests for the scenario layer.
//!
//! Three properties carry the refactor:
//!
//! 1. **Backward bit-identity** — the default [`Scenario`] reproduces the
//!    seed-era constants, so default campaigns match the golden fixtures
//!    under `tests/golden/` byte for byte (the fixtures themselves are
//!    checked by `tests/soa_equivalence.rs`, which ran unchanged through
//!    this refactor; here we pin the spec-level equalities that make that
//!    so).
//! 2. **Memo-key hygiene** — scenarios that simulate different machines
//!    must never share a baseline or (when the trace differs) a frozen
//!    trace artifact.
//! 3. **Serde round-trip** — specs survive JSON → spec → JSON untouched,
//!    and the checked-in `examples/scenarios/*.json` files load.

use std::sync::Arc;

use unison_repro::dram::DramPreset;
use unison_repro::harness::{sink, BaselineStore, Campaign, ScenarioGrid, TraceStore};
use unison_repro::sim::{
    run_experiment, scenarios_from_json, CoreParams, Design, Scenario, SimConfig, SystemSpec,
};
use unison_repro::trace::{artifact_key, workloads};

fn quick() -> SimConfig {
    SimConfig::quick_test()
}

fn spec_with(f: impl FnOnce(&mut SystemSpec)) -> SystemSpec {
    let mut s = SystemSpec::default();
    f(&mut s);
    s
}

// ---------------------------------------------------------------- defaults

/// `Scenario::default()` must be the seed-era machine: Table III DRAM
/// devices, the default core model, no geometry overrides — i.e. exactly
/// the constants `run_experiment` hard-coded before the scenario layer.
#[test]
fn default_scenario_is_the_seed_era_machine() {
    let s = Scenario::default();
    assert_eq!(s.name, "default");
    assert_eq!(s.system, SystemSpec::default());
    assert_eq!(s.system.cores, None, "workload's own 16-core pod");
    assert_eq!(s.system.core, CoreParams::default());
    assert_eq!(s.system.page_bytes, None, "design default: 960 B pages");
    assert_eq!(s.system.ways, None, "design default: 4-way");
    assert_eq!(s.system.way_policy, None, "design default: way prediction");
    assert_eq!(s.system.stacked, DramPreset::Stacked);
    assert_eq!(s.system.offchip, DramPreset::Ddr3_1600);
    // And the devices those presets name are the Table III pair.
    assert_eq!(
        s.system.stacked.config(),
        unison_repro::dram::DramConfig::stacked()
    );
    assert_eq!(
        s.system.offchip.config(),
        unison_repro::dram::DramConfig::ddr3_1600()
    );
}

/// A run under an *explicitly spelled-out* default scenario must be
/// bit-identical to the plain default run — the same property the golden
/// fixtures pin, expressed at the API level.
#[test]
fn explicit_default_scenario_matches_default_run_bit_for_bit() {
    let cfg = quick();
    let w = workloads::web_search();
    let implicit = run_experiment(Design::Unison, 128 << 20, &w, &cfg);

    let mut explicit_cfg = cfg;
    explicit_cfg.system = SystemSpec {
        cores: Some(16), // == every preset workload's own pod size
        core: CoreParams::default(),
        page_bytes: Some(960),
        ways: Some(4),
        way_policy: Some(unison_repro::core::WayPolicy::Predict),
        stacked: DramPreset::Stacked,
        offchip: DramPreset::Ddr3_1600,
    };
    let explicit = run_experiment(Design::Unison, 128 << 20, &w, &explicit_cfg);
    assert_eq!(
        serde_json::to_string(&implicit).unwrap(),
        serde_json::to_string(&explicit).unwrap(),
        "spelling out the defaults must not change a single bit"
    );
}

/// Non-default knobs must actually reach the simulation: every axis the
/// acceptance criteria name (core count, DRAM preset, way policy) changes
/// the measured result.
#[test]
fn each_scenario_axis_changes_results() {
    let cfg = quick();
    let w = workloads::web_search();
    let baseline = run_experiment(Design::Unison, 128 << 20, &w, &cfg);

    let axes: Vec<(&str, SystemSpec)> = vec![
        ("cores", spec_with(|s| s.cores = Some(4))),
        (
            "stacked preset",
            spec_with(|s| s.stacked = DramPreset::StackedHalf),
        ),
        (
            "offchip preset",
            spec_with(|s| s.offchip = DramPreset::Ddr4_2400),
        ),
        (
            "way policy",
            spec_with(|s| s.way_policy = Some(unison_repro::core::WayPolicy::SerialTagData)),
        ),
        ("ways", spec_with(|s| s.ways = Some(1))),
        ("page bytes", spec_with(|s| s.page_bytes = Some(1984))),
    ];
    for (what, system) in axes {
        let mut c = cfg;
        c.system = system;
        let r = run_experiment(Design::Unison, 128 << 20, &w, &c);
        assert_ne!(
            r.elapsed_ps, baseline.elapsed_ps,
            "{what} override did not reach the simulation"
        );
    }
}

// ---------------------------------------------------------- memo rekeying

/// Two scenarios differing only in core count must not share a baseline
/// *or* a trace artifact: the trace stream itself depends on the pod
/// size, so both stores re-key.
#[test]
fn core_count_rekeys_baseline_and_trace_stores() {
    let cfg = quick();
    let w = workloads::web_search();
    let four = spec_with(|s| s.cores = Some(4));

    // Baseline store: two distinct simulations.
    let baselines = BaselineStore::new(cfg);
    let b16 = baselines.get_for_system(&w, &SystemSpec::default(), 42);
    let b4 = baselines.get_for_system(&w, &four, 42);
    assert_eq!(
        baselines.computed_runs(),
        2,
        "no sharing across core counts"
    );
    assert_eq!(baselines.cache_hits(), 0);
    assert_ne!(b16.uipc, b4.uipc);

    // Trace store: the scaled specs differ, so the artifact keys differ.
    let mut cfg4 = cfg;
    cfg4.system = four;
    let plan16 = cfg.trace_plan(&w, 128 << 20);
    let plan4 = cfg4.trace_plan(&w, 128 << 20);
    assert_ne!(
        artifact_key(&plan16.scaled_spec, 42),
        artifact_key(&plan4.scaled_spec, 42),
        "core-count scenarios must freeze distinct artifacts"
    );
    let traces = TraceStore::new();
    let a16 = traces.get(&plan16.scaled_spec, 42, 1_000);
    let a4 = traces.get(&plan4.scaled_spec, 42, 1_000);
    assert_eq!(traces.generated_traces(), 2, "one freeze per machine");
    assert!(!Arc::ptr_eq(&a16, &a4));
}

/// Two scenarios differing only in DRAM preset must not share a baseline
/// (the devices' timing changes every latency). The trace stream is
/// DRAM-independent by construction, so the artifact *is* shared — that
/// sharing is the memoization win, and it is safe precisely because the
/// artifact key covers everything that shapes the stream.
#[test]
fn dram_preset_rekeys_baselines_but_shares_the_dram_independent_trace() {
    let cfg = quick();
    let w = workloads::web_search();
    let fast = spec_with(|s| {
        s.stacked = DramPreset::Stacked2x;
        s.offchip = DramPreset::Ddr4_2400;
    });

    let baselines = BaselineStore::new(cfg);
    let slow_b = baselines.get_for_system(&w, &SystemSpec::default(), 42);
    let fast_b = baselines.get_for_system(&w, &fast, 42);
    assert_eq!(
        baselines.computed_runs(),
        2,
        "a DDR4/2x-stack baseline must not be reused for the Table III machine"
    );
    assert_ne!(slow_b.uipc, fast_b.uipc);

    let mut cfg_fast = cfg;
    cfg_fast.system = fast;
    let traces = TraceStore::new();
    let a = traces.get(&cfg.trace_plan(&w, 128 << 20).scaled_spec, 42, 1_000);
    let b = traces.get(&cfg_fast.trace_plan(&w, 128 << 20).scaled_spec, 42, 1_000);
    assert_eq!(traces.generated_traces(), 1, "trace is DRAM-independent");
    assert!(Arc::ptr_eq(&a, &b));
}

// ------------------------------------------------------------ round trips

#[test]
fn scenario_serde_round_trips_identically() {
    let scenarios = vec![
        Scenario::default(),
        Scenario::from_spec(spec_with(|s| {
            s.cores = Some(32);
            s.page_bytes = Some(1984);
            s.ways = Some(8);
            s.way_policy = Some(unison_repro::core::WayPolicy::ParallelFetch);
            s.stacked = DramPreset::Stacked2x;
            s.offchip = DramPreset::Ddr4_2400;
            s.core = CoreParams {
                ipc_base: 4.0,
                overlap_cycles: 48,
                stall_on_stores: true,
            };
        })),
    ];
    let json = serde_json::to_string_pretty(&scenarios).unwrap();
    let back = scenarios_from_json(&json).unwrap();
    assert_eq!(back, scenarios);
    assert_eq!(
        serde_json::to_string_pretty(&back).unwrap(),
        json,
        "JSON -> spec -> JSON must be the identity"
    );
}

/// The checked-in example scenario files (which CI smoke-runs) must load
/// and cover the axes the acceptance criteria name.
#[test]
fn example_scenario_files_load_and_cover_the_new_axes() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("scenarios");

    let axes = std::fs::read_to_string(dir.join("axes.json")).expect("axes.json exists");
    let scenarios = scenarios_from_json(&axes).expect("axes.json parses");
    assert!(scenarios.len() >= 3);
    assert!(
        scenarios
            .iter()
            .any(|s| s.system.cores.is_some_and(|c| c != 16)),
        "axes.json exercises a non-default core count"
    );
    assert!(
        scenarios
            .iter()
            .any(|s| s.system.stacked != DramPreset::Stacked
                || s.system.offchip != DramPreset::Ddr3_1600),
        "axes.json exercises a non-default DRAM preset"
    );
    assert!(
        scenarios.iter().any(|s| s.system.way_policy.is_some()),
        "axes.json exercises a non-default way policy"
    );

    let small = std::fs::read_to_string(dir.join("small-pod.json")).expect("small-pod.json exists");
    let small = scenarios_from_json(&small).expect("small-pod.json parses");
    assert_eq!(small.len(), 1);
    assert_eq!(small[0].name, "small-pod");
    assert_eq!(small[0].system.cores, Some(8));
}

// ------------------------------------------------------------- end to end

/// A campaign over the example `axes.json` scenario axis runs end to end,
/// keeps per-machine results distinct, and emits self-describing sinks.
#[test]
fn scenario_campaign_end_to_end_with_sinks() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("scenarios");
    let scenarios =
        scenarios_from_json(&std::fs::read_to_string(dir.join("axes.json")).unwrap()).unwrap();
    let n = scenarios.len();

    let mut cfg = quick();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    let grid = ScenarioGrid::new()
        .designs([Design::Unison])
        .workloads([workloads::web_search()])
        .sizes([256 << 20])
        .scenarios(scenarios);
    let results = Campaign::new(cfg).threads(4).run_speedups(&grid);

    assert_eq!(results.cells().len(), n);
    // Every machine is distinct, so every baseline is distinct.
    assert_eq!(results.baseline_runs, n);
    // The quad-core scenario must differ from the default.
    let default = results
        .get_in_scenario("default", "Web Search", "Unison", 256 << 20, 42)
        .expect("default cell");
    let quad = results
        .get_in_scenario("quad-core", "Web Search", "Unison", 256 << 20, 42)
        .expect("quad-core cell");
    assert_eq!(default.cores, 16);
    assert_eq!(quad.cores, 4);
    assert_ne!(default.run.elapsed_ps, quad.run.elapsed_ps);

    // CSV: scenario columns present and populated per row.
    let csv = sink::to_csv(&results);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    for col in [
        "scenario",
        "cores",
        "page_bytes",
        "ways",
        "way_policy",
        "stacked_dram",
    ] {
        assert!(header.contains(col), "CSV header missing {col}: {header}");
    }
    assert!(
        csv.lines()
            .skip(1)
            .any(|l| l.contains("quad-core") && l.contains(",4,")),
        "quad-core row carries its core count:\n{csv}"
    );
    assert!(
        csv.lines()
            .skip(1)
            .any(|l| l.contains("wide-stack") && l.contains("stacked-2x")),
        "wide-stack row names its DRAM preset:\n{csv}"
    );

    // JSON: the full system spec rides along with every cell.
    let json = sink::to_json(&results);
    assert!(json.contains("\"scenario\""));
    assert!(json.contains("\"stacked\": \"stacked-2x\""));
    assert!(json.contains("\"way_policy\": \"serial-tag-data\""));
}

/// Parallel and serial scenario campaigns agree byte for byte — the
/// determinism guarantee extends to the new axis.
#[test]
fn scenario_campaigns_are_deterministic_across_thread_counts() {
    let quad = Scenario::from_spec(spec_with(|s| s.cores = Some(4)));
    let mut cfg = quick();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    let grid = ScenarioGrid::new()
        .designs([Design::Unison, Design::Ideal])
        .workloads([workloads::web_search()])
        .sizes([128 << 20])
        .scenarios([Scenario::default(), quad]);
    let serial = Campaign::new(cfg).threads(1).run_speedups(&grid);
    let parallel = Campaign::new(cfg).threads(4).run_speedups(&grid);
    assert_eq!(
        serde_json::to_string(&serial.canonical_cells()).unwrap(),
        serde_json::to_string(&parallel.canonical_cells()).unwrap(),
        "scenario campaigns must stay deterministic under parallelism"
    );
}
