//! Integration tests: the full trace → system → cache → DRAM pipeline.

use unison_repro::core::{
    AlloyCache, AlloyConfig, DramCacheModel, FootprintCache, FootprintConfig, IdealCache, MemPorts,
    NoCache, UnisonCache, UnisonConfig,
};
use unison_repro::sim::{run_experiment, run_speedup, CoreParams, Design, SimConfig, System};
use unison_repro::trace::{workloads, WorkloadGen};

fn quick() -> SimConfig {
    SimConfig::quick_test()
}

#[test]
fn every_design_runs_every_workload() {
    let cfg = quick();
    for w in workloads::all() {
        for d in [
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Unison1984,
            Design::Ideal,
            Design::NoCache,
        ] {
            let r = run_experiment(d, 256 << 20, &w, &cfg);
            assert!(
                r.uipc > 0.0,
                "{} on {} produced no progress",
                d.name(),
                w.name
            );
            assert!(
                r.cache.miss_ratio() >= 0.0 && r.cache.miss_ratio() <= 1.0,
                "{} on {}: miss ratio out of range",
                d.name(),
                w.name
            );
        }
    }
}

#[test]
fn ideal_dominates_and_nocache_trails() {
    // Ideal must beat every real design; every real design with a
    // reasonable hit rate must beat no-cache (on a memory-bound load).
    let cfg = quick();
    let w = workloads::data_serving();
    let ideal = run_experiment(Design::Ideal, 1 << 30, &w, &cfg);
    let base = run_experiment(Design::NoCache, 0, &w, &cfg);
    for d in [Design::Footprint, Design::Unison] {
        let r = run_experiment(d, 1 << 30, &w, &cfg);
        assert!(
            r.uipc <= ideal.uipc * 1.02,
            "{} beat the ideal cache: {} vs {}",
            d.name(),
            r.uipc,
            ideal.uipc
        );
        assert!(
            r.uipc > base.uipc,
            "{} lost to no-cache on a cache-friendly load",
            d.name()
        );
    }
}

#[test]
fn page_based_designs_beat_alloy_on_miss_ratio() {
    // The paper's central premise (§II): spatial fetching buys hit rate.
    let cfg = quick();
    for w in [workloads::web_search(), workloads::data_serving()] {
        let ac = run_experiment(Design::Alloy, 512 << 20, &w, &cfg);
        let fc = run_experiment(Design::Footprint, 512 << 20, &w, &cfg);
        let uc = run_experiment(Design::Unison, 512 << 20, &w, &cfg);
        assert!(
            fc.cache.miss_ratio() < ac.cache.miss_ratio(),
            "{}: FC {} !< AC {}",
            w.name,
            fc.cache.miss_ratio(),
            ac.cache.miss_ratio()
        );
        assert!(
            uc.cache.miss_ratio() < ac.cache.miss_ratio(),
            "{}: UC {} !< AC {}",
            w.name,
            uc.cache.miss_ratio(),
            ac.cache.miss_ratio()
        );
    }
}

#[test]
fn miss_ratio_falls_with_cache_size() {
    let cfg = quick();
    let w = workloads::web_serving();
    let small = run_experiment(Design::Unison, 128 << 20, &w, &cfg);
    let large = run_experiment(Design::Unison, 1 << 30, &w, &cfg);
    assert!(
        large.cache.miss_ratio() < small.cache.miss_ratio(),
        "1GB ({}) should miss less than 128MB ({})",
        large.cache.miss_ratio(),
        small.cache.miss_ratio()
    );
}

#[test]
fn associativity_helps_page_based_unison() {
    // Figure 5's effect: 4-way cuts conflicts vs direct-mapped.
    let cfg = quick();
    let w = workloads::data_serving();
    let dm = run_experiment(Design::UnisonAssoc(1), 256 << 20, &w, &cfg);
    let w4 = run_experiment(Design::UnisonAssoc(4), 256 << 20, &w, &cfg);
    assert!(
        w4.cache.miss_ratio() < dm.cache.miss_ratio(),
        "4-way {} !< direct-mapped {}",
        w4.cache.miss_ratio(),
        dm.cache.miss_ratio()
    );
}

#[test]
fn speedups_are_computed_against_nocache() {
    let cfg = quick();
    let s = run_speedup(Design::NoCache, 0, &workloads::web_search(), &cfg);
    assert!(
        (s.speedup - 1.0).abs() < 1e-9,
        "no-cache speedup over itself must be exactly 1.0, got {}",
        s.speedup
    );
}

#[test]
fn runs_are_deterministic() {
    let cfg = quick();
    let a = run_experiment(Design::Unison, 256 << 20, &workloads::tpch(), &cfg);
    let b = run_experiment(Design::Unison, 256 << 20, &workloads::tpch(), &cfg);
    assert_eq!(
        a.cache, b.cache,
        "identical configs must give identical stats"
    );
    assert_eq!(a.elapsed_ps, b.elapsed_ps);
}

#[test]
fn different_seeds_change_results_but_not_shape() {
    let mut cfg = quick();
    let a = run_experiment(Design::Unison, 256 << 20, &workloads::web_serving(), &cfg);
    cfg.seed = 1234;
    let b = run_experiment(Design::Unison, 256 << 20, &workloads::web_serving(), &cfg);
    assert_ne!(a.cache, b.cache);
    assert!((a.cache.miss_ratio() - b.cache.miss_ratio()).abs() < 0.1);
}

#[test]
fn predictor_statistics_populate_per_design() {
    let cfg = quick();
    let w = workloads::web_serving();
    let ac = run_experiment(Design::Alloy, 256 << 20, &w, &cfg);
    assert!(
        ac.cache.mp_accuracy() > 0.0,
        "alloy must report MP accuracy"
    );
    assert_eq!(ac.cache.wp_lookups, 0, "alloy has no way predictor");
    let uc = run_experiment(Design::Unison, 256 << 20, &w, &cfg);
    assert!(
        uc.cache.wp_accuracy() > 0.0,
        "unison must report WP accuracy"
    );
    assert!(
        uc.cache.fp_accuracy() > 0.0,
        "unison must report FP accuracy"
    );
    let fc = run_experiment(Design::Footprint, 256 << 20, &w, &cfg);
    assert!(
        fc.cache.fp_accuracy() > 0.0,
        "footprint must report FP accuracy"
    );
    assert_eq!(fc.cache.wp_lookups, 0, "footprint has no way predictor");
}

#[test]
fn traffic_conservation_holds() {
    // Fills plus writebacks must match the off-chip byte counters.
    let cfg = quick();
    let r = run_experiment(
        Design::Unison,
        256 << 20,
        &workloads::software_testing(),
        &cfg,
    );
    let s = &r.cache;
    assert_eq!(
        s.offchip_read_bytes,
        (s.fill_blocks + s.singleton_bypasses) * 64,
        "off-chip reads must equal fills plus forwarded singleton blocks"
    );
    assert_eq!(
        s.offchip_write_bytes,
        s.writeback_blocks * 64,
        "off-chip writes must equal writebacks"
    );
}

#[test]
fn adversarial_all_conflict_trace_survives() {
    // Every request maps to the same Unison set: forced thrashing must
    // not panic, and the cache must still serve every request.
    let mut uc = UnisonCache::new(UnisonConfig::new(16 << 20));
    let sets = uc.num_sets();
    let mut mem = MemPorts::paper_default();
    let mut t = 0;
    for i in 0..2000u64 {
        let page = (i % 64) * sets; // 64 pages, one set
        let req = unison_repro::core::Request {
            core: (i % 16) as u8,
            pc: 0x400,
            addr: page * 960,
            is_write: i % 5 == 0,
        };
        let a = uc.access(t, &req, &mut mem);
        t = a.done_ps;
    }
    assert_eq!(uc.stats().accesses, 2000);
    assert!(uc.stats().evictions > 0);
}

#[test]
fn adversarial_zero_locality_trace_survives() {
    // Unique random-ish addresses: everything misses everywhere.
    let designs: Vec<Box<dyn DramCacheModel>> = vec![
        Box::new(AlloyCache::new(AlloyConfig::new(16 << 20))),
        Box::new(FootprintCache::new(FootprintConfig::new(16 << 20))),
        Box::new(UnisonCache::new(UnisonConfig::new(16 << 20))),
        Box::new(IdealCache::new(16 << 20)),
        Box::new(NoCache::new()),
    ];
    for mut cache in designs {
        let mut mem = MemPorts::paper_default();
        let mut t = 0;
        for i in 0..1000u64 {
            let req = unison_repro::core::Request {
                core: (i % 16) as u8,
                pc: i.wrapping_mul(0x9e37_79b9),
                addr: i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % (1 << 40),
                is_write: false,
            };
            let a = cache.access(t, &req, &mut mem);
            assert!(a.critical_ps >= t);
            t = a.done_ps.max(t);
        }
        assert_eq!(cache.stats().accesses, 1000);
    }
}

#[test]
fn system_with_filtered_hierarchy_trace_works_end_to_end() {
    // Raw trace -> L1/L2 filter -> Unison Cache: the full paper stack.
    use unison_repro::memhier::HierarchyFilter;
    let raw = WorkloadGen::new(workloads::web_serving().scaled(64), 3).take(100_000);
    let mut filtered = HierarchyFilter::new(16, raw);
    let cache = UnisonCache::new(UnisonConfig::new(32 << 20));
    let mut sys = System::new(16, cache, MemPorts::paper_default(), CoreParams::default());
    let n = sys.run(&mut filtered, u64::MAX);
    assert!(n > 0, "some requests must survive the hierarchy");
    assert!(n < 100_000, "the hierarchy must absorb something");
    assert_eq!(sys.cache().stats().accesses, n);
}
