//! Integration tests pinning the paper's *qualitative claims* — the
//! relationships that must hold for the reproduction to be faithful,
//! regardless of absolute numbers.

use unison_repro::core::layout::{AlloyRowLayout, FcTagModel, UnisonRowLayout};
use unison_repro::core::{DramCacheModel, MemPorts, Request, UnisonCache, UnisonConfig};
use unison_repro::dram::{ps_to_cpu_cycles, DramConfig, DramModel, Op, RowCol};
use unison_repro::sim::{run_experiment, Design, SimConfig};
use unison_repro::trace::workloads;

/// §III-A: the overlapped tag+data read costs about one DRAM access plus
/// the metadata burst — NOT two serialized DRAM accesses.
#[test]
fn overlapped_tag_data_read_is_not_serialized() {
    let mut d = DramModel::new(DramConfig::stacked());
    let meta = d.access(0, Op::Read, RowCol::new(0, 0), 32);
    let data = d.access(0, Op::Read, RowCol::new(0, 128), 64);
    let one_access = meta.last_data_ps;
    assert!(
        data.last_data_ps < one_access + one_access / 2,
        "tag+data should cost ~1 access, got {} vs {}",
        data.last_data_ps,
        one_access
    );
}

/// §III-A.6: the 32 B metadata transfer costs two CPU cycles on the
/// 128-bit stacked bus.
#[test]
fn metadata_burst_is_two_cpu_cycles() {
    let cfg = DramConfig::stacked();
    assert_eq!(ps_to_cpu_cycles(cfg.burst_ps(32)), 2);
}

/// Table II: the three tag architectures cost what the paper says at 8GB.
#[test]
fn tag_overheads_match_table_ii() {
    const GB8: u64 = 8 << 30;
    // Alloy: 1GB of stacked DRAM (12.5%).
    let ac = AlloyRowLayout::paper().in_dram_tag_bytes(GB8);
    assert_eq!(ac, GB8 / 8);
    // Footprint: ~50MB of SRAM.
    let fc = FcTagModel::for_cache_size(GB8);
    assert!((fc.tag_mb - 50.0).abs() < 1.0);
    // Unison: 256-512MB of stacked DRAM (3.1-6.2%).
    let uc960 = UnisonRowLayout::new(15, 4).in_dram_tag_bytes(GB8);
    let uc1984 = UnisonRowLayout::new(31, 4).in_dram_tag_bytes(GB8);
    assert_eq!(uc960, GB8 / 16);
    assert_eq!(uc1984, GB8 / 32);
}

/// §II-B / Table IV: Footprint Cache's tag latency grows with capacity
/// while Unison Cache's access latency does not — the crossover driver
/// of Figures 7 and 8. Isolated by fixing the actual (scaled) capacity
/// and varying only the nominal size that parameterizes the tag array.
#[test]
fn unison_latency_is_size_independent_and_footprint_is_not() {
    use unison_repro::core::{FootprintCache, FootprintConfig};
    use unison_repro::sim::{CoreParams, System};
    use unison_repro::trace::WorkloadGen;

    let measure_fc = |nominal: u64| -> f64 {
        let cache = FootprintCache::new(FootprintConfig::new(32 << 20).with_nominal(nominal));
        let mut sys = System::new(16, cache, MemPorts::paper_default(), CoreParams::default());
        let mut trace = WorkloadGen::new(workloads::web_search().scaled(256), 42);
        sys.run(&mut trace, 200_000);
        sys.reset_measurement();
        sys.run(&mut trace, 100_000);
        sys.cache().stats().mean_latency_ps() * 3.0 / 1000.0
    };
    let measure_uc = |nominal: u64| -> f64 {
        let cache = UnisonCache::new(UnisonConfig::new(32 << 20).with_nominal(nominal));
        let mut sys = System::new(16, cache, MemPorts::paper_default(), CoreParams::default());
        let mut trace = WorkloadGen::new(workloads::web_search().scaled(256), 42);
        sys.run(&mut trace, 200_000);
        sys.reset_measurement();
        sys.run(&mut trace, 100_000);
        sys.cache().stats().mean_latency_ps() * 3.0 / 1000.0
    };

    // Same capacity, same trace: only the tag architecture scales.
    let fc_growth = measure_fc(8 << 30) - measure_fc(128 << 20);
    let uc_growth = (measure_uc(8 << 30) - measure_uc(128 << 20)).abs();
    // Table IV delta is 42 cycles, charged on every access.
    assert!(
        fc_growth > 30.0,
        "FC latency should grow ~42 cy with nominal size, grew {fc_growth:.1} cy"
    );
    assert!(
        uc_growth < 5.0,
        "UC latency must be capacity-independent, moved {uc_growth:.1} cy"
    );
}

/// §V.A: all designs are bandwidth-efficient — overfetch around 10%, not
/// the order-of-magnitude waste of naive page caches.
#[test]
fn overfetch_stays_bounded() {
    let cfg = SimConfig::quick_test();
    for w in [workloads::web_search(), workloads::data_serving()] {
        let uc = run_experiment(Design::Unison, 1 << 30, &w, &cfg);
        // Bench-scale runs land at 6-29%; the aggressive 1/64 quick-test
        // scale inflates the ratio somewhat, hence the looser bound here.
        assert!(
            uc.cache.fp_overfetch() < 0.45,
            "{}: UC overfetch {:.2} out of band",
            w.name,
            uc.cache.fp_overfetch()
        );
    }
}

/// §V.D: footprint-granularity transfers amortize off-chip row
/// activations — Unison moves several blocks per activation where the
/// uncached baseline moves about one.
#[test]
fn footprint_transfers_amortize_activations() {
    let cfg = SimConfig::quick_test();
    let w = workloads::web_search();
    let uc = run_experiment(Design::Unison, 512 << 20, &w, &cfg);
    let base = run_experiment(Design::NoCache, 0, &w, &cfg);
    let blocks_per_act = |r: &unison_repro::sim::RunResult| {
        let blocks = (r.offchip_energy.bytes_read + r.offchip_energy.bytes_written) as f64 / 64.0;
        blocks / (r.offchip_energy.activations.max(1)) as f64
    };
    let uc_amort = blocks_per_act(&uc);
    let base_amort = blocks_per_act(&base);
    assert!(
        uc_amort > 2.0 * base_amort,
        "UC should move several blocks per off-chip activation: {uc_amort:.2} vs baseline {base_amort:.2}"
    );
}

/// §III-A.4: singleton-predicted pages are not allocated, preserving
/// cache capacity for multi-block footprints.
#[test]
fn singletons_bypass_allocation() {
    let cfg = SimConfig::quick_test();
    let r = run_experiment(
        Design::Unison,
        256 << 20,
        &workloads::data_analytics(),
        &cfg,
    );
    assert!(
        r.cache.singleton_bypasses > 0,
        "the pointer-chasing workload must trigger singleton bypasses"
    );
}

/// §III-A.6: way mispredictions are cheap because the correct way is in
/// the already-open row.
#[test]
fn way_misprediction_recovery_is_row_hit() {
    let mut uc = UnisonCache::new(UnisonConfig::new(1 << 20));
    let mut mem = MemPorts::paper_default();
    let sets = uc.num_sets();
    assert!(sets < 4096, "aliasing construction below needs sets < 2^12");
    // Two pages in the same cache set AND the same way-predictor entry:
    // page_b = sets * (2^12 + 1) folds to the same 12-bit XOR hash as
    // page 0 (its two 12-bit chunks are equal and cancel) while still
    // mapping to set 0. Alternating them defeats the predictor on every
    // access, but latency must stay near hit latency (row-buffer hits).
    let addr_a = 0u64;
    let addr_b = sets * 4097 * 960;
    let mut t = 0;
    for addr in [addr_a, addr_b, addr_a, addr_b] {
        let a = uc.access(
            t,
            &Request {
                core: 0,
                pc: 0x400,
                addr,
                is_write: false,
            },
            &mut mem,
        );
        t = a.done_ps + 1000;
    }
    let lat_before = uc.stats().mean_latency_ps();
    assert!(lat_before > 0.0);
    // Steady-state alternation: all hits, half mispredicted.
    uc.reset_stats();
    for i in 0..50u64 {
        let addr = if i % 2 == 0 { addr_a } else { addr_b };
        let a = uc.access(
            t,
            &Request {
                core: 0,
                pc: 0x400,
                addr,
                is_write: false,
            },
            &mut mem,
        );
        assert!(a.hit(), "both pages are resident");
        t = a.done_ps + 1000;
    }
    let s = uc.stats();
    assert!(
        s.wp_accuracy() < 0.6,
        "alternation must defeat the way predictor"
    );
    let mean_cycles = s.mean_latency_ps() * 3.0 / 1000.0;
    assert!(
        mean_cycles < 120.0,
        "mispredict-heavy hits must stay near hit latency (row-buffer hits), got {mean_cycles:.0} cy"
    );
}
