//! Acceptance suite for the trace-artifact subsystem: replay must be
//! bit-identical to live generation end to end, replay iteration must be
//! allocation-free, and the campaign-level payoff (shared artifacts
//! beating per-cell regeneration) is measured, not asserted in prose.
//!
//! The binary installs a counting wrapper around the system allocator so
//! the zero-allocation claim is checked against the allocator itself,
//! not inferred from code reading. Counting is per-thread, so other
//! tests running concurrently in this binary don't perturb the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use unison_repro::harness::{Campaign, ScenarioGrid, TracePolicy, TraceStore};
use unison_repro::sim::{
    run_experiment, run_experiment_with_source, Design, SimConfig, TraceSource,
};
use unison_repro::trace::{workloads, TraceArtifact};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocations made by the current
/// thread. `const`-initialized TLS keeps the counter itself from
/// allocating on first touch.
struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the only addition is
// a thread-local counter bump, which does not allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Replay iteration must never touch the heap: records decode straight
/// off the frozen buffer into `Copy` values.
#[test]
fn trace_replay_allocates_no_per_record_memory() {
    let spec = workloads::web_search().scaled(64);
    let artifact = TraceArtifact::freeze(&spec, 42, 50_000);

    let before = thread_allocs();
    let mut checksum = 0u64;
    for r in artifact.replay() {
        checksum = checksum
            .wrapping_add(r.addr)
            .wrapping_add(u64::from(r.igap))
            .wrapping_add(r.pc);
    }
    let allocs = thread_allocs() - before;
    assert!(checksum != 0, "replay produced records");
    assert_eq!(
        allocs, 0,
        "TraceReplay must not allocate while iterating 50k records, saw {allocs} allocations"
    );
}

/// By contrast, live generation does allocate (visit state, function
/// library lookups notwithstanding, the generator itself was built
/// before counting started) — this guards the *meaningfulness* of the
/// zero above: if the counter never saw anything, the test above would
/// be vacuous.
#[test]
fn allocation_counter_actually_counts() {
    let before = thread_allocs();
    let v: Vec<u64> = (0..1000).collect();
    assert!(v.len() == 1000);
    assert!(
        thread_allocs() > before,
        "counting allocator failed to observe a Vec allocation"
    );
}

/// End-to-end bit-identity at the facade level: a full experiment driven
/// by a replayed artifact equals the live-generation run exactly.
#[test]
fn experiment_over_replay_equals_live_generation() {
    let cfg = SimConfig::quick_test();
    let w = workloads::data_serving();
    let size = 256 << 20;
    let plan = cfg.trace_plan(&w, size);
    let artifact = TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.frozen_len);

    let live = run_experiment(Design::Footprint, size, &w, &cfg);
    let replayed = run_experiment_with_source(
        Design::Footprint,
        size,
        &w,
        &cfg,
        TraceSource::Replay(&artifact),
    );
    assert_eq!(
        serde_json::to_string(&live).unwrap(),
        serde_json::to_string(&replayed).unwrap(),
        "replayed experiment diverged from live generation"
    );
}

/// Campaign-level bit-identity: the default trace-memoizing campaign
/// must produce exactly what the regenerating campaign produces, while
/// freezing each workload's trace exactly once.
#[test]
fn memoized_campaign_equals_regenerating_campaign() {
    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    let grid = ScenarioGrid::new()
        .designs([Design::Unison, Design::Alloy, Design::Ideal])
        .workloads([workloads::web_search(), workloads::tpch()])
        .sizes([128 << 20, 512 << 20]);

    let regenerated = Campaign::new(cfg)
        .threads(2)
        .traces(TracePolicy::Generate)
        .run_speedups(&grid);
    let memoized = Campaign::new(cfg)
        .threads(2)
        .traces(TracePolicy::Memoize)
        .run_speedups(&grid);

    assert_eq!(
        serde_json::to_string(&regenerated.canonical_cells()).unwrap(),
        serde_json::to_string(&memoized.canonical_cells()).unwrap(),
        "trace-memoized campaign diverged from per-cell regeneration"
    );
    assert_eq!(memoized.trace_generated, 2, "one artifact per workload");
    assert!(
        memoized.trace_memo_hits >= 12,
        "12 design cells + baselines must all replay the shared artifacts, got {} hits",
        memoized.trace_memo_hits
    );
}

/// The payoff claim, measured: a multi-design campaign over a shared
/// workload must run at least 1.5x faster with the trace store than with
/// per-cell regeneration. Timing-sensitive, so `#[ignore]`d from the
/// fast suite and run in release mode by the nightly CI job.
///
/// The grid uses the trace-generation-bound corner the store is built
/// for: Data Analytics has the costliest synthesis (~79 ns/record:
/// sparse visits, heavy per-visit pattern noise) while `Ideal`/`NoCache`
/// have the leanest access paths, so per-cell regeneration roughly
/// doubles each cell. Simulation-heavy grids (Unison at ~210 ns/record
/// of cache work) bound the same absolute saving by a smaller ratio —
/// ~1.1-1.2x end to end (see README "Trace artifacts & replay").
#[test]
#[ignore = "perf assertion; meaningful in --release only (nightly CI runs it)"]
fn trace_store_speeds_up_multi_design_campaigns() {
    use std::time::Instant;

    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 400_000;
    let grid = ScenarioGrid::new()
        .designs([Design::Ideal, Design::NoCache])
        .workloads([workloads::data_analytics()])
        .sizes([
            16 << 20,
            32 << 20,
            64 << 20,
            128 << 20,
            256 << 20,
            512 << 20,
        ]);

    // Serial execution so the comparison measures work, not scheduling.
    let campaign = |policy: TracePolicy| Campaign::new(cfg).threads(1).traces(policy).run(&grid);

    // Interleaved best-of-3 to cancel frequency/thermal drift.
    let mut regen = f64::INFINITY;
    let mut memo = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let r = campaign(TracePolicy::Generate);
        regen = regen.min(t.elapsed().as_secs_f64());
        assert_eq!(r.trace_generated, 0);

        let t = Instant::now();
        let m = campaign(TracePolicy::Memoize);
        memo = memo.min(t.elapsed().as_secs_f64());
        assert_eq!(m.trace_generated, 1, "one freeze for the whole campaign");
        assert_eq!(
            m.trace_memo_hits, 12,
            "all 12 cells replay the prefilled artifact"
        );
    }
    let speedup = regen / memo;
    println!(
        "campaign over 12 cells: regenerate {:.0} ms vs trace-store {:.0} ms ({speedup:.2}x)",
        regen * 1e3,
        memo * 1e3,
    );
    assert!(
        speedup >= 1.5,
        "trace store must speed the campaign up >= 1.5x, measured {speedup:.2}x \
         (regenerate {:.0} ms, memoize {:.0} ms)",
        regen * 1e3,
        memo * 1e3,
    );
}

/// Disk-cache cold/warm behaviour through the public campaign API, in a
/// scratch directory: the second invocation loads every artifact.
#[test]
fn disk_cache_skips_generation_on_reuse() {
    let dir =
        std::env::temp_dir().join(format!("unison-artifact-acceptance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    let grid = ScenarioGrid::new()
        .designs([Design::Unison])
        .workloads([workloads::data_serving()])
        .sizes([128 << 20]);

    let cold = Campaign::new(cfg)
        .threads(1)
        .traces(TracePolicy::Disk(dir.clone()))
        .run_speedups(&grid);
    assert_eq!(cold.trace_generated, 1);

    // Fresh store (fresh campaign invocation), same directory.
    let warm = Campaign::new(cfg)
        .threads(1)
        .traces(TracePolicy::Disk(dir.clone()))
        .run_speedups(&grid);
    assert_eq!(warm.trace_generated, 0, "warm run must not regenerate");
    assert_eq!(warm.trace_disk_hits, 1);
    assert_eq!(
        serde_json::to_string(&cold.canonical_cells()).unwrap(),
        serde_json::to_string(&warm.canonical_cells()).unwrap()
    );

    // And a TraceStore can read what the campaign persisted.
    let store = TraceStore::new().with_dir(&dir);
    let plan = cfg.trace_plan(&workloads::data_serving(), 128 << 20);
    store.get(&plan.scaled_spec, cfg.seed, plan.frozen_len);
    assert_eq!(store.disk_hits(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}
