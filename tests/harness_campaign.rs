//! Integration tests for the experiment-campaign engine: parallel
//! execution must be byte-identical to serial, and baseline memoization
//! must collapse redundant NoCache simulations.

use unison_repro::harness::{sink, BaselineStore, Campaign, ScenarioGrid};
use unison_repro::sim::{Design, SimConfig};
use unison_repro::trace::workloads;

/// A configuration even smaller than `quick_test`, for grid-shaped tests
/// that run dozens of cells.
fn tiny() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.accesses = 30_000;
    cfg.scale = 256;
    cfg
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let grid = ScenarioGrid::new()
        .designs([Design::Unison, Design::Alloy])
        .workloads([workloads::web_search(), workloads::data_serving()])
        .sizes([128 << 20, 512 << 20]);

    let serial = Campaign::new(tiny()).threads(1).run_speedups(&grid);
    let parallel = Campaign::new(tiny()).threads(4).run_speedups(&grid);

    assert_eq!(serial.cells().len(), 8);
    assert_eq!(parallel.cells().len(), 8);
    // Byte-identical RunResults in identical (grid) order, regardless of
    // worker scheduling: simulations are deterministic in (cell, cfg) and
    // the pool reassembles results by cell index.
    let a = serde_json::to_string(&serial.canonical_cells()).expect("serialize");
    let b = serde_json::to_string(&parallel.canonical_cells()).expect("serialize");
    assert_eq!(a, b, "parallel campaign diverged from serial");
}

#[test]
fn fig7_shaped_grid_runs_exactly_one_baseline_per_workload() {
    // The acceptance grid: 4 designs x 4 sizes x 5 CloudSuite workloads.
    // 80 speedup cells, but exactly 5 NoCache baseline simulations.
    let grid = ScenarioGrid::new()
        .designs([
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Ideal,
        ])
        .workloads(workloads::cloudsuite())
        .sizes([128 << 20, 256 << 20, 512 << 20, 1024 << 20]);

    let results = Campaign::new(tiny()).threads(4).run_speedups(&grid);

    assert_eq!(results.cells().len(), 80);
    assert_eq!(
        results.baseline_runs, 5,
        "one NoCache simulation per workload, not one per speedup"
    );
    assert_eq!(
        results.baseline_hits, 80,
        "every design cell reuses its workload's memoized baseline"
    );
    assert!(results.cells().iter().all(|c| c.speedup.is_some()));
}

#[test]
fn baseline_store_returns_identical_cached_results() {
    let store = BaselineStore::new(tiny());
    let spec = workloads::web_serving();
    let first = store.get(&spec, 42);
    let second = store.get(&spec, 42);
    assert_eq!(store.computed_runs(), 1);
    assert_eq!(store.cache_hits(), 1);
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
        "cached baseline must be the identical result"
    );
}

#[test]
fn sinks_cover_every_cell() {
    let grid = ScenarioGrid::new()
        .designs([Design::Unison])
        .workloads([workloads::web_search()])
        .sizes([128 << 20, 256 << 20]);
    let results = Campaign::new(tiny()).threads(2).run_speedups(&grid);

    let csv = sink::to_csv(&results);
    assert_eq!(csv.lines().count(), 1 + results.cells().len());
    assert!(csv
        .lines()
        .nth(1)
        .unwrap()
        .starts_with("Web Search,Unison,134217728,"));

    let json = sink::to_json(&results);
    assert!(json.contains("\"baseline_runs\": 1"));
    assert!(json.contains("\"speedup\""));
}

#[test]
fn grid_speedups_match_direct_run_speedup() {
    // The harness must reproduce exactly what the old per-binary serial
    // loop computed: run_experiment(design)/run_experiment(NoCache).
    let cfg = tiny();
    let w = workloads::data_serving();
    let grid = ScenarioGrid::new()
        .designs([Design::Ideal])
        .workloads([w.clone()])
        .sizes([512 << 20]);
    let results = Campaign::new(cfg).threads(2).run_speedups(&grid);
    let harness_speedup = results
        .get(w.name, "Ideal", 512 << 20)
        .and_then(|c| c.speedup)
        .expect("cell present");

    let direct = unison_repro::sim::run_speedup(Design::Ideal, 512 << 20, &w, &cfg);
    assert!(
        (harness_speedup - direct.speedup).abs() < 1e-12,
        "harness {harness_speedup} vs direct {}",
        direct.speedup
    );
}
