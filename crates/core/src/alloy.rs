//! Alloy Cache — the state-of-the-art block-based baseline (§II-A,
//! Qureshi & Loh, MICRO 2012).
//!
//! Direct-mapped, with each 64 B block *alloyed* with its 8 B tag into a
//! 72 B tag-and-data unit (TAD). One TAD streams out per lookup, so a hit
//! costs a single DRAM access — but there is no spatial fetching, so hit
//! rates ride on the scarce temporal locality left below the L2. A MAP-I
//! miss predictor decides whether to probe the cache first (predicted
//! hit) or to launch the off-chip access in parallel (predicted miss).

use serde::{Deserialize, Serialize};
use unison_dram::{cpu_cycles_to_ps, Op, Ps, RowCol};
use unison_predictors::{MissPrediction, MissPredictor};

use crate::layout::{AlloyRowLayout, TAD_BYTES};
use crate::meta::MetaStore;
use crate::model::{CacheAccess, DramCacheModel};
use crate::ports::MemPorts;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request, BLOCK_BYTES};

/// Configuration of an [`AlloyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlloyConfig {
    /// Stacked-DRAM capacity in bytes.
    pub cache_bytes: u64,
    /// Use the MAP-I miss predictor (the paper's Alloy Cache does; turn
    /// off for a static always-hit ablation).
    pub miss_predictor: bool,
    /// Fixed controller overhead per request, in CPU cycles.
    pub ctrl_overhead_cycles: u64,
}

impl AlloyConfig {
    /// The paper's configuration: miss predictor on, one-cycle predictor
    /// latency folded into the control path.
    pub fn new(cache_bytes: u64) -> Self {
        AlloyConfig {
            cache_bytes,
            miss_predictor: true,
            ctrl_overhead_cycles: 2,
        }
    }
}

/// The Alloy Cache design. See the [module docs](self).
///
/// TAD metadata (tag, valid bit, dirty bit) lives in a direct-mapped
/// block-mode [`MetaStore`] — the same SoA engine the page caches use,
/// with the footprint/recency arrays left empty.
#[derive(Debug, Clone)]
pub struct AlloyCache {
    cfg: AlloyConfig,
    layout: AlloyRowLayout,
    num_tads: u64,
    meta: MetaStore,
    mp: MissPredictor,
    stats: CacheStats,
}

impl AlloyCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no TADs.
    pub fn new(cfg: AlloyConfig) -> Self {
        let layout = AlloyRowLayout::paper();
        let num_tads = layout.num_tads(cfg.cache_bytes);
        assert!(num_tads > 0, "cache too small for even one TAD");
        AlloyCache {
            cfg,
            layout,
            num_tads,
            meta: MetaStore::blocks(num_tads),
            mp: MissPredictor::paper_default(),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &AlloyConfig {
        &self.cfg
    }

    /// Number of TAD slots.
    pub fn num_tads(&self) -> u64 {
        self.num_tads
    }

    fn tad_loc(&self, tad: u64) -> RowCol {
        let row = tad / u64::from(self.layout.tads_per_row);
        let slot = (tad % u64::from(self.layout.tads_per_row)) as u32;
        RowCol::new(row, slot * TAD_BYTES)
    }

    /// Fills `tad` with `tag`, writing back the old occupant if dirty.
    /// The victim's data already streamed out with the probe TAD read, so
    /// the writeback is a single off-chip write.
    fn fill(&mut self, now: Ps, tad: u64, tag: u32, dirty: bool, mem: &mut MemPorts) -> Ps {
        let old_valid = self.meta.is_valid(tad, 0);
        let mut done = now;
        if old_valid && self.meta.block_dirty(tad) {
            let victim_bn = self.meta.tag(tad, 0) * self.num_tads + tad;
            let wb = mem.offchip.access_addr(
                now,
                Op::Write,
                victim_bn * BLOCK_BYTES,
                BLOCK_BYTES as u32,
            );
            self.stats.offchip_write_bytes += BLOCK_BYTES;
            self.stats.writeback_blocks += 1;
            done = done.max(wb.last_data_ps);
        }
        if old_valid {
            self.stats.evictions += 1;
        }
        let w = mem
            .stacked
            .access(now, Op::Write, self.tad_loc(tad), TAD_BYTES);
        self.stats.stacked_write_bytes += u64::from(TAD_BYTES);
        self.stats.fill_blocks += 1;
        self.meta.install_block(tad, u64::from(tag), dirty);
        done.max(w.last_data_ps)
    }
}

impl DramCacheModel for AlloyCache {
    fn name(&self) -> &'static str {
        "Alloy"
    }

    fn capacity_bytes(&self) -> u64 {
        self.cfg.cache_bytes
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        self.stats.accesses += 1;
        let bn = req.block_number();
        let tad = bn % self.num_tads;
        let tag = (bn / self.num_tads) as u32;
        let is_hit = self.meta.probe_set(tad, u64::from(tag)).is_some();

        // Miss prediction: one extra cycle of predictor latency.
        let (prediction, t0) = if self.cfg.miss_predictor {
            let p = self.mp.predict(u32::from(req.core), req.pc);
            (p, now + cpu_cycles_to_ps(self.cfg.ctrl_overhead_cycles + 1))
        } else {
            (
                MissPrediction::Hit,
                now + cpu_cycles_to_ps(self.cfg.ctrl_overhead_cycles),
            )
        };

        let access = match prediction {
            MissPrediction::Hit => {
                // Probe the cache first; on a miss the off-chip request
                // is serialized behind the failed lookup (§II-A).
                let probe = mem
                    .stacked
                    .access(t0, Op::Read, self.tad_loc(tad), TAD_BYTES);
                self.stats.stacked_read_bytes += u64::from(TAD_BYTES);
                let tag_known = probe.last_data_ps + cpu_cycles_to_ps(1);
                if is_hit {
                    let mut done = tag_known;
                    if req.is_write {
                        let w =
                            mem.stacked
                                .access(tag_known, Op::Write, self.tad_loc(tad), TAD_BYTES);
                        self.stats.stacked_write_bytes += u64::from(TAD_BYTES);
                        self.meta.mark_block_dirty(tad);
                        done = done.max(w.last_data_ps);
                    }
                    self.stats.hits += 1;
                    CacheAccess {
                        outcome: AccessOutcome::Hit,
                        critical_ps: tag_known,
                        done_ps: done,
                    }
                } else {
                    let oc = mem.offchip.access_addr(
                        tag_known,
                        Op::Read,
                        bn * BLOCK_BYTES,
                        BLOCK_BYTES as u32,
                    );
                    self.stats.offchip_read_bytes += BLOCK_BYTES;
                    let done = self.fill(oc.last_data_ps, tad, tag, req.is_write, mem);
                    self.stats.block_misses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::BlockMiss,
                        critical_ps: oc.first_data_ps,
                        done_ps: done,
                    }
                }
            }
            MissPrediction::Miss => {
                // Launch the off-chip access immediately; probe the cache
                // in parallel to verify (dirty data must come from the
                // cache).
                let oc =
                    mem.offchip
                        .access_addr(t0, Op::Read, bn * BLOCK_BYTES, BLOCK_BYTES as u32);
                self.stats.offchip_read_bytes += BLOCK_BYTES;
                let probe = mem
                    .stacked
                    .access(t0, Op::Read, self.tad_loc(tad), TAD_BYTES);
                self.stats.stacked_read_bytes += u64::from(TAD_BYTES);
                let tag_known = probe.last_data_ps + cpu_cycles_to_ps(1);
                if is_hit {
                    // False miss: the memory fetch was wasted bandwidth;
                    // serve from the cache (covers the dirty case).
                    let mut done = tag_known.max(oc.last_data_ps);
                    if req.is_write {
                        let w =
                            mem.stacked
                                .access(tag_known, Op::Write, self.tad_loc(tad), TAD_BYTES);
                        self.stats.stacked_write_bytes += u64::from(TAD_BYTES);
                        self.meta.mark_block_dirty(tad);
                        done = done.max(w.last_data_ps);
                    }
                    self.stats.hits += 1;
                    CacheAccess {
                        outcome: AccessOutcome::Hit,
                        critical_ps: tag_known,
                        done_ps: done,
                    }
                } else {
                    let done = self.fill(oc.last_data_ps, tad, tag, req.is_write, mem);
                    self.stats.block_misses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::BlockMiss,
                        critical_ps: oc.first_data_ps,
                        done_ps: done,
                    }
                }
            }
        };

        if self.cfg.miss_predictor {
            self.mp.update(u32::from(req.core), req.pc, is_hit);
            let (c, fm, fh) = self.mp.outcome_stats();
            self.stats.mp_correct = c;
            self.stats.mp_false_miss = fm;
            self.stats.mp_false_hit = fh;
        }
        self.stats.critical_latency_sum_ps += access.critical_ps.saturating_sub(now);
        access
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.mp.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (AlloyCache, MemPorts) {
        (
            AlloyCache::new(AlloyConfig::new(1 << 20)),
            MemPorts::paper_default(),
        )
    }

    fn read(addr: u64) -> Request {
        Request {
            core: 0,
            pc: 0x400,
            addr,
            is_write: false,
        }
    }

    #[test]
    fn miss_then_hit() {
        let (mut ac, mut mem) = cache();
        let a = ac.access(0, &read(0x5000), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::BlockMiss);
        let a2 = ac.access(a.done_ps, &read(0x5000), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn no_spatial_fetching() {
        // The neighbouring block misses even after its neighbour filled —
        // the key weakness vs page-based designs.
        let (mut ac, mut mem) = cache();
        let a = ac.access(0, &read(0x5000), &mut mem);
        let a2 = ac.access(a.done_ps, &read(0x5000 + 64), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::BlockMiss);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let (mut ac, mut mem) = cache();
        let stride = ac.num_tads() * BLOCK_BYTES;
        let a = ac.access(0, &read(0), &mut mem);
        let b = ac.access(a.done_ps, &read(stride), &mut mem);
        assert_eq!(b.outcome, AccessOutcome::BlockMiss);
        let c = ac.access(b.done_ps, &read(0), &mut mem);
        assert_eq!(c.outcome, AccessOutcome::BlockMiss, "conflict must evict");
        assert!(ac.stats().evictions >= 1);
    }

    #[test]
    fn dirty_victim_written_back() {
        let (mut ac, mut mem) = cache();
        let stride = ac.num_tads() * BLOCK_BYTES;
        let w = Request {
            core: 0,
            pc: 0x400,
            addr: 0,
            is_write: true,
        };
        let a = ac.access(0, &w, &mut mem);
        let before = ac.stats().offchip_write_bytes;
        let b = ac.access(a.done_ps, &read(stride), &mut mem);
        assert_eq!(b.outcome, AccessOutcome::BlockMiss);
        assert_eq!(ac.stats().offchip_write_bytes - before, 64);
        assert_eq!(ac.stats().writeback_blocks, 1);
    }

    #[test]
    fn predicted_miss_overlaps_memory_access() {
        // Train the predictor to predict misses for a PC, then compare
        // the miss latency against an untrained (predicted-hit) miss:
        // prediction must shave off the serialized cache probe.
        let (mut ac, mut mem) = cache();
        let miss_pc = 0x8888;
        let mut t = 0;
        // Cold misses with predicted-hit: serialized.
        let serial = {
            let r = Request {
                core: 0,
                pc: miss_pc,
                addr: 0x100_0000,
                is_write: false,
            };
            let a = ac.access(t, &r, &mut mem);
            t = a.done_ps;
            a.critical_ps
        };
        // Train: many misses for this PC.
        for i in 1..20u64 {
            let r = Request {
                core: 0,
                pc: miss_pc,
                addr: 0x100_0000 + i * 1_000_000,
                is_write: false,
            };
            let a = ac.access(t, &r, &mut mem);
            t = a.done_ps;
        }
        let t_start = t + 10_000_000;
        let r = Request {
            core: 0,
            pc: miss_pc,
            addr: 0x900_0000,
            is_write: false,
        };
        let a = ac.access(t_start, &r, &mut mem);
        let parallel = a.critical_ps - t_start;
        assert!(
            parallel < serial,
            "predicted miss ({parallel} ps) should beat serialized miss ({serial} ps)"
        );
    }

    #[test]
    fn mp_stats_populate() {
        let (mut ac, mut mem) = cache();
        let mut t = 0;
        for i in 0..50u64 {
            let a = ac.access(t, &read(i * 64), &mut mem);
            t = a.done_ps;
        }
        let s = ac.stats();
        assert!(s.mp_correct + s.mp_false_hit + s.mp_false_miss == 50);
    }

    #[test]
    fn static_always_hit_config() {
        let mut ac = AlloyCache::new(AlloyConfig {
            miss_predictor: false,
            ..AlloyConfig::new(1 << 20)
        });
        let mut mem = MemPorts::paper_default();
        let a = ac.access(0, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::BlockMiss);
        assert_eq!(ac.stats().mp_correct, 0, "no predictor stats when disabled");
    }
}
