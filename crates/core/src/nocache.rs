//! The no-DRAM-cache baseline: every access goes off-chip.
//!
//! This is the implicit speedup-1.0 baseline of Figures 7 and 8 — a
//! system whose post-L2 misses are served directly by the DDR3 channel.

use unison_dram::{cpu_cycles_to_ps, Op, Ps};

use crate::model::{CacheAccess, DramCacheModel};
use crate::ports::MemPorts;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request, BLOCK_BYTES};

/// The uncached baseline. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct NoCache {
    stats: CacheStats,
}

impl NoCache {
    /// Creates the baseline.
    pub fn new() -> Self {
        NoCache::default()
    }
}

impl DramCacheModel for NoCache {
    fn name(&self) -> &'static str {
        "NoCache"
    }

    fn capacity_bytes(&self) -> u64 {
        0
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        self.stats.accesses += 1;
        self.stats.block_misses += 1;
        let t0 = now + cpu_cycles_to_ps(1);
        let op = if req.is_write { Op::Write } else { Op::Read };
        let c = mem
            .offchip
            .access_addr(t0, op, req.block_addr(), BLOCK_BYTES as u32);
        match op {
            Op::Read => self.stats.offchip_read_bytes += BLOCK_BYTES,
            Op::Write => self.stats.offchip_write_bytes += BLOCK_BYTES,
        }
        let access = CacheAccess {
            outcome: AccessOutcome::BlockMiss,
            critical_ps: c.first_data_ps,
            done_ps: c.last_data_ps,
        };
        self.stats.critical_latency_sum_ps += access.critical_ps.saturating_sub(now);
        access
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Request {
    /// 64 B-aligned address of this request (local helper for the
    /// off-chip path).
    pub(crate) fn block_addr(&self) -> u64 {
        self.addr & !(BLOCK_BYTES - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_hits_and_only_uses_offchip() {
        let mut n = NoCache::new();
        let mut mem = MemPorts::paper_default();
        let mut t = 0;
        for i in 0..50u64 {
            let a = n.access(
                t,
                &Request {
                    core: 0,
                    pc: 0,
                    addr: i * 64,
                    is_write: i % 2 == 0,
                },
                &mut mem,
            );
            assert_eq!(a.outcome, AccessOutcome::BlockMiss);
            t = a.done_ps;
        }
        assert_eq!(n.stats().hits, 0);
        assert_eq!(n.stats().miss_ratio(), 1.0);
        assert_eq!(n.stats().stacked_read_bytes, 0);
        assert_eq!(n.stats().offchip_bytes(), 50 * 64);
    }

    #[test]
    fn offchip_latency_exceeds_stacked() {
        // Sanity: the uncached path must be slower than an ideal stacked
        // access, otherwise no cache design could ever win.
        let mut n = NoCache::new();
        let mut mem1 = MemPorts::paper_default();
        let miss = n
            .access(
                0,
                &Request {
                    core: 0,
                    pc: 0,
                    addr: 0,
                    is_write: false,
                },
                &mut mem1,
            )
            .critical_ps;
        let mut ideal = crate::ideal::IdealCache::new(1 << 30);
        let mut mem2 = MemPorts::paper_default();
        let hit = ideal
            .access(
                0,
                &Request {
                    core: 0,
                    pc: 0,
                    addr: 0,
                    is_write: false,
                },
                &mut mem2,
            )
            .critical_ps;
        assert!(miss > hit, "off-chip {miss} ps vs stacked {hit} ps");
    }
}
