//! Struct-of-arrays set-metadata engine — the simulator's hot path.
//!
//! Every access a cache design serves walks its set's metadata: probe the
//! ways for a tag match, update recency, read or update per-block
//! valid/dirty state, and on a miss pick a victim. With per-set
//! arrays-of-structs (a `PageEntry` per way, ~40 B each), a 4-way probe
//! touches four scattered struct reads spanning several cache lines, and
//! the victim scan re-walks them. [`MetaStore`] flattens that state into
//! parallel vectors indexed by `set * ways + way`:
//!
//! * `tags` — one `u64` per entry, so a whole set's tags sit in one or
//!   two cache lines;
//! * `valid` — bit-packed into `u64` words (one bit per entry), so a
//!   set's validity is a shift-and-mask, not a per-way load;
//! * `stamp` — recency state (aging LRU counters or timestamp LRU, per
//!   [`Replacement`]);
//! * `present` / `demanded` / `dirty` / `predicted` — the per-block
//!   footprint bit masks of the paper's re-encoded block state
//!   (§III-A.2);
//! * `pc` / `offset` — the allocation-trigger identity the footprint
//!   predictor trains on at eviction (§III-A.1).
//!
//! The batch APIs ([`MetaStore::probe_set`], [`MetaStore::touch`],
//! [`MetaStore::evict_victim`]) do each set walk once over contiguous
//! memory; the way predictor consumes [`MetaStore::probe_set`]'s result
//! via `WayPredictor::observe_probe`, and the footprint predictor
//! consumes [`MetaStore::eviction_info`] via
//! `FootprintTable::observe_eviction` — no caller re-walks entry structs.
//!
//! Behavioral equivalence with the pre-SoA layout is pinned three ways:
//! the golden suite (`tests/soa_equivalence.rs` at the workspace root),
//! the property tests (`crates/core/tests/meta_properties.rs`) that race
//! a [`MetaStore`] against the naive [`reference::NaiveStore`], and the
//! `meta` group of the criterion microbench.

use unison_predictors::{EvictionInfo, Footprint};

/// Lane width of the vectorized set walks: the branchless per-way loops
/// in [`MetaStore::probe_set`], [`MetaStore::touch`], and
/// [`MetaStore::evict_victim`] are shaped so LLVM's autovectorizer
/// unrolls them into `LANES`-wide blocks on stable Rust (no `std::simd`
/// required) — eight `u64` tags span two AVX2 registers (one AVX-512
/// register). The workspace targets `x86-64-v3` (see
/// `.cargo/config.toml`) because the x86-64 baseline lacks the 64-bit
/// lane compare (`vpcmpeqq`) and per-lane shift (`vpsllvq`) the probe
/// mask build lowers to. Associativities that are not a multiple of the
/// lane width take a scalar epilogue with identical semantics, which
/// the property tests cover explicitly.
pub const LANES: usize = 8;

/// Which replacement discipline [`MetaStore::touch`] and
/// [`MetaStore::evict_victim`] implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Aging counters (Unison Cache): touching a way zeroes its stamp and
    /// saturating-increments every other way's (cap 255, the range of the
    /// in-DRAM LRU byte). The victim is the way with the **largest**
    /// stamp; ties resolve to the highest way index (matching the
    /// pre-SoA `Iterator::max_by_key` scan).
    AgingLru,
    /// Timestamp LRU (Footprint Cache): touching a way records the
    /// caller's clock. The victim is the way with the **smallest** stamp;
    /// ties resolve to the lowest way index (matching the pre-SoA
    /// `Iterator::min_by_key` scan).
    TimestampLru,
}

/// An entry's full metadata, gathered from the parallel arrays — the
/// install/eviction-path view. The hit path never materializes this;
/// it reads only the arrays it needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageMeta {
    /// Page tag (page number divided by the set count).
    pub tag: u64,
    /// Blocks with valid data in the cache.
    pub present: u32,
    /// Blocks demanded by the CPU at least once (vs merely prefetched).
    pub demanded: u32,
    /// Blocks modified since fill.
    pub dirty: u32,
    /// Blocks the footprint fetch installed (prediction-quality state).
    pub predicted: u32,
    /// PC of the access that triggered the page's allocation.
    pub pc: u64,
    /// Block offset of the trigger access.
    pub offset: u8,
}

/// Struct-of-arrays metadata store for set-associative DRAM caches. See
/// the [module docs](self) for the layout.
#[derive(Debug, Clone)]
pub struct MetaStore {
    sets: u64,
    ways: u32,
    policy: Replacement,
    tags: Vec<u64>,
    /// Bit-packed validity: entry `i` is bit `i % 64` of word `i / 64`.
    valid: Vec<u64>,
    stamp: Vec<u32>,
    present: Vec<u32>,
    demanded: Vec<u32>,
    dirty: Vec<u32>,
    predicted: Vec<u32>,
    pc: Vec<u64>,
    offset: Vec<u8>,
}

impl MetaStore {
    /// Builds a page-cache store: `sets` sets of `ways` ways with every
    /// field array allocated.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero, `ways` is zero, or `ways` exceeds 64
    /// (the widest set a single valid-mask word can describe; the paper's
    /// designs use 1–32).
    pub fn paged(sets: u64, ways: u32, policy: Replacement) -> Self {
        assert!(sets > 0, "need at least one set");
        assert!((1..=64).contains(&ways), "ways must be 1..=64");
        let n = (sets * u64::from(ways)) as usize;
        MetaStore {
            sets,
            ways,
            policy,
            tags: vec![0; n],
            valid: vec![0; n.div_ceil(64)],
            stamp: vec![0; n],
            present: vec![0; n],
            demanded: vec![0; n],
            dirty: vec![0; n],
            predicted: vec![0; n],
            pc: vec![0; n],
            offset: vec![0; n],
        }
    }

    /// Builds a block-cache store (Alloy): `slots` direct-mapped entries
    /// carrying only a tag, a valid bit, and a one-bit dirty flag (kept
    /// in the `dirty` mask array as bit 0). The footprint, recency, and
    /// trigger arrays stay empty — block caches have no such state.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn blocks(slots: u64) -> Self {
        assert!(slots > 0, "need at least one slot");
        let n = slots as usize;
        MetaStore {
            sets: slots,
            ways: 1,
            policy: Replacement::TimestampLru,
            tags: vec![0; n],
            valid: vec![0; n.div_ceil(64)],
            stamp: Vec::new(),
            present: Vec::new(),
            demanded: Vec::new(),
            dirty: vec![0; n],
            predicted: Vec::new(),
            pc: Vec::new(),
            offset: Vec::new(),
        }
    }

    /// Number of sets (or slots, for a block store).
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Ways per set.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Approximate heap footprint of the metadata arrays in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.tags.len() * 8
            + self.valid.len() * 8
            + self.stamp.len() * 4
            + self.present.len() * 4
            + self.demanded.len() * 4
            + self.dirty.len() * 4
            + self.predicted.len() * 4
            + self.pc.len() * 8
            + self.offset.len()
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        debug_assert!(set < self.sets, "set out of range");
        (set * u64::from(self.ways)) as usize
    }

    #[inline]
    fn idx(&self, set: u64, way: u32) -> usize {
        debug_assert!(way < self.ways, "way out of range");
        self.base(set) + way as usize
    }

    /// The set's validity bits as a word: bit `w` is way `w`. Handles
    /// sets whose entries span two packed words.
    #[inline]
    fn valid_mask(&self, set: u64) -> u64 {
        let base = self.base(set);
        let n = self.ways as usize;
        let word = base / 64;
        let off = base % 64;
        let mut bits = self.valid[word] >> off;
        if off + n > 64 {
            bits |= self.valid[word + 1] << (64 - off);
        }
        bits & Self::ways_mask(n)
    }

    #[inline]
    fn ways_mask(n: usize) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// True if the entry holds a live page/block.
    #[inline]
    pub fn is_valid(&self, set: u64, way: u32) -> bool {
        let i = self.idx(set, way);
        self.valid[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn set_valid_bit(&mut self, i: usize, v: bool) {
        let bit = 1u64 << (i % 64);
        if v {
            self.valid[i / 64] |= bit;
        } else {
            self.valid[i / 64] &= !bit;
        }
    }

    /// Probes the set for `tag`: one vectorized walk over the contiguous
    /// tag slice, gated by the set's packed valid bits. Returns the first
    /// (lowest) matching valid way, like the pre-SoA `(0..assoc).find(..)`
    /// scan.
    ///
    /// The walk builds an equality bitmask in one branchless pass (each
    /// way contributes `u64::from(t == tag) << way`, which LLVM lowers
    /// to [`LANES`]-wide compare + variable-shift vector ops), masks it
    /// with the valid bits, and takes `trailing_zeros` — so "first
    /// matching valid way" falls out of bit order rather than an
    /// early-exit branch per way. Bit-identical to
    /// [`MetaStore::probe_set_scalar`] (property-raced).
    #[inline]
    pub fn probe_set(&self, set: u64, tag: u64) -> Option<u32> {
        let base = self.base(set);
        let vbits = self.valid_mask(set);
        let tags = &self.tags[base..base + self.ways as usize];
        let mut eq = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            eq |= u64::from(t == tag) << w;
        }
        let hit = eq & vbits;
        (hit != 0).then(|| hit.trailing_zeros())
    }

    /// The pre-vectorization probe: an early-exit scalar walk. Kept as
    /// the executable reference the property tests race against
    /// [`MetaStore::probe_set`] and the nightly release-mode assertion
    /// measures the vectorized path's speedup over.
    #[inline]
    pub fn probe_set_scalar(&self, set: u64, tag: u64) -> Option<u32> {
        let base = self.base(set);
        let vbits = self.valid_mask(set);
        let tags = &self.tags[base..base + self.ways as usize];
        for (w, &t) in tags.iter().enumerate() {
            if vbits >> w & 1 == 1 && t == tag {
                return Some(w as u32);
            }
        }
        None
    }

    /// Records a use of `(set, way)` under the store's replacement
    /// policy. `clock` is consumed by [`Replacement::TimestampLru`] and
    /// ignored by [`Replacement::AgingLru`].
    ///
    /// The AgingLru batch age is vectorized: one branchless
    /// saturating-increment sweep over the whole stamp slice (which LLVM
    /// turns into wide `min` lanes), then a single store of 0 to the
    /// touched way — the same result as the old per-way
    /// `if w == way { 0 } else { .. }` branch, since the touched way's
    /// incremented value is overwritten unconditionally. Bit-identical to
    /// [`MetaStore::touch_scalar`] (property-raced).
    #[inline]
    pub fn touch(&mut self, set: u64, way: u32, clock: u32) {
        debug_assert!(way < self.ways);
        let base = self.base(set);
        match self.policy {
            Replacement::AgingLru => {
                let stamps = &mut self.stamp[base..base + self.ways as usize];
                for s in stamps.iter_mut() {
                    *s = (*s + 1).min(255);
                }
                stamps[way as usize] = 0;
            }
            Replacement::TimestampLru => {
                self.stamp[base + way as usize] = clock;
            }
        }
    }

    /// The pre-vectorization recency update: the branchy per-way walk.
    /// Kept as the executable reference the property tests race against
    /// [`MetaStore::touch`].
    #[inline]
    pub fn touch_scalar(&mut self, set: u64, way: u32, clock: u32) {
        debug_assert!(way < self.ways);
        let base = self.base(set);
        match self.policy {
            Replacement::AgingLru => {
                let stamps = &mut self.stamp[base..base + self.ways as usize];
                for (w, s) in stamps.iter_mut().enumerate() {
                    *s = if w as u32 == way {
                        0
                    } else {
                        (*s + 1).min(255)
                    };
                }
            }
            Replacement::TimestampLru => {
                self.stamp[base + way as usize] = clock;
            }
        }
    }

    /// Picks the way to evict: the first invalid way if any (claimed via
    /// `trailing_zeros` of the inverted valid mask), otherwise the
    /// policy's LRU choice (see [`Replacement`] for tie-breaking).
    ///
    /// The full-set scan is a vectorized masked min/max over **packed
    /// keys** `(stamp << 6) | way` (way fits in 6 bits because ways ≤ 64,
    /// stamp is ≤ 32 bits, so keys are ≤ 38 bits — no overflow). A plain
    /// `max` reduce over packed keys breaks stamp ties toward the
    /// *highest* way and a `min` reduce toward the *lowest*, which are
    /// exactly AgingLru's `max_by_key` and TimestampLru's `min_by_key`
    /// tie rules — so the whole scan is one branchless reduce LLVM
    /// vectorizes. Bit-identical to [`MetaStore::evict_victim_scalar`]
    /// (property-raced).
    #[inline]
    pub fn evict_victim(&self, set: u64) -> u32 {
        let vbits = self.valid_mask(set);
        let invalid = !vbits & Self::ways_mask(self.ways as usize);
        if invalid != 0 {
            return invalid.trailing_zeros();
        }
        let base = self.base(set);
        let stamps = &self.stamp[base..base + self.ways as usize];
        match self.policy {
            Replacement::AgingLru => {
                // Oldest = largest age; ties to the highest index.
                let mut best = 0u64;
                for (w, &s) in stamps.iter().enumerate() {
                    best = best.max(u64::from(s) << 6 | w as u64);
                }
                (best & 63) as u32
            }
            Replacement::TimestampLru => {
                // Oldest = smallest timestamp; ties to the lowest index.
                let mut best = u64::MAX;
                for (w, &s) in stamps.iter().enumerate() {
                    best = best.min(u64::from(s) << 6 | w as u64);
                }
                (best & 63) as u32
            }
        }
    }

    /// The pre-vectorization victim scan: the branchy best-so-far walk.
    /// Kept as the executable reference the property tests race against
    /// [`MetaStore::evict_victim`].
    #[inline]
    pub fn evict_victim_scalar(&self, set: u64) -> u32 {
        let vbits = self.valid_mask(set);
        let invalid = !vbits & Self::ways_mask(self.ways as usize);
        if invalid != 0 {
            return invalid.trailing_zeros();
        }
        let base = self.base(set);
        let stamps = &self.stamp[base..base + self.ways as usize];
        let mut victim = 0u32;
        match self.policy {
            Replacement::AgingLru => {
                // Oldest = largest age; ties to the highest index.
                let mut best = 0u32;
                for (w, &s) in stamps.iter().enumerate() {
                    if s >= best {
                        best = s;
                        victim = w as u32;
                    }
                }
            }
            Replacement::TimestampLru => {
                // Oldest = smallest timestamp; ties to the lowest index.
                let mut best = u32::MAX;
                for (w, &s) in stamps.iter().enumerate() {
                    if s < best {
                        best = s;
                        victim = w as u32;
                    }
                }
            }
        }
        victim
    }

    /// Gathers the entry's full metadata (install/eviction-path view).
    pub fn load(&self, set: u64, way: u32) -> PageMeta {
        let i = self.idx(set, way);
        PageMeta {
            tag: self.tags[i],
            present: self.present[i],
            demanded: self.demanded[i],
            dirty: self.dirty[i],
            predicted: self.predicted[i],
            pc: self.pc[i],
            offset: self.offset[i],
        }
    }

    /// Installs a page into `(set, way)`: writes every field array, marks
    /// the entry valid, and zeroes its recency stamp (callers then
    /// [`MetaStore::touch`] it, as the designs do after allocation).
    pub fn install(&mut self, set: u64, way: u32, meta: PageMeta) {
        let i = self.idx(set, way);
        self.tags[i] = meta.tag;
        self.present[i] = meta.present;
        self.demanded[i] = meta.demanded;
        self.dirty[i] = meta.dirty;
        self.predicted[i] = meta.predicted;
        self.pc[i] = meta.pc;
        self.offset[i] = meta.offset;
        self.stamp[i] = 0;
        self.set_valid_bit(i, true);
    }

    /// Marks the entry invalid (its field arrays keep stale values, as
    /// the struct layout did).
    pub fn invalidate(&mut self, set: u64, way: u32) {
        let i = self.idx(set, way);
        self.set_valid_bit(i, false);
    }

    /// The entry's tag.
    #[inline]
    pub fn tag(&self, set: u64, way: u32) -> u64 {
        self.tags[self.idx(set, way)]
    }

    /// The entry's present-blocks mask.
    #[inline]
    pub fn present(&self, set: u64, way: u32) -> u32 {
        self.present[self.idx(set, way)]
    }

    /// The entry's demanded-blocks mask.
    #[inline]
    pub fn demanded(&self, set: u64, way: u32) -> u32 {
        self.demanded[self.idx(set, way)]
    }

    /// The entry's dirty-blocks mask.
    #[inline]
    pub fn dirty(&self, set: u64, way: u32) -> u32 {
        self.dirty[self.idx(set, way)]
    }

    /// ORs `bits` into the present mask.
    #[inline]
    pub fn or_present(&mut self, set: u64, way: u32, bits: u32) {
        let i = self.idx(set, way);
        self.present[i] |= bits;
    }

    /// ORs `bits` into the demanded mask.
    #[inline]
    pub fn or_demanded(&mut self, set: u64, way: u32, bits: u32) {
        let i = self.idx(set, way);
        self.demanded[i] |= bits;
    }

    /// ORs `bits` into the dirty mask.
    #[inline]
    pub fn or_dirty(&mut self, set: u64, way: u32, bits: u32) {
        let i = self.idx(set, way);
        self.dirty[i] |= bits;
    }

    /// Assembles the eviction record the footprint predictor trains on
    /// (`FootprintTable::observe_eviction`): the trigger identity plus
    /// the demanded/predicted/dirty masks as [`Footprint`]s over a
    /// `page_blocks`-block page.
    pub fn eviction_info(&self, set: u64, way: u32, page_blocks: u32) -> EvictionInfo {
        let i = self.idx(set, way);
        EvictionInfo {
            pc: self.pc[i],
            offset: u32::from(self.offset[i]),
            actual: Footprint::from_mask(u64::from(self.demanded[i]), page_blocks),
            predicted: Footprint::from_mask(u64::from(self.predicted[i]), page_blocks),
            dirty: Footprint::from_mask(u64::from(self.dirty[i]), page_blocks),
        }
    }

    /// The set's recency stamps, in way order (diagnostics and the
    /// LRU-order property tests; the hot paths never materialize this).
    pub fn stamps(&self, set: u64) -> &[u32] {
        let base = self.base(set);
        &self.stamp[base..base + self.ways as usize]
    }

    // ---- block-store (direct-mapped, one-bit dirty) accessors ----

    /// Installs a block into `slot` of a [`MetaStore::blocks`] store.
    pub fn install_block(&mut self, slot: u64, tag: u64, dirty: bool) {
        let i = self.idx(slot, 0);
        self.tags[i] = tag;
        self.dirty[i] = u32::from(dirty);
        self.set_valid_bit(i, true);
    }

    /// Marks `slot`'s block dirty.
    #[inline]
    pub fn mark_block_dirty(&mut self, slot: u64) {
        let i = self.idx(slot, 0);
        self.dirty[i] = 1;
    }

    /// True if `slot` holds a dirty block.
    #[inline]
    pub fn block_dirty(&self, slot: u64) -> bool {
        self.dirty[self.idx(slot, 0)] != 0
    }
}

pub mod reference {
    //! The pre-SoA layout, kept as an executable specification: a naive
    //! nested `Vec<Vec<Entry>>` arrays-of-structs store with the same
    //! API as [`MetaStore`](super::MetaStore). The property tests assert
    //! the two stay in lock-step on arbitrary operation streams, and the
    //! `meta` microbench group measures the layouts against each other.

    use super::{PageMeta, Replacement};

    /// One way's metadata as a struct — the old `PageEntry` shape.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NaiveEntry {
        /// Entry holds a live page.
        pub valid: bool,
        /// Page tag.
        pub tag: u64,
        /// Present-blocks mask.
        pub present: u32,
        /// Demanded-blocks mask.
        pub demanded: u32,
        /// Dirty-blocks mask.
        pub dirty: u32,
        /// Installed-blocks mask.
        pub predicted: u32,
        /// Allocation-trigger PC.
        pub pc: u64,
        /// Allocation-trigger block offset.
        pub offset: u8,
        /// Recency stamp.
        pub stamp: u32,
    }

    /// Nested arrays-of-structs store mirroring [`super::MetaStore`].
    #[derive(Debug, Clone)]
    pub struct NaiveStore {
        sets: Vec<Vec<NaiveEntry>>,
        policy: Replacement,
    }

    impl NaiveStore {
        /// Builds `sets` sets of `ways` default entries.
        pub fn paged(sets: u64, ways: u32, policy: Replacement) -> Self {
            NaiveStore {
                sets: vec![vec![NaiveEntry::default(); ways as usize]; sets as usize],
                policy,
            }
        }

        /// First valid way whose tag matches, walking the entry structs.
        pub fn probe_set(&self, set: u64, tag: u64) -> Option<u32> {
            self.sets[set as usize]
                .iter()
                .position(|e| e.valid && e.tag == tag)
                .map(|w| w as u32)
        }

        /// Recency update (same policies as [`super::MetaStore::touch`]).
        pub fn touch(&mut self, set: u64, way: u32, clock: u32) {
            match self.policy {
                Replacement::AgingLru => {
                    for (w, e) in self.sets[set as usize].iter_mut().enumerate() {
                        e.stamp = if w as u32 == way {
                            0
                        } else {
                            (e.stamp + 1).min(255)
                        };
                    }
                }
                Replacement::TimestampLru => {
                    self.sets[set as usize][way as usize].stamp = clock;
                }
            }
        }

        /// Victim choice (same tie-breaking as
        /// [`super::MetaStore::evict_victim`], via the same iterator
        /// combinators the pre-SoA caches used).
        pub fn evict_victim(&self, set: u64) -> u32 {
            let ways = &self.sets[set as usize];
            if let Some(w) = ways.iter().position(|e| !e.valid) {
                return w as u32;
            }
            match self.policy {
                Replacement::AgingLru => (0..ways.len())
                    .max_by_key(|&w| ways[w].stamp)
                    .expect("ways >= 1") as u32,
                Replacement::TimestampLru => (0..ways.len())
                    .min_by_key(|&w| ways[w].stamp)
                    .expect("ways >= 1") as u32,
            }
        }

        /// Validity of `(set, way)`.
        pub fn is_valid(&self, set: u64, way: u32) -> bool {
            self.sets[set as usize][way as usize].valid
        }

        /// Entry snapshot in the shared [`PageMeta`] shape.
        pub fn load(&self, set: u64, way: u32) -> PageMeta {
            let e = &self.sets[set as usize][way as usize];
            PageMeta {
                tag: e.tag,
                present: e.present,
                demanded: e.demanded,
                dirty: e.dirty,
                predicted: e.predicted,
                pc: e.pc,
                offset: e.offset,
            }
        }

        /// Install, mirroring [`super::MetaStore::install`].
        pub fn install(&mut self, set: u64, way: u32, meta: PageMeta) {
            let e = &mut self.sets[set as usize][way as usize];
            *e = NaiveEntry {
                valid: true,
                tag: meta.tag,
                present: meta.present,
                demanded: meta.demanded,
                dirty: meta.dirty,
                predicted: meta.predicted,
                pc: meta.pc,
                offset: meta.offset,
                stamp: 0,
            };
        }

        /// Invalidate, keeping stale fields like the struct layout did.
        pub fn invalidate(&mut self, set: u64, way: u32) {
            self.sets[set as usize][way as usize].valid = false;
        }

        /// ORs `bits` into the demanded mask.
        pub fn or_demanded(&mut self, set: u64, way: u32, bits: u32) {
            self.sets[set as usize][way as usize].demanded |= bits;
        }

        /// ORs `bits` into the dirty mask.
        pub fn or_dirty(&mut self, set: u64, way: u32, bits: u32) {
            self.sets[set as usize][way as usize].dirty |= bits;
        }

        /// The set's recency stamps (for LRU-order comparisons in tests).
        pub fn stamps(&self, set: u64) -> Vec<u32> {
            self.sets[set as usize].iter().map(|e| e.stamp).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_first_matching_valid_way() {
        let mut m = MetaStore::paged(4, 4, Replacement::AgingLru);
        assert_eq!(m.probe_set(0, 7), None);
        m.install(
            0,
            2,
            PageMeta {
                tag: 7,
                ..PageMeta::default()
            },
        );
        m.install(
            0,
            3,
            PageMeta {
                tag: 7,
                ..PageMeta::default()
            },
        );
        assert_eq!(m.probe_set(0, 7), Some(2), "lowest matching way wins");
        m.invalidate(0, 2);
        assert_eq!(m.probe_set(0, 7), Some(3));
        assert_eq!(m.probe_set(1, 7), None, "other sets unaffected");
    }

    #[test]
    fn aging_lru_victim_matches_max_by_key_tie_break() {
        let mut m = MetaStore::paged(1, 4, Replacement::AgingLru);
        for w in 0..4 {
            m.install(
                0,
                w,
                PageMeta {
                    tag: w as u64,
                    ..PageMeta::default()
                },
            );
        }
        // All stamps zero: max_by_key returns the LAST maximal way.
        assert_eq!(m.evict_victim(0), 3);
        m.touch(0, 3, 0); // ways 0..=2 age to 1, way 3 resets to 0
        assert_eq!(m.evict_victim(0), 2);
    }

    #[test]
    fn timestamp_lru_victim_is_first_min() {
        let mut m = MetaStore::paged(1, 4, Replacement::TimestampLru);
        for w in 0..4 {
            m.install(
                0,
                w,
                PageMeta {
                    tag: w as u64,
                    ..PageMeta::default()
                },
            );
            m.touch(0, w, 10 + w);
        }
        assert_eq!(m.evict_victim(0), 0);
        m.touch(0, 0, 99);
        assert_eq!(m.evict_victim(0), 1);
        // Equal stamps: min_by_key returns the FIRST minimal way.
        m.touch(0, 1, 50);
        m.touch(0, 2, 50);
        assert_eq!(m.evict_victim(0), 3, "way 3 still holds stamp 13");
    }

    #[test]
    fn invalid_way_is_preferred_victim() {
        let mut m = MetaStore::paged(1, 4, Replacement::AgingLru);
        for w in 0..4 {
            m.install(
                0,
                w,
                PageMeta {
                    tag: w as u64,
                    ..PageMeta::default()
                },
            );
        }
        m.invalidate(0, 1);
        assert_eq!(m.evict_victim(0), 1);
    }

    #[test]
    fn aging_saturates_at_255() {
        let mut m = MetaStore::paged(1, 2, Replacement::AgingLru);
        m.install(0, 0, PageMeta::default());
        m.install(0, 1, PageMeta::default());
        // Way 1's age must cap at 255 (the in-DRAM LRU byte), exactly as
        // the old `u8::saturating_add` did.
        for _ in 0..300 {
            m.touch(0, 0, 0);
        }
        assert_eq!(m.evict_victim(0), 1);
        m.touch(0, 1, 0); // way 1 resets; way 0 ages to 1
        assert_eq!(m.evict_victim(0), 0);
    }

    #[test]
    fn valid_bits_span_word_boundaries() {
        // 3-way sets: entries of set 21 are 63..66, crossing word 0 -> 1.
        let mut m = MetaStore::paged(40, 3, Replacement::AgingLru);
        m.install(
            21,
            0,
            PageMeta {
                tag: 5,
                ..PageMeta::default()
            },
        );
        m.install(
            21,
            2,
            PageMeta {
                tag: 6,
                ..PageMeta::default()
            },
        );
        assert_eq!(m.probe_set(21, 5), Some(0));
        assert_eq!(m.probe_set(21, 6), Some(2));
        assert_eq!(m.evict_victim(21), 1, "middle way is the invalid one");
        assert!(m.is_valid(21, 0) && !m.is_valid(21, 1) && m.is_valid(21, 2));
    }

    #[test]
    fn install_load_roundtrip_and_mask_updates() {
        let mut m = MetaStore::paged(8, 4, Replacement::TimestampLru);
        let meta = PageMeta {
            tag: 42,
            present: 0b1011,
            demanded: 0b0001,
            dirty: 0,
            predicted: 0b1011,
            pc: 0xdead,
            offset: 3,
        };
        m.install(5, 1, meta);
        assert_eq!(m.load(5, 1), meta);
        m.or_demanded(5, 1, 0b10);
        m.or_dirty(5, 1, 0b10);
        m.or_present(5, 1, 0b100);
        assert_eq!(m.demanded(5, 1), 0b11);
        assert_eq!(m.dirty(5, 1), 0b10);
        assert_eq!(m.present(5, 1), 0b1111);
    }

    #[test]
    fn eviction_info_carries_trigger_and_masks() {
        let mut m = MetaStore::paged(2, 2, Replacement::AgingLru);
        m.install(
            1,
            0,
            PageMeta {
                tag: 9,
                present: 0b111,
                demanded: 0b101,
                dirty: 0b100,
                predicted: 0b111,
                pc: 0x400,
                offset: 2,
            },
        );
        let info = m.eviction_info(1, 0, 15);
        assert_eq!(info.pc, 0x400);
        assert_eq!(info.offset, 2);
        assert_eq!(info.actual.mask(), 0b101);
        assert_eq!(info.predicted.mask(), 0b111);
        assert_eq!(info.dirty.mask(), 0b100);
    }

    #[test]
    fn block_store_roundtrip() {
        let mut m = MetaStore::blocks(128);
        assert_eq!(m.probe_set(77, 3), None);
        m.install_block(77, 3, false);
        assert_eq!(m.probe_set(77, 3), Some(0));
        assert!(!m.block_dirty(77));
        m.mark_block_dirty(77);
        assert!(m.block_dirty(77));
        m.install_block(77, 4, true);
        assert_eq!(m.probe_set(77, 3), None, "displaced");
        assert!(m.block_dirty(77));
    }

    #[test]
    fn storage_is_struct_of_arrays_sized() {
        let m = MetaStore::paged(256, 4, Replacement::AgingLru);
        // 1024 entries: 8B tag + 8B pc + 4B x4 masks + 4B stamp + 1B
        // offset + 1 valid bit each.
        let expected = 1024 * (8 + 8 + 4 * 5 + 1) + 1024 / 8;
        assert_eq!(m.storage_bytes(), expected);
        let b = MetaStore::blocks(1024);
        assert_eq!(b.storage_bytes(), 1024 * (8 + 4) + 1024 / 8);
    }

    #[test]
    #[should_panic(expected = "ways must be 1..=64")]
    fn too_wide_set_panics() {
        let _ = MetaStore::paged(1, 65, Replacement::AgingLru);
    }
}
