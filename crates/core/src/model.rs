//! The common interface all cache designs implement.

use unison_dram::Ps;

use crate::ports::MemPorts;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request};

/// The result of presenting one request to a DRAM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// How the request resolved.
    pub outcome: AccessOutcome,
    /// Absolute time the *demanded* data is available to the core
    /// (critical-block-first semantics: footprint fills and writebacks
    /// continue in the background and show up only as bus/bank occupancy
    /// for later requests).
    pub critical_ps: Ps,
    /// Absolute time all transfers this request induced have completed.
    pub done_ps: Ps,
}

impl CacheAccess {
    /// True if the demanded data came from stacked DRAM.
    pub fn hit(&self) -> bool {
        self.outcome.is_hit()
    }
}

// Backwards-compatible field alias used in doc examples.
impl std::ops::Deref for CacheAccess {
    type Target = AccessOutcome;
    fn deref(&self) -> &AccessOutcome {
        &self.outcome
    }
}

/// A die-stacked DRAM cache organization.
///
/// Implementations own all their metadata (tags, predictors, replacement
/// state) but share the DRAM devices through [`MemPorts`], so different
/// designs are directly comparable under identical memory substrates.
pub trait DramCacheModel {
    /// Display name used in reports ("Unison", "Alloy", …).
    fn name(&self) -> &'static str;

    /// Nominal capacity in bytes of stacked DRAM managed by the design.
    fn capacity_bytes(&self) -> u64;

    /// Serves one request arriving at absolute time `now`.
    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess;

    /// Statistics accumulated since the last [`Self::reset_stats`].
    fn stats(&self) -> &CacheStats;

    /// Clears statistics (warmup boundary) without touching cache state.
    fn reset_stats(&mut self);
}

impl DramCacheModel for Box<dyn DramCacheModel> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn capacity_bytes(&self) -> u64 {
        (**self).capacity_bytes()
    }
    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        (**self).access(now, req, mem)
    }
    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_access_hit_mirrors_outcome() {
        let a = CacheAccess {
            outcome: AccessOutcome::Hit,
            critical_ps: 10,
            done_ps: 20,
        };
        assert!(a.hit());
        assert!(a.is_hit()); // via Deref
        let m = CacheAccess {
            outcome: AccessOutcome::TriggerMiss,
            critical_ps: 10,
            done_ps: 20,
        };
        assert!(!m.hit());
    }
}
