//! The ideal latency-optimized reference cache (§V.C).
//!
//! "An ideal DRAM cache that never misses and has no tag overheads — an
//! equivalent to die-stacked main memory." Every access is served by the
//! stacked DRAM at pure data-access latency; nothing ever goes off-chip.

use unison_dram::{cpu_cycles_to_ps, Op, Ps, RowCol};

use crate::model::{CacheAccess, DramCacheModel};
use crate::ports::MemPorts;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request, BLOCK_BYTES};

/// The ideal cache. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct IdealCache {
    nominal_bytes: u64,
    ctrl_overhead_cycles: u64,
    stats: CacheStats,
}

impl IdealCache {
    /// Creates the reference design. `nominal_bytes` only labels reports;
    /// the ideal cache behaves as if infinite.
    pub fn new(nominal_bytes: u64) -> Self {
        IdealCache {
            nominal_bytes,
            ctrl_overhead_cycles: 2,
            stats: CacheStats::default(),
        }
    }

    /// Data layout: pure data rows of 128 blocks, row-interleaved like
    /// main memory.
    fn loc(req: &Request) -> RowCol {
        let bn = req.block_number();
        RowCol::new(bn / 128, ((bn % 128) * BLOCK_BYTES) as u32)
    }
}

impl DramCacheModel for IdealCache {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn capacity_bytes(&self) -> u64 {
        self.nominal_bytes
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        self.stats.accesses += 1;
        self.stats.hits += 1;
        let t0 = now + cpu_cycles_to_ps(self.ctrl_overhead_cycles);
        let op = if req.is_write { Op::Write } else { Op::Read };
        let c = mem
            .stacked
            .access(t0, op, Self::loc(req), BLOCK_BYTES as u32);
        match op {
            Op::Read => self.stats.stacked_read_bytes += BLOCK_BYTES,
            Op::Write => self.stats.stacked_write_bytes += BLOCK_BYTES,
        }
        let access = CacheAccess {
            outcome: AccessOutcome::Hit,
            critical_ps: c.last_data_ps,
            done_ps: c.last_data_ps,
        };
        self.stats.critical_latency_sum_ps += access.critical_ps.saturating_sub(now);
        access
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_hits() {
        let mut c = IdealCache::new(1 << 30);
        let mut mem = MemPorts::paper_default();
        let mut t = 0;
        for i in 0..100u64 {
            let a = c.access(
                t,
                &Request {
                    core: 0,
                    pc: 0,
                    addr: i * 1_000_003, // scattered addresses
                    is_write: i % 3 == 0,
                },
                &mut mem,
            );
            assert_eq!(a.outcome, AccessOutcome::Hit);
            t = a.done_ps;
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
        assert_eq!(c.stats().offchip_bytes(), 0);
    }

    #[test]
    fn latency_is_one_dram_access() {
        let mut c = IdealCache::new(1 << 30);
        let mut mem = MemPorts::paper_default();
        let a = c.access(
            0,
            &Request {
                core: 0,
                pc: 0,
                addr: 0,
                is_write: false,
            },
            &mut mem,
        );
        let cycles = unison_dram::ps_to_cpu_cycles(a.critical_ps);
        assert!(
            (20..=80).contains(&cycles),
            "ideal access should be one DRAM access, got {cycles} cycles"
        );
    }
}
