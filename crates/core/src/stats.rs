//! Per-design statistics collected during simulation.

use serde::{Deserialize, Serialize};
use unison_dram::Ps;

/// Everything a cache design records about its own behaviour.
///
/// The derived metrics ([`CacheStats::miss_ratio`],
/// [`CacheStats::fp_accuracy`], …) are exactly the quantities the paper's
/// tables and figures report; see each method's doc for the mapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served.
    pub accesses: u64,
    /// Requests served from stacked DRAM.
    pub hits: u64,
    /// Trigger misses (page-based designs: page absent).
    pub trigger_misses: u64,
    /// Underprediction misses (page present, block absent).
    pub underprediction_misses: u64,
    /// Singleton bypasses (counted as misses; no allocation).
    pub singleton_bypasses: u64,
    /// Block misses (block-based designs).
    pub block_misses: u64,

    /// Pages (or blocks, for Alloy) evicted.
    pub evictions: u64,
    /// Dirty blocks written back off-chip.
    pub writeback_blocks: u64,
    /// Blocks fetched from off-chip into the cache.
    pub fill_blocks: u64,

    /// Sum over evicted pages of predicted-footprint sizes.
    pub fp_predicted_blocks: u64,
    /// Sum over evicted pages of actual-footprint sizes.
    pub fp_actual_blocks: u64,
    /// Sum of `predicted ∩ actual` sizes (correctly predicted blocks).
    pub fp_covered_blocks: u64,
    /// Sum of `predicted − actual` sizes (fetched but never demanded).
    pub fp_over_blocks: u64,

    /// Way-predictor lookups (Unison only).
    pub wp_lookups: u64,
    /// Way-predictor correct predictions.
    pub wp_correct: u64,

    /// Miss-predictor correct predictions (Alloy only).
    pub mp_correct: u64,
    /// Hits falsely predicted as misses (wasted off-chip fetch).
    pub mp_false_miss: u64,
    /// Misses falsely predicted as hits (lookup added to miss latency).
    pub mp_false_hit: u64,

    /// Bytes read from off-chip memory.
    pub offchip_read_bytes: u64,
    /// Bytes written to off-chip memory.
    pub offchip_write_bytes: u64,
    /// Bytes read from stacked DRAM.
    pub stacked_read_bytes: u64,
    /// Bytes written to stacked DRAM.
    pub stacked_write_bytes: u64,

    /// Sum of critical-path latencies over all requests, in picoseconds.
    pub critical_latency_sum_ps: Ps,
}

impl CacheStats {
    /// Total misses of any kind.
    pub fn misses(&self) -> u64 {
        self.trigger_misses
            + self.underprediction_misses
            + self.singleton_bypasses
            + self.block_misses
    }

    /// Miss ratio — the quantity of Figures 5 and 6.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Footprint-predictor accuracy — Table V "FP Accuracy": the fraction
    /// of each page's actual footprint that was correctly predicted,
    /// aggregated over evictions.
    pub fn fp_accuracy(&self) -> f64 {
        if self.fp_actual_blocks == 0 {
            0.0
        } else {
            self.fp_covered_blocks as f64 / self.fp_actual_blocks as f64
        }
    }

    /// Footprint overfetch — Table V "FP Overfetch": the fraction of
    /// fetched blocks that were never demanded before eviction.
    pub fn fp_overfetch(&self) -> f64 {
        if self.fp_predicted_blocks == 0 {
            0.0
        } else {
            self.fp_over_blocks as f64 / self.fp_predicted_blocks as f64
        }
    }

    /// Way-predictor accuracy — Table V "WP Accuracy".
    pub fn wp_accuracy(&self) -> f64 {
        if self.wp_lookups == 0 {
            0.0
        } else {
            self.wp_correct as f64 / self.wp_lookups as f64
        }
    }

    /// Miss-predictor accuracy — Table V "MP Accuracy".
    pub fn mp_accuracy(&self) -> f64 {
        let total = self.mp_correct + self.mp_false_miss + self.mp_false_hit;
        if total == 0 {
            0.0
        } else {
            self.mp_correct as f64 / total as f64
        }
    }

    /// Miss-predictor overfetch — Table V "MP Overfetch": hits predicted
    /// as misses cause one wasted off-chip block fetch each; expressed as
    /// a fraction of useful off-chip fill traffic.
    pub fn mp_overfetch(&self) -> f64 {
        if self.fill_blocks == 0 {
            0.0
        } else {
            self.mp_false_miss as f64 / self.fill_blocks as f64
        }
    }

    /// Mean critical latency per access in picoseconds.
    pub fn mean_latency_ps(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.critical_latency_sum_ps as f64 / self.accesses as f64
        }
    }

    /// Total off-chip traffic in bytes (the bandwidth the designs try to
    /// conserve).
    pub fn offchip_bytes(&self) -> u64 {
        self.offchip_read_bytes + self.offchip_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.fp_accuracy(), 0.0);
        assert_eq!(s.wp_accuracy(), 0.0);
        assert_eq!(s.mp_accuracy(), 0.0);
        assert_eq!(s.mean_latency_ps(), 0.0);
    }

    #[test]
    fn miss_ratio_counts_all_miss_kinds() {
        let s = CacheStats {
            accesses: 10,
            hits: 6,
            trigger_misses: 1,
            underprediction_misses: 1,
            singleton_bypasses: 1,
            block_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.misses(), 4);
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fp_metrics_follow_definitions() {
        let s = CacheStats {
            fp_predicted_blocks: 100,
            fp_actual_blocks: 80,
            fp_covered_blocks: 72,
            fp_over_blocks: 28,
            ..Default::default()
        };
        assert!((s.fp_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.fp_overfetch() - 0.28).abs() < 1e-12);
    }
}
