//! Shared vocabulary for the cache designs.

use serde::{Deserialize, Serialize};

/// Cache block size, fixed at 64 bytes throughout the paper.
pub const BLOCK_BYTES: u64 = 64;

/// One post-L2 memory request presented to a DRAM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Issuing core.
    pub core: u8,
    /// Program counter of the triggering instruction.
    pub pc: u64,
    /// Physical byte address.
    pub addr: u64,
    /// True for stores.
    pub is_write: bool,
}

impl Request {
    /// Global 64 B block number of this request.
    pub fn block_number(&self) -> u64 {
        self.addr / BLOCK_BYTES
    }
}

/// How a DRAM cache resolved a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Block present; served from the stacked DRAM.
    Hit,
    /// Page present but the requested block wasn't fetched — a footprint
    /// *underprediction* (§III-A.3). Served from off-chip memory and
    /// filled.
    UnderpredictionMiss,
    /// Page absent — a *trigger* miss that allocates a new page.
    TriggerMiss,
    /// Page absent and predicted to be a singleton: block forwarded from
    /// off-chip memory without allocating (§III-A.4).
    SingletonBypass,
    /// Block absent in a block-based cache (Alloy) or any miss in a
    /// design without pages.
    BlockMiss,
}

impl AccessOutcome {
    /// True if the demanded data was served from the stacked DRAM.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_number_divides_address() {
        let r = Request {
            core: 0,
            pc: 0,
            addr: 6400 + 63,
            is_write: false,
        };
        assert_eq!(r.block_number(), 100);
    }

    #[test]
    fn only_hit_is_hit() {
        assert!(AccessOutcome::Hit.is_hit());
        for o in [
            AccessOutcome::UnderpredictionMiss,
            AccessOutcome::TriggerMiss,
            AccessOutcome::SingletonBypass,
            AccessOutcome::BlockMiss,
        ] {
            assert!(!o.is_hit());
        }
    }
}
