//! The shared memory context: one stacked device, one off-chip device.

use unison_dram::{DramConfig, DramModel};

/// The two DRAM devices every cache design operates against.
///
/// Sharing one `MemPorts` across a simulation makes bandwidth contention,
/// row-buffer state, and energy accounting uniform across designs — the
/// same substrate DRAMSim2 provides in the paper's setup.
///
/// Construction is where each device's per-access fast paths are
/// precomputed: [`DramModel::new`] builds the shift/mask routing map and
/// premultiplied timing tables once here (both Table III geometries are
/// power-of-two), so every access a design issues through these ports
/// takes the table-driven path with no per-call setup.
#[derive(Debug, Clone)]
pub struct MemPorts {
    /// The die-stacked cache DRAM (Table III "Stacked DRAM").
    pub stacked: DramModel,
    /// Off-chip main memory (Table III "Off-chip DRAM").
    pub offchip: DramModel,
}

impl MemPorts {
    /// Builds the Table III pair: 4-channel stacked DRAM and one
    /// DDR3-1600 channel.
    pub fn paper_default() -> Self {
        MemPorts {
            stacked: DramModel::new(DramConfig::stacked()),
            offchip: DramModel::new(DramConfig::ddr3_1600()),
        }
    }

    /// Builds from explicit device configurations.
    pub fn new(stacked: DramConfig, offchip: DramConfig) -> Self {
        MemPorts {
            stacked: DramModel::new(stacked),
            offchip: DramModel::new(offchip),
        }
    }

    /// Clears statistics and energy on both devices (warmup boundary)
    /// while preserving timing state.
    pub fn reset_stats(&mut self) {
        self.stacked.reset_stats();
        self.offchip.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_expected_devices() {
        let p = MemPorts::paper_default();
        assert_eq!(p.stacked.config().channels, 4);
        assert_eq!(p.offchip.config().channels, 1);
    }

    #[test]
    fn reset_clears_both() {
        let mut p = MemPorts::paper_default();
        p.offchip.access_addr(0, unison_dram::Op::Read, 0, 64);
        p.stacked.access_addr(0, unison_dram::Op::Read, 0, 64);
        p.reset_stats();
        assert_eq!(p.offchip.stats().reads, 0);
        assert_eq!(p.stacked.stats().reads, 0);
    }
}
