//! Residue arithmetic for non-power-of-two address mapping (§III-A.7).
//!
//! Embedding tags in DRAM makes Unison Cache pages 15 or 31 blocks — not
//! powers of two — so finding a block's page and offset needs division and
//! modulo by 15/31. A general divider would be slow and large, but both
//! constants have the form `2^n − 1`, for which the classic residue
//! identity applies: since `2^n ≡ 1 (mod 2^n − 1)`, a binary number split
//! into `n`-bit digits is congruent to the *sum of its digits*. A few
//! adders therefore compute the modulo (the paper estimates two cycles and
//! a few hundred gates, as in Alloy Cache). This module implements exactly
//! that digit-summing network and property-tests it against `%`.

/// Modulo by `2^n − 1` via the digit-summing network a hardware
/// implementation would use.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 32.
///
/// # Example
///
/// ```
/// use unison_core::residue::mod_2n_minus_1;
///
/// // 100 mod 15, computed with adders only.
/// assert_eq!(mod_2n_minus_1(100, 4), 100 % 15);
/// assert_eq!(mod_2n_minus_1(100, 5), 100 % 31);
/// ```
pub fn mod_2n_minus_1(x: u64, n: u32) -> u64 {
    assert!((1..=32).contains(&n), "digit width must be 1..=32");
    let m = (1u64 << n) - 1;
    if m == 1 {
        return 0;
    }
    // Sum the n-bit digits; repeat until one digit remains. Each round is
    // one adder level in hardware.
    let mut v = x;
    while v > m {
        let mut sum = 0u64;
        let mut rest = v;
        while rest != 0 {
            sum += rest & m;
            rest >>= n;
        }
        v = sum;
    }
    // The digit sum can land exactly on m, which is ≡ 0.
    if v == m {
        0
    } else {
        v
    }
}

/// Divides a block number into (page number, block offset) for pages of
/// `2^n − 1` blocks, using the residue unit for the offset and a
/// multiply-shift reciprocal for the quotient.
///
/// Hardware computes the quotient with the same digit tricks; the model
/// only needs the *result* to be exact, which the debug assertion checks.
///
/// # Example
///
/// ```
/// use unison_core::residue::split_page_offset;
///
/// let (page, offset) = split_page_offset(47, 4); // 47 = 3*15 + 2
/// assert_eq!((page, offset), (3, 2));
/// ```
pub fn split_page_offset(block_number: u64, n: u32) -> (u64, u32) {
    let m = (1u64 << n) - 1;
    let offset = mod_2n_minus_1(block_number, n);
    let page = (block_number - offset) / m;
    debug_assert_eq!(page * m + offset, block_number);
    (page, offset as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_modulo_for_small_values() {
        for n in [2u32, 4, 5, 8] {
            let m = (1u64 << n) - 1;
            for x in 0..10_000u64 {
                assert_eq!(mod_2n_minus_1(x, n), x % m, "x={x} n={n}");
            }
        }
    }

    #[test]
    fn matches_modulo_for_large_values() {
        for n in [4u32, 5] {
            let m = (1u64 << n) - 1;
            for x in [u64::MAX, u64::MAX - 1, 1 << 63, 0x1234_5678_9abc_def0] {
                assert_eq!(mod_2n_minus_1(x, n), x % m, "x={x} n={n}");
            }
        }
    }

    #[test]
    fn split_reconstructs_block_number() {
        for bn in (0..200_000u64).step_by(7) {
            let (p, o) = split_page_offset(bn, 4);
            assert_eq!(p * 15 + u64::from(o), bn);
            assert!(o < 15);
        }
    }

    #[test]
    fn n_one_degenerates_to_zero() {
        assert_eq!(mod_2n_minus_1(12345, 1), 0);
    }

    #[test]
    #[should_panic(expected = "digit width")]
    fn zero_width_panics() {
        let _ = mod_2n_minus_1(1, 0);
    }
}
