//! DRAM row layout arithmetic for all three designs.
//!
//! Reproduces the geometry facts of Table II: blocks per 8 KB row,
//! in-DRAM tag overhead, and SRAM tag-array sizes, for any cache size.

use serde::{Deserialize, Serialize};

use crate::types::BLOCK_BYTES;

/// DRAM row size used throughout the paper (Table III).
pub const ROW_BYTES: u64 = 8192;

/// Per-page in-DRAM metadata Unison Cache stores (Figures 2–3): the page
/// tag with valid/dirty bit vectors (8 B, read on every access) plus the
/// `(PC, offset)` pair and replacement state (8 B, read at eviction).
pub const UNISON_PAGE_META_BYTES: u64 = 16;

/// Bytes of set metadata read on every Unison Cache access: the tags and
/// bit vectors of all ways, stored first in the row (§III-A.6).
pub fn unison_tag_read_bytes(assoc: u32) -> u32 {
    8 * assoc
}

/// Unison Cache row geometry for a given page size and associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnisonRowLayout {
    /// Blocks per page (15 for 960 B pages, 31 for 1984 B).
    pub page_blocks: u32,
    /// Ways per set.
    pub assoc: u32,
    /// Pages that fit in one row including their metadata.
    pub pages_per_row: u32,
    /// Whole sets per row (0 when a set spans multiple rows).
    pub sets_per_row: u32,
    /// Data blocks stored per row.
    pub blocks_per_row: u32,
}

impl UnisonRowLayout {
    /// Computes the layout. Each page occupies `page_blocks × 64 B` of
    /// data plus [`UNISON_PAGE_META_BYTES`].
    ///
    /// # Panics
    ///
    /// Panics if `page_blocks` is 0 or a page doesn't fit in a row.
    pub fn new(page_blocks: u32, assoc: u32) -> Self {
        assert!(page_blocks > 0, "pages must hold at least one block");
        let unit = u64::from(page_blocks) * BLOCK_BYTES + UNISON_PAGE_META_BYTES;
        assert!(unit <= ROW_BYTES, "page plus metadata must fit in a row");
        let pages_per_row = (ROW_BYTES / unit) as u32;
        let sets_per_row = pages_per_row / assoc.max(1);
        UnisonRowLayout {
            page_blocks,
            assoc,
            pages_per_row,
            sets_per_row,
            blocks_per_row: pages_per_row * page_blocks,
        }
    }

    /// Page size in data bytes (960 or 1984 in the paper).
    pub fn page_bytes(&self) -> u64 {
        u64::from(self.page_blocks) * BLOCK_BYTES
    }

    /// Number of sets in a cache of `cache_bytes` of stacked DRAM.
    ///
    /// When a set doesn't fit in one row (the hypothetical 32-way point
    /// of Figure 5), sets are counted across rows.
    pub fn num_sets(&self, cache_bytes: u64) -> u64 {
        let rows = cache_bytes / ROW_BYTES;
        if self.sets_per_row > 0 {
            rows * u64::from(self.sets_per_row)
        } else {
            (rows * u64::from(self.pages_per_row)) / u64::from(self.assoc)
        }
    }

    /// Total pages a cache of `cache_bytes` can hold.
    pub fn num_pages(&self, cache_bytes: u64) -> u64 {
        self.num_sets(cache_bytes) * u64::from(self.assoc)
    }

    /// Bytes of stacked DRAM lost to embedded tags for `cache_bytes` —
    /// counted, as the paper does, as everything in each row that is not
    /// data blocks (metadata fields plus alignment slack): 512 B of an
    /// 8 KB row for 960 B pages (6.2%), 256 B for 1984 B pages (3.1%),
    /// matching Table II's "256-512MB (3.1-6.2% of DRAM)" at 8 GB.
    pub fn in_dram_tag_bytes(&self, cache_bytes: u64) -> u64 {
        let rows = cache_bytes / ROW_BYTES;
        rows * (ROW_BYTES - u64::from(self.blocks_per_row) * BLOCK_BYTES)
    }
}

/// Alloy Cache geometry: 72 B tag-and-data units, 112 per 8 KB row
/// (Table II; the remaining 128 B of the row are unused alignment slack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlloyRowLayout {
    /// TADs per row.
    pub tads_per_row: u32,
}

/// TAD size: 64 B data + 8 B tag.
pub const TAD_BYTES: u32 = 72;

impl AlloyRowLayout {
    /// The paper's layout: 112 TADs per 8 KB row.
    pub fn paper() -> Self {
        AlloyRowLayout { tads_per_row: 112 }
    }

    /// Number of TAD slots in `cache_bytes` of stacked DRAM.
    pub fn num_tads(&self, cache_bytes: u64) -> u64 {
        (cache_bytes / ROW_BYTES) * u64::from(self.tads_per_row)
    }

    /// Bytes of stacked DRAM spent on embedded tags (8 B per TAD plus
    /// the row slack, which is also unusable for data).
    pub fn in_dram_tag_bytes(&self, cache_bytes: u64) -> u64 {
        let rows = cache_bytes / ROW_BYTES;
        let data = self.num_tads(cache_bytes) * BLOCK_BYTES;
        rows * ROW_BYTES - data
    }
}

/// Footprint Cache SRAM tag-array model, reproducing Table IV.
///
/// Tag entries hold the page tag, 32 valid + 32 dirty bits, the trigger
/// `(PC, offset)`, and replacement state — about 100 bits ≈ 12.5 B per
/// 2 KB page (the paper's 1 GB point: 512K pages → 6.2 MB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FcTagModel {
    /// Modeled SRAM size in MB.
    pub tag_mb: f64,
    /// Modeled lookup latency in CPU cycles.
    pub latency_cycles: u64,
}

/// Per-page SRAM tag entry size for the 2 KB-page Footprint Cache.
pub const FC_TAG_ENTRY_BYTES: f64 = 12.5;

impl FcTagModel {
    /// Computes the tag model for a cache of `cache_bytes`.
    ///
    /// Latency uses the paper's own Table IV values for the seven sizes
    /// the paper lists and a fitted `6.8 × √MB` curve (CACTI-like: access
    /// time grows with the square root of array area) elsewhere.
    pub fn for_cache_size(cache_bytes: u64) -> Self {
        const MB: u64 = 1 << 20;
        let pages = cache_bytes as f64 / 2048.0;
        let tag_mb = pages * FC_TAG_ENTRY_BYTES / (1u64 << 20) as f64;
        let table: &[(u64, u64)] = &[
            (128 * MB, 6),
            (256 * MB, 9),
            (512 * MB, 11),
            (1024 * MB, 16),
            (2048 * MB, 25),
            (4096 * MB, 36),
            (8192 * MB, 48),
        ];
        let latency_cycles = table
            .iter()
            .find(|(size, _)| *size == cache_bytes)
            .map(|(_, lat)| *lat)
            .unwrap_or_else(|| (6.8 * tag_mb.sqrt()).round().max(4.0) as u64);
        FcTagModel {
            tag_mb,
            latency_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unison_960b_layout_matches_paper() {
        // §IV-C.1: 2 sets of 4 pages per row, 120 blocks per row.
        let l = UnisonRowLayout::new(15, 4);
        assert_eq!(l.pages_per_row, 8);
        assert_eq!(l.sets_per_row, 2);
        assert_eq!(l.blocks_per_row, 120);
        assert_eq!(l.page_bytes(), 960);
    }

    #[test]
    fn unison_1984b_layout_matches_paper() {
        // Table II: 120–124 blocks per row; 1984 B pages give 124.
        let l = UnisonRowLayout::new(31, 4);
        assert_eq!(l.pages_per_row, 4);
        assert_eq!(l.sets_per_row, 1);
        assert_eq!(l.blocks_per_row, 124);
    }

    #[test]
    fn unison_in_dram_tags_at_8gb_match_table_ii() {
        // Table II: 256–512 MB of in-DRAM tags at 8 GB (3.1–6.2%).
        let gb8 = 8u64 << 30;
        let t960 = UnisonRowLayout::new(15, 4).in_dram_tag_bytes(gb8);
        let t1984 = UnisonRowLayout::new(31, 4).in_dram_tag_bytes(gb8);
        let frac960 = t960 as f64 / gb8 as f64;
        let frac1984 = t1984 as f64 / gb8 as f64;
        assert!(frac1984 < frac960);
        assert!(
            (frac960 - 0.0625).abs() < 0.001,
            "960B tag fraction {frac960}"
        );
        assert!(
            (frac1984 - 0.03125).abs() < 0.001,
            "1984B tag fraction {frac1984}"
        );
    }

    #[test]
    fn unison_32_way_spans_rows() {
        let l = UnisonRowLayout::new(15, 32);
        assert_eq!(l.sets_per_row, 0);
        // Sets still counted correctly across rows.
        let sets = l.num_sets(1 << 30);
        assert_eq!(sets, (1u64 << 30) / 8192 * 8 / 32);
    }

    #[test]
    fn alloy_row_matches_table_ii() {
        let a = AlloyRowLayout::paper();
        assert_eq!(a.tads_per_row, 112);
        // Table II: 1 GB of tags for an 8 GB cache (12.5%).
        let gb8 = 8u64 << 30;
        let frac = a.in_dram_tag_bytes(gb8) as f64 / gb8 as f64;
        assert!((frac - 0.125).abs() < 0.001, "alloy tag fraction {frac}");
    }

    #[test]
    fn fc_tag_table_iv_values() {
        const MB: u64 = 1 << 20;
        let cases = [
            (128 * MB, 0.8, 6),
            (256 * MB, 1.58, 9),
            (512 * MB, 3.12, 11),
            (1024 * MB, 6.2, 16),
            (2048 * MB, 12.5, 25),
            (4096 * MB, 25.0, 36),
            (8192 * MB, 50.0, 48),
        ];
        for (size, mb, lat) in cases {
            let m = FcTagModel::for_cache_size(size);
            assert_eq!(m.latency_cycles, lat, "latency @ {size}");
            // Table IV's own entry sizes vary between 12.4 and 12.8 B per
            // page across rows (rounding in the paper); 4% tolerance.
            assert!(
                (m.tag_mb - mb).abs() / mb < 0.04,
                "tag MB @ {size}: model {} vs paper {mb}",
                m.tag_mb
            );
        }
    }

    #[test]
    fn fc_tag_interpolates_between_paper_points() {
        const MB: u64 = 1 << 20;
        let m = FcTagModel::for_cache_size(768 * MB);
        let lo = FcTagModel::for_cache_size(512 * MB).latency_cycles;
        let hi = FcTagModel::for_cache_size(1024 * MB).latency_cycles;
        assert!((lo..=hi + 1).contains(&m.latency_cycles));
    }

    #[test]
    fn unison_num_pages_scales_linearly() {
        let l = UnisonRowLayout::new(15, 4);
        assert_eq!(l.num_pages(1 << 30) * 2, l.num_pages(2 << 30));
    }

    #[test]
    #[should_panic(expected = "fit in a row")]
    fn oversized_page_panics() {
        let _ = UnisonRowLayout::new(200, 4);
    }
}
