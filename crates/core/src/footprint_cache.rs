//! Footprint Cache — the state-of-the-art page-based baseline (§II-B,
//! Jevdjic et al., ISCA 2013).
//!
//! 2 KB pages, 32-way set-associative, with the same footprint-prediction
//! machinery as Unison Cache — but tags live in an on-chip **SRAM array
//! whose size and latency grow with capacity** (Table IV: 0.8 MB / 6
//! cycles at 128 MB up to an impractical 50 MB / 48 cycles at 8 GB). The
//! tag latency is charged on every access, hit or miss; that is the
//! scalability wall Unison Cache removes.

use serde::{Deserialize, Serialize};
use unison_dram::{cpu_cycles_to_ps, Op, Ps, RowCol};
use unison_predictors::{Footprint, FootprintTable, SingletonEntry, SingletonTable};

use crate::layout::{FcTagModel, ROW_BYTES};
use crate::meta::{MetaStore, PageMeta, Replacement};
use crate::model::{CacheAccess, DramCacheModel};
use crate::ports::MemPorts;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request, BLOCK_BYTES};

/// Configuration of a [`FootprintCache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintConfig {
    /// Stacked-DRAM capacity in bytes.
    pub cache_bytes: u64,
    /// Set associativity (32 in the paper).
    pub assoc: u32,
    /// Fixed controller overhead per request, in CPU cycles.
    pub ctrl_overhead_cycles: u64,
    /// Capacity used to derive the SRAM tag model (Table IV). Defaults to
    /// `cache_bytes`; scaled-down experiment runs set this to the nominal
    /// paper-labeled size so the tag latency — the very effect the paper
    /// studies — is not shrunk along with the capacity.
    pub nominal_bytes: u64,
}

impl FootprintConfig {
    /// The paper's configuration: 2 KB pages, 32-way.
    pub fn new(cache_bytes: u64) -> Self {
        FootprintConfig {
            cache_bytes,
            assoc: 32,
            ctrl_overhead_cycles: 2,
            nominal_bytes: cache_bytes,
        }
    }

    /// Overrides the size used for the tag-latency model.
    #[must_use]
    pub fn with_nominal(mut self, nominal_bytes: u64) -> Self {
        self.nominal_bytes = nominal_bytes;
        self
    }
}

/// Blocks per 2 KB page.
const PAGE_BLOCKS: u32 = 32;
/// 2 KB page size in bytes.
const PAGE_BYTES: u64 = PAGE_BLOCKS as u64 * BLOCK_BYTES;
/// Pages per 8 KB DRAM row (no embedded metadata: 128 blocks/row,
/// Table II).
const PAGES_PER_ROW: u64 = ROW_BYTES / PAGE_BYTES;

/// The Footprint Cache design. See the [module docs](self).
///
/// Set metadata lives in a struct-of-arrays [`MetaStore`] under
/// timestamp LRU (32-way recency needs more range than a saturating
/// byte, so stamps are the access clock).
#[derive(Debug, Clone)]
pub struct FootprintCache {
    cfg: FootprintConfig,
    tag_model: FcTagModel,
    num_sets: u64,
    meta: MetaStore,
    fp_table: FootprintTable,
    singletons: SingletonTable,
    clock: u32,
    stats: CacheStats,
}

impl FootprintCache {
    /// Builds the cache, deriving the SRAM tag model from the capacity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(cfg: FootprintConfig) -> Self {
        let num_sets = cfg.cache_bytes / (PAGE_BYTES * u64::from(cfg.assoc));
        assert!(num_sets > 0, "cache too small for even one set");
        FootprintCache {
            tag_model: FcTagModel::for_cache_size(cfg.nominal_bytes),
            num_sets,
            meta: MetaStore::paged(num_sets, cfg.assoc, Replacement::TimestampLru),
            fp_table: FootprintTable::paper_default(PAGE_BLOCKS),
            singletons: SingletonTable::paper_default(),
            clock: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &FootprintConfig {
        &self.cfg
    }

    /// The SRAM tag array model in effect (Table IV).
    pub fn tag_model(&self) -> &FcTagModel {
        &self.tag_model
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Stacked-DRAM location of a block: pages pack four to a row,
    /// way-major (`slot = way * sets + set`) so that consecutive sets
    /// rotate across channels and banks. A set-major layout would derive
    /// the channel from `way / 4` alone, funnelling the hot working set
    /// through a fraction of the device's banks.
    fn data_loc(&self, set: u64, way: u32, block: u32) -> RowCol {
        let slot = u64::from(way) * self.num_sets + set;
        let row = slot / PAGES_PER_ROW;
        let col = (slot % PAGES_PER_ROW) * PAGE_BYTES + u64::from(block) * BLOCK_BYTES;
        RowCol::new(row, col as u32)
    }

    fn block_phys_addr(page: u64, block: u32) -> u64 {
        page * PAGE_BYTES + u64::from(block) * BLOCK_BYTES
    }

    fn evict(&mut self, now: Ps, set: u64, way: u32, mem: &mut MemPorts) -> Ps {
        let info = self.meta.eviction_info(set, way, PAGE_BLOCKS);
        let victim_page = self.meta.tag(set, way) * self.num_sets + set;
        let mut done = now;
        for b in info.dirty.iter() {
            let rd = mem.stacked.access(
                now,
                Op::Read,
                self.data_loc(set, way, b),
                BLOCK_BYTES as u32,
            );
            let wr = mem.offchip.access_addr(
                rd.last_data_ps,
                Op::Write,
                Self::block_phys_addr(victim_page, b),
                BLOCK_BYTES as u32,
            );
            done = done.max(wr.last_data_ps);
            self.stats.stacked_read_bytes += BLOCK_BYTES;
            self.stats.offchip_write_bytes += BLOCK_BYTES;
            self.stats.writeback_blocks += 1;
        }
        let q = self.fp_table.observe_eviction(&info);
        self.stats.fp_predicted_blocks += q.predicted_blocks;
        self.stats.fp_actual_blocks += q.actual_blocks;
        self.stats.fp_covered_blocks += q.covered_blocks;
        self.stats.fp_over_blocks += q.over_blocks;
        self.stats.evictions += 1;
        self.meta.invalidate(set, way);
        done
    }

    #[allow(clippy::too_many_arguments)]
    fn fetch_footprint(
        &mut self,
        now: Ps,
        page: u64,
        set: u64,
        way: u32,
        trigger: u32,
        mask: Footprint,
        mem: &mut MemPorts,
    ) -> (Ps, Ps) {
        let crit = mem.offchip.access_addr(
            now,
            Op::Read,
            Self::block_phys_addr(page, trigger),
            BLOCK_BYTES as u32,
        );
        self.stats.offchip_read_bytes += BLOCK_BYTES;
        let fill = mem.stacked.access(
            crit.last_data_ps,
            Op::Write,
            self.data_loc(set, way, trigger),
            BLOCK_BYTES as u32,
        );
        self.stats.stacked_write_bytes += BLOCK_BYTES;
        self.stats.fill_blocks += 1;
        let mut done = fill.last_data_ps;
        for b in mask.iter().filter(|&b| b != trigger) {
            let rd = mem.offchip.access_addr(
                now,
                Op::Read,
                Self::block_phys_addr(page, b),
                BLOCK_BYTES as u32,
            );
            let wr = mem.stacked.access(
                rd.last_data_ps,
                Op::Write,
                self.data_loc(set, way, b),
                BLOCK_BYTES as u32,
            );
            self.stats.offchip_read_bytes += BLOCK_BYTES;
            self.stats.stacked_write_bytes += BLOCK_BYTES;
            self.stats.fill_blocks += 1;
            done = done.max(wr.last_data_ps);
        }
        (crit.first_data_ps, done)
    }
}

impl DramCacheModel for FootprintCache {
    fn name(&self) -> &'static str {
        "Footprint"
    }

    fn capacity_bytes(&self) -> u64 {
        self.cfg.cache_bytes
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        self.stats.accesses += 1;
        self.clock = self.clock.wrapping_add(1);
        let bn = req.block_number();
        let page = bn / u64::from(PAGE_BLOCKS);
        let offset = (bn % u64::from(PAGE_BLOCKS)) as u32;
        let set = page % self.num_sets;
        let tag = page / self.num_sets;

        // Every access pays the SRAM tag-array latency (Table IV).
        let tag_known = now
            + cpu_cycles_to_ps(self.cfg.ctrl_overhead_cycles)
            + cpu_cycles_to_ps(self.tag_model.latency_cycles);

        let found = self.meta.probe_set(set, tag);
        let clock = self.clock;
        let access = match found {
            Some(way) => {
                let block_bit = 1u32 << offset;
                if self.meta.present(set, way) & block_bit != 0 {
                    // Hit: the SRAM tags name the exact way, so only the
                    // data block is read from stacked DRAM.
                    let d = mem.stacked.access(
                        tag_known,
                        Op::Read,
                        self.data_loc(set, way, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.stacked_read_bytes += BLOCK_BYTES;
                    let mut done = d.last_data_ps;
                    if req.is_write {
                        let w = mem.stacked.access(
                            d.last_data_ps,
                            Op::Write,
                            self.data_loc(set, way, offset),
                            BLOCK_BYTES as u32,
                        );
                        self.stats.stacked_write_bytes += BLOCK_BYTES;
                        done = done.max(w.last_data_ps);
                    }
                    self.meta.or_demanded(set, way, block_bit);
                    if req.is_write {
                        self.meta.or_dirty(set, way, block_bit);
                    }
                    self.meta.touch(set, way, clock);
                    self.stats.hits += 1;
                    CacheAccess {
                        outcome: AccessOutcome::Hit,
                        critical_ps: d.last_data_ps,
                        done_ps: done,
                    }
                } else {
                    // Underprediction: fetch just the block.
                    let oc = mem.offchip.access_addr(
                        tag_known,
                        Op::Read,
                        Self::block_phys_addr(page, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.offchip_read_bytes += BLOCK_BYTES;
                    let fill = mem.stacked.access(
                        oc.last_data_ps,
                        Op::Write,
                        self.data_loc(set, way, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.stacked_write_bytes += BLOCK_BYTES;
                    self.stats.fill_blocks += 1;
                    self.meta.or_present(set, way, block_bit);
                    self.meta.or_demanded(set, way, block_bit);
                    if req.is_write {
                        self.meta.or_dirty(set, way, block_bit);
                    }
                    self.meta.touch(set, way, clock);
                    self.stats.underprediction_misses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::UnderpredictionMiss,
                        critical_ps: oc.first_data_ps,
                        done_ps: fill.last_data_ps,
                    }
                }
            }
            None => {
                // Trigger miss: singleton machinery then allocation, as
                // in Unison (§III-A.4 credits the mechanism to FC).
                let singleton_info = self.singletons.lookup(page);
                let corrected = match singleton_info {
                    Some(s) if s.block != offset => {
                        let mut fp = Footprint::single(s.block, PAGE_BLOCKS);
                        fp.insert(offset);
                        self.fp_table.train(s.pc, s.offset, fp);
                        self.singletons.remove(page);
                        Some(fp)
                    }
                    _ => None,
                };
                let predicted_fp = corrected.or_else(|| self.fp_table.predict(req.pc, offset));
                let is_singleton_pred =
                    corrected.is_none() && predicted_fp.map(|f| f.is_singleton()).unwrap_or(false);

                if is_singleton_pred {
                    let oc = mem.offchip.access_addr(
                        tag_known,
                        Op::Read,
                        Self::block_phys_addr(page, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.offchip_read_bytes += BLOCK_BYTES;
                    self.singletons.insert(SingletonEntry {
                        pc: req.pc,
                        offset,
                        page,
                        block: offset,
                    });
                    self.stats.singleton_bypasses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::SingletonBypass,
                        critical_ps: oc.first_data_ps,
                        done_ps: oc.last_data_ps,
                    }
                } else {
                    let way = self.meta.evict_victim(set);
                    let mut evict_done = tag_known;
                    if self.meta.is_valid(set, way) {
                        evict_done = self.evict(tag_known, set, way, mem);
                    }
                    let mut fetch = predicted_fp.unwrap_or_else(|| Footprint::full(PAGE_BLOCKS));
                    fetch.insert(offset);
                    let (crit, fill_done) =
                        self.fetch_footprint(tag_known, page, set, way, offset, fetch, mem);
                    let block_bit = 1u32 << offset;
                    self.meta.install(
                        set,
                        way,
                        PageMeta {
                            tag,
                            present: fetch.mask() as u32,
                            demanded: block_bit,
                            dirty: if req.is_write { block_bit } else { 0 },
                            predicted: fetch.mask() as u32,
                            pc: req.pc,
                            offset: offset as u8,
                        },
                    );
                    self.meta.touch(set, way, clock);
                    self.stats.trigger_misses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::TriggerMiss,
                        critical_ps: crit,
                        done_ps: fill_done.max(evict_done),
                    }
                }
            }
        };
        self.stats.critical_latency_sum_ps += access.critical_ps.saturating_sub(now);
        access
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (FootprintCache, MemPorts) {
        (
            FootprintCache::new(FootprintConfig::new(1 << 20)),
            MemPorts::paper_default(),
        )
    }

    fn read(addr: u64) -> Request {
        Request {
            core: 0,
            pc: 0x400,
            addr,
            is_write: false,
        }
    }

    #[test]
    fn miss_then_hit_with_spatial_fetch() {
        let (mut fc, mut mem) = cache();
        let a = fc.access(0, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        // Full-page default: a different block of the 2 KB page hits.
        let a2 = fc.access(a.done_ps, &read(1024), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn tag_latency_grows_with_capacity() {
        let small = FootprintCache::new(FootprintConfig::new(128 << 20));
        let large = FootprintCache::new(FootprintConfig::new(1 << 30));
        assert!(small.tag_model().latency_cycles < large.tag_model().latency_cycles);
        assert_eq!(small.tag_model().latency_cycles, 6);
        assert_eq!(large.tag_model().latency_cycles, 16);
    }

    #[test]
    fn hit_latency_includes_tag_latency() {
        // Compare 128 MB (6-cycle tags) against an 8 GB-parameterized
        // model: same access pattern, higher latency.
        let mut mem1 = MemPorts::paper_default();
        let mut small = FootprintCache::new(FootprintConfig::new(128 << 20));
        let a = small.access(0, &read(0), &mut mem1);
        let t = a.done_ps + 1_000_000;
        let h_small = small.access(t, &read(0), &mut mem1).critical_ps - t;

        let mut mem2 = MemPorts::paper_default();
        let mut big = FootprintCache::new(FootprintConfig::new(8 << 30));
        let a = big.access(0, &read(0), &mut mem2);
        let t = a.done_ps + 1_000_000;
        let h_big = big.access(t, &read(0), &mut mem2).critical_ps - t;

        let diff_cycles = unison_dram::ps_to_cpu_cycles(h_big - h_small);
        assert!(
            (40..=45).contains(&diff_cycles),
            "8GB vs 128MB hit-latency gap should be ~42 cycles, got {diff_cycles}"
        );
    }

    #[test]
    fn thirty_two_pages_coexist_in_a_set() {
        let (mut fc, mut mem) = cache();
        let sets = fc.num_sets();
        let mut t = 0;
        for k in 0..32u64 {
            let a = fc.access(t, &read(k * sets * PAGE_BYTES), &mut mem);
            t = a.done_ps;
            assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        }
        for k in 0..32u64 {
            let a = fc.access(t, &read(k * sets * PAGE_BYTES), &mut mem);
            t = a.done_ps;
            assert_eq!(a.outcome, AccessOutcome::Hit, "way {k} evicted");
        }
        assert_eq!(fc.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_oldest_of_33() {
        let (mut fc, mut mem) = cache();
        let sets = fc.num_sets();
        let mut t = 0;
        for k in 0..33u64 {
            let a = fc.access(t, &read(k * sets * PAGE_BYTES), &mut mem);
            t = a.done_ps;
        }
        assert_eq!(fc.stats().evictions, 1);
        // Page 0 (the oldest) was the victim, so this access cannot hit.
        // (It may resolve as a singleton bypass: every page in this test
        // demanded exactly one block, so the predictor learned a
        // singleton footprint for this PC — which is itself correct.)
        let a = fc.access(t, &read(0), &mut mem);
        assert_ne!(a.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn footprint_learning_works() {
        let (mut fc, mut mem) = cache();
        let sets = fc.num_sets();
        let mut t = 0;
        // Touch blocks 0 and 9 of page 0, then evict with 32 conflicts.
        let a = fc.access(t, &read(0), &mut mem);
        t = a.done_ps;
        let a = fc.access(t, &read(9 * 64), &mut mem);
        t = a.done_ps;
        for k in 1..=32u64 {
            let a = fc.access(t, &read(k * sets * PAGE_BYTES), &mut mem);
            t = a.done_ps;
        }
        let fills_before = fc.stats().fill_blocks;
        let a = fc.access(t, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        assert_eq!(fc.stats().fill_blocks - fills_before, 2, "learned {{0, 9}}");
    }
}
