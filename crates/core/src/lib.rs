//! Die-stacked DRAM cache designs: the paper's contribution and its
//! baselines.
//!
//! This crate implements the five cache organizations the Unison Cache
//! paper evaluates, behind one trait ([`DramCacheModel`]):
//!
//! | Design | Paper role | Module |
//! |---|---|---|
//! | [`UnisonCache`] | the contribution (§III) | [`unison`] |
//! | [`AlloyCache`] | state-of-the-art block-based baseline (§II-A) | [`alloy`] |
//! | [`FootprintCache`] | state-of-the-art page-based baseline (§II-B) | [`footprint_cache`] |
//! | [`IdealCache`] | 100%-hit latency-optimized reference (§V.C) | [`ideal`] |
//! | [`NoCache`] | the speedup-1.0 baseline (all traffic off-chip) | [`nocache`] |
//!
//! All designs share the same two DRAM devices through [`MemPorts`], so
//! bandwidth contention, row-buffer behaviour, and energy are modeled
//! uniformly; they differ only in organization and prediction machinery —
//! exactly the comparison the paper makes.
//!
//! # Example
//!
//! ```
//! use unison_core::{DramCacheModel, MemPorts, Request, UnisonCache, UnisonConfig};
//!
//! let mut ports = MemPorts::paper_default();
//! let mut uc = UnisonCache::new(UnisonConfig::new(128 << 20));
//! let req = Request { core: 0, pc: 0x400, addr: 0x10_0000, is_write: false };
//! let a = uc.access(0, &req, &mut ports);
//! assert!(!a.hit()); // cold cache
//! assert!(a.critical_ps > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloy;
pub mod footprint_cache;
pub mod ideal;
pub mod layout;
pub mod meta;
mod model;
pub mod nocache;
mod ports;
pub mod residue;
mod stats;
mod types;
pub mod unison;

pub use alloy::{AlloyCache, AlloyConfig};
pub use footprint_cache::{FootprintCache, FootprintConfig};
pub use ideal::IdealCache;
pub use meta::{MetaStore, PageMeta, Replacement};
pub use model::{CacheAccess, DramCacheModel};
pub use nocache::NoCache;
pub use ports::MemPorts;
pub use stats::CacheStats;
pub use types::{AccessOutcome, Request, BLOCK_BYTES};
pub use unison::{UnisonCache, UnisonConfig, WayPolicy};
