//! Unison Cache — the paper's contribution (§III).
//!
//! A page-based, set-associative stacked-DRAM cache with:
//!
//! * **in-DRAM tags** (one tag per page, stored at the head of each DRAM
//!   row — Figures 2–3) so no SRAM tag array is needed at any capacity;
//! * **overlapped tag + data reads**: the 32 B set-metadata read and the
//!   64 B data read of the *predicted way* issue back-to-back to the same
//!   row, so a hit costs roughly one DRAM access plus two CPU cycles of
//!   metadata transfer (§III-A);
//! * **way prediction** (§III-A.6) to make 4-way associativity free in
//!   latency and bandwidth;
//! * **footprint prediction** (§III-A.1–3) to fetch only the blocks a
//!   page will actually use, and **singleton bypass** (§III-A.4) to avoid
//!   wasting a page frame on one-block footprints;
//! * **residue-arithmetic address mapping** (§III-A.7) for the
//!   non-power-of-two 960 B / 1984 B page sizes.

use serde::{Deserialize, Serialize};
use unison_dram::{cpu_cycles_to_ps, Op, Ps, RowCol};
use unison_predictors::{Footprint, FootprintTable, SingletonEntry, SingletonTable, WayPredictor};

use crate::layout::{unison_tag_read_bytes, UnisonRowLayout, ROW_BYTES};
use crate::meta::{MetaStore, PageMeta, Replacement};
use crate::model::{CacheAccess, DramCacheModel};
use crate::ports::MemPorts;
use crate::residue::split_page_offset;
use crate::stats::CacheStats;
use crate::types::{AccessOutcome, Request, BLOCK_BYTES};

/// How the cache locates the correct way of a set.
///
/// Serialized by its CLI spelling (`"predict"`, `"parallel-fetch"`,
/// `"serial-tag-data"`) so scenario JSON files and sweep axis flags share
/// one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WayPolicy {
    /// The paper's design: predict one way, read it alongside the tags.
    Predict,
    /// Ablation: read *all* ways alongside the tags (no predictor) — the
    /// "vast data overfetch" alternative §III-A.5 rejects.
    ParallelFetch,
    /// Ablation: read tags first, then the correct way — the
    /// "tags-then-data serialization" alternative §III-A.5 rejects.
    SerialTagData,
}

impl WayPolicy {
    /// Every policy, in display order.
    pub const ALL: [WayPolicy; 3] = [
        WayPolicy::Predict,
        WayPolicy::ParallelFetch,
        WayPolicy::SerialTagData,
    ];

    /// The policy's canonical (CLI and JSON) spelling.
    pub fn name(&self) -> &'static str {
        match self {
            WayPolicy::Predict => "predict",
            WayPolicy::ParallelFetch => "parallel-fetch",
            WayPolicy::SerialTagData => "serial-tag-data",
        }
    }

    /// Comma-joined list of all valid names, for error messages.
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Parses a policy name (case-insensitive; `parallel` and `serial`
    /// are accepted shorthands).
    pub fn from_name(name: &str) -> Option<WayPolicy> {
        match name.trim().to_ascii_lowercase().as_str() {
            "predict" => Some(WayPolicy::Predict),
            "parallel-fetch" | "parallel" => Some(WayPolicy::ParallelFetch),
            "serial-tag-data" | "serial" => Some(WayPolicy::SerialTagData),
            _ => None,
        }
    }

    /// [`Self::from_name`] with an error that lists the valid names.
    ///
    /// # Errors
    ///
    /// Returns the full valid-name list when `name` matches no policy.
    pub fn parse(name: &str) -> Result<WayPolicy, String> {
        Self::from_name(name).ok_or_else(|| {
            format!(
                "unknown way policy {name:?} (valid policies: {})",
                Self::valid_names()
            )
        })
    }
}

impl Serialize for WayPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for WayPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s).map_err(serde::DeError::msg),
            other => Err(serde::DeError::msg(format!(
                "expected a way-policy name, got {}",
                other.kind()
            ))),
        }
    }
}

/// Configuration of a [`UnisonCache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnisonConfig {
    /// Stacked-DRAM capacity managed by the cache, in bytes.
    pub cache_bytes: u64,
    /// Blocks per page: 15 (960 B pages) or 31 (1984 B). Must be
    /// `2^n − 1` for the residue mapper.
    pub page_blocks: u32,
    /// Set associativity (1, 4, or 32 in the paper's experiments).
    pub assoc: u32,
    /// Way-location policy (the paper uses prediction).
    pub way_policy: WayPolicy,
    /// Fixed cache-controller overhead per request, in CPU cycles
    /// (request routing and the residue unit; the paper overlaps the
    /// residue computation with the L2 access, so this stays small).
    pub ctrl_overhead_cycles: u64,
    /// Capacity used for the way-predictor sizing rule (12-bit hash up
    /// to 4 GB, 16-bit above — §III-A.6). Defaults to `cache_bytes`;
    /// scaled experiment runs set the nominal paper-labeled size.
    pub nominal_bytes: u64,
}

impl UnisonConfig {
    /// The paper's default organization: 960 B pages, 4-way, way
    /// prediction (§IV-C.1).
    pub fn new(cache_bytes: u64) -> Self {
        UnisonConfig {
            cache_bytes,
            page_blocks: 15,
            assoc: 4,
            way_policy: WayPolicy::Predict,
            ctrl_overhead_cycles: 2,
            nominal_bytes: cache_bytes,
        }
    }

    /// Overrides the size used for the way-predictor sizing rule.
    #[must_use]
    pub fn with_nominal(mut self, nominal_bytes: u64) -> Self {
        self.nominal_bytes = nominal_bytes;
        self
    }

    /// The 1984 B-page variant evaluated in Table V.
    pub fn large_pages(cache_bytes: u64) -> Self {
        UnisonConfig {
            page_blocks: 31,
            ..UnisonConfig::new(cache_bytes)
        }
    }

    /// Same organization with a different associativity (Figure 5).
    #[must_use]
    pub fn with_assoc(mut self, assoc: u32) -> Self {
        self.assoc = assoc;
        self
    }

    /// Same organization with a different page size, given in **blocks**
    /// (must be `2^n − 1` for the residue mapper: 3, 7, 15, 31, 63 …
    /// i.e. 192 B, 448 B, 960 B, 1984 B, 4032 B pages).
    #[must_use]
    pub fn with_page_blocks(mut self, page_blocks: u32) -> Self {
        self.page_blocks = page_blocks;
        self
    }

    /// Same organization with a different way policy (ablations).
    #[must_use]
    pub fn with_way_policy(mut self, policy: WayPolicy) -> Self {
        self.way_policy = policy;
        self
    }

    fn digit_bits(&self) -> u32 {
        // page_blocks = 2^n - 1  =>  n = trailing ones.
        (self.page_blocks + 1).trailing_zeros()
    }
}

/// The Unison Cache design. See the [module docs](self) for the feature
/// inventory and the paper-section mapping.
///
/// Set metadata — tags, per-block present/demanded/dirty masks (the
/// paper's re-encoded block state, §III-A.2), LRU ages, and the
/// allocation-trigger `(PC, offset)` pairs — lives in a struct-of-arrays
/// [`MetaStore`] so the per-access probe/touch/victim walks run over
/// contiguous memory.
#[derive(Debug, Clone)]
pub struct UnisonCache {
    cfg: UnisonConfig,
    layout: UnisonRowLayout,
    num_sets: u64,
    meta: MetaStore,
    fp_table: FootprintTable,
    singletons: SingletonTable,
    wp: WayPredictor,
    stats: CacheStats,
}

impl UnisonCache {
    /// Builds the cache with paper-default predictor geometries.
    ///
    /// # Panics
    ///
    /// Panics if `page_blocks` is not of the form `2^n − 1`, or the
    /// geometry yields zero sets.
    pub fn new(cfg: UnisonConfig) -> Self {
        assert!(
            (cfg.page_blocks + 1).is_power_of_two(),
            "page_blocks must be 2^n - 1 for the residue mapper"
        );
        assert!(cfg.assoc >= 1, "associativity must be at least 1");
        let layout = UnisonRowLayout::new(cfg.page_blocks, cfg.assoc);
        let num_sets = layout.num_sets(cfg.cache_bytes);
        assert!(num_sets > 0, "cache too small for even one set");
        UnisonCache {
            layout,
            num_sets,
            meta: MetaStore::paged(num_sets, cfg.assoc, Replacement::AgingLru),
            fp_table: FootprintTable::paper_default(cfg.page_blocks),
            singletons: SingletonTable::paper_default(),
            // 2-bit entries hold at most 4 ways; larger associativities
            // (the Figure 5 hypothetical) degrade to way 0 prediction.
            wp: WayPredictor::for_cache_size(cfg.nominal_bytes, cfg.assoc.min(4)),
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &UnisonConfig {
        &self.cfg
    }

    /// The derived row layout.
    pub fn layout(&self) -> &UnisonRowLayout {
        &self.layout
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    fn set_of(&self, page: u64) -> u64 {
        page % self.num_sets
    }

    fn tag_of(&self, page: u64) -> u64 {
        page / self.num_sets
    }

    /// Stacked-DRAM location of a set's metadata region.
    fn meta_loc(&self, set: u64) -> RowCol {
        if self.layout.sets_per_row > 0 {
            let spr = u64::from(self.layout.sets_per_row);
            let row = set / spr;
            let slot = (set % spr) as u32;
            RowCol::new(row, slot * 16 * self.cfg.assoc)
        } else {
            // Hypothetical multi-row sets (32-way, Figure 5): timing is
            // approximated by addressing the set's first row.
            RowCol::new(set, 0)
        }
    }

    /// Stacked-DRAM location of a block within a way of a set.
    fn data_loc(&self, set: u64, way: u32, block: u32) -> RowCol {
        if self.layout.sets_per_row > 0 {
            let spr = u64::from(self.layout.sets_per_row);
            let row = set / spr;
            let slot = (set % spr) as u32;
            let meta_total = 16 * self.cfg.assoc * self.layout.sets_per_row;
            let page_idx = slot * self.cfg.assoc + way;
            let col = meta_total
                + page_idx * self.layout.page_bytes() as u32
                + block * BLOCK_BYTES as u32;
            debug_assert!(u64::from(col) + BLOCK_BYTES <= ROW_BYTES);
            RowCol::new(row, col)
        } else {
            let col = (u64::from(way % self.layout.pages_per_row) * self.layout.page_bytes()
                + u64::from(block) * BLOCK_BYTES)
                % (ROW_BYTES - BLOCK_BYTES);
            RowCol::new(set, col as u32)
        }
    }

    /// Physical byte address of `block` within `page`.
    fn block_phys_addr(&self, page: u64, block: u32) -> u64 {
        (page * u64::from(self.cfg.page_blocks) + u64::from(block)) * BLOCK_BYTES
    }

    /// Evicts the page in (set, way), writing back dirty blocks and
    /// training the footprint predictor with the observed footprint.
    /// Returns the time the eviction traffic completes.
    fn evict(&mut self, now: Ps, set: u64, way: u32, mem: &mut MemPorts) -> Ps {
        debug_assert!(self.meta.is_valid(set, way));
        // One gather from the SoA arrays covers the whole eviction: the
        // trigger identity and the demanded/predicted/dirty masks.
        let info = self.meta.eviction_info(set, way, self.cfg.page_blocks);
        let victim_page = self.meta.tag(set, way) * self.num_sets + set;
        let mut done = now;

        // The (PC, offset) pair and bit vectors are read from the row at
        // eviction (§III-A.6): one small metadata read, typically a row
        // buffer hit.
        let meta = mem.stacked.access(now, Op::Read, self.meta_loc(set), 8);
        done = done.max(meta.last_data_ps);
        self.stats.stacked_read_bytes += 8;

        // Dirty blocks: read out of the cache row, write back off-chip.
        for b in info.dirty.iter() {
            let rd = mem.stacked.access(
                meta.last_data_ps,
                Op::Read,
                self.data_loc(set, way, b),
                BLOCK_BYTES as u32,
            );
            let wr = mem.offchip.access_addr(
                rd.last_data_ps,
                Op::Write,
                self.block_phys_addr(victim_page, b),
                BLOCK_BYTES as u32,
            );
            done = done.max(wr.last_data_ps);
            self.stats.stacked_read_bytes += BLOCK_BYTES;
            self.stats.offchip_write_bytes += BLOCK_BYTES;
            self.stats.writeback_blocks += 1;
        }

        // Train the footprint predictor with the actual footprint and
        // record the prediction-quality accounting (Table V).
        let q = self.fp_table.observe_eviction(&info);
        self.stats.fp_predicted_blocks += q.predicted_blocks;
        self.stats.fp_actual_blocks += q.actual_blocks;
        self.stats.fp_covered_blocks += q.covered_blocks;
        self.stats.fp_over_blocks += q.over_blocks;
        self.stats.evictions += 1;

        self.meta.invalidate(set, way);
        done
    }

    /// Fetches `mask` from off-chip memory into (set, way), critical
    /// (trigger) block first. Returns `(critical_ready, all_done)`.
    #[allow(clippy::too_many_arguments)]
    fn fetch_footprint(
        &mut self,
        now: Ps,
        page: u64,
        set: u64,
        way: u32,
        trigger: u32,
        mask: Footprint,
        mem: &mut MemPorts,
    ) -> (Ps, Ps) {
        debug_assert!(mask.contains(trigger));
        let crit = mem.offchip.access_addr(
            now,
            Op::Read,
            self.block_phys_addr(page, trigger),
            BLOCK_BYTES as u32,
        );
        self.stats.offchip_read_bytes += BLOCK_BYTES;
        let fill = mem.stacked.access(
            crit.last_data_ps,
            Op::Write,
            self.data_loc(set, way, trigger),
            BLOCK_BYTES as u32,
        );
        self.stats.stacked_write_bytes += BLOCK_BYTES;
        self.stats.fill_blocks += 1;
        let mut done = fill.last_data_ps;

        for b in mask.iter().filter(|&b| b != trigger) {
            let rd = mem.offchip.access_addr(
                now,
                Op::Read,
                self.block_phys_addr(page, b),
                BLOCK_BYTES as u32,
            );
            let wr = mem.stacked.access(
                rd.last_data_ps,
                Op::Write,
                self.data_loc(set, way, b),
                BLOCK_BYTES as u32,
            );
            self.stats.offchip_read_bytes += BLOCK_BYTES;
            self.stats.stacked_write_bytes += BLOCK_BYTES;
            self.stats.fill_blocks += 1;
            done = done.max(wr.last_data_ps);
        }
        (crit.first_data_ps, done)
    }
}

impl DramCacheModel for UnisonCache {
    fn name(&self) -> &'static str {
        "Unison"
    }

    fn capacity_bytes(&self) -> u64 {
        self.cfg.cache_bytes
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        self.stats.accesses += 1;
        let t0 = now + cpu_cycles_to_ps(self.cfg.ctrl_overhead_cycles);
        let (page, offset) = split_page_offset(req.block_number(), self.cfg.digit_bits());
        let set = self.set_of(page);
        let tag = self.tag_of(page);

        // Way prediction happens in the DRAM controller, off the critical
        // path (§III-A.6).
        let predicted_way = match self.cfg.way_policy {
            WayPolicy::Predict => self.wp.predict(page),
            WayPolicy::ParallelFetch | WayPolicy::SerialTagData => 0,
        };

        // Metadata read: the tags + bit vectors of all ways (32 B for
        // 4 ways), always issued.
        let meta = mem.stacked.access(
            t0,
            Op::Read,
            self.meta_loc(set),
            unison_tag_read_bytes(self.cfg.assoc.min(self.layout.pages_per_row)),
        );
        self.stats.stacked_read_bytes += u64::from(unison_tag_read_bytes(self.cfg.assoc));
        let tag_known = meta.last_data_ps + cpu_cycles_to_ps(1); // tag compare

        // The overlapped data read(s), per way policy.
        let mut speculative_read_done = 0;
        match self.cfg.way_policy {
            WayPolicy::Predict => {
                let d = mem.stacked.access(
                    t0,
                    Op::Read,
                    self.data_loc(set, predicted_way, offset),
                    BLOCK_BYTES as u32,
                );
                self.stats.stacked_read_bytes += BLOCK_BYTES;
                speculative_read_done = d.last_data_ps;
            }
            WayPolicy::ParallelFetch => {
                for w in 0..self.cfg.assoc.min(self.layout.pages_per_row) {
                    let d = mem.stacked.access(
                        t0,
                        Op::Read,
                        self.data_loc(set, w, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.stacked_read_bytes += BLOCK_BYTES;
                    speculative_read_done = speculative_read_done.max(d.last_data_ps);
                }
            }
            WayPolicy::SerialTagData => {} // data read issued after tags
        }

        let found = self.meta.probe_set(set, tag);

        // Way-predictor bookkeeping: accuracy is defined over accesses to
        // resident pages (a prediction is "correct" when the page is
        // found in the predicted way). The predictor consumes the probe
        // result directly.
        if matches!(self.cfg.way_policy, WayPolicy::Predict) {
            if let Some(w) = found {
                self.stats.wp_lookups += 1;
                if self.wp.observe_probe(page, predicted_way, w) {
                    self.stats.wp_correct += 1;
                }
            }
        }

        let access = match found {
            Some(way) => {
                let block_bit = 1u32 << offset;
                if self.meta.present(set, way) & block_bit != 0 {
                    // ---- HIT ----
                    let data_ready = match self.cfg.way_policy {
                        WayPolicy::Predict => {
                            if way == predicted_way {
                                speculative_read_done.max(tag_known)
                            } else {
                                // Mispredict: re-read the correct way; the
                                // row is open, so this is a cheap row hit.
                                let d = mem.stacked.access(
                                    tag_known,
                                    Op::Read,
                                    self.data_loc(set, way, offset),
                                    BLOCK_BYTES as u32,
                                );
                                self.stats.stacked_read_bytes += BLOCK_BYTES;
                                d.last_data_ps
                            }
                        }
                        WayPolicy::ParallelFetch => speculative_read_done.max(tag_known),
                        WayPolicy::SerialTagData => {
                            let d = mem.stacked.access(
                                tag_known,
                                Op::Read,
                                self.data_loc(set, way, offset),
                                BLOCK_BYTES as u32,
                            );
                            self.stats.stacked_read_bytes += BLOCK_BYTES;
                            d.last_data_ps
                        }
                    };
                    let mut meta_dirty = false;
                    if self.meta.demanded(set, way) & block_bit == 0 {
                        self.meta.or_demanded(set, way, block_bit);
                        meta_dirty = true;
                    }
                    if req.is_write && self.meta.dirty(set, way) & block_bit == 0 {
                        self.meta.or_dirty(set, way, block_bit);
                        meta_dirty = true;
                    }
                    let mut done = data_ready;
                    if req.is_write {
                        // Store data into the row (background).
                        let w = mem.stacked.access(
                            data_ready,
                            Op::Write,
                            self.data_loc(set, way, offset),
                            BLOCK_BYTES as u32,
                        );
                        self.stats.stacked_write_bytes += BLOCK_BYTES;
                        done = done.max(w.last_data_ps);
                    }
                    if meta_dirty {
                        // Bit-vector update: coalesced in the controller's
                        // write queue and drained opportunistically, so it
                        // is charged as traffic but not as a timed access
                        // (an immediate write would charge a spurious
                        // write-to-read turnaround on every hit).
                        self.stats.stacked_write_bytes += 8;
                    }
                    self.stats.hits += 1;
                    CacheAccess {
                        outcome: AccessOutcome::Hit,
                        critical_ps: data_ready,
                        done_ps: done,
                    }
                } else {
                    // ---- UNDERPREDICTION MISS ---- (§III-A.3: page
                    // resident, block missing; fetch just the block).
                    let oc = mem.offchip.access_addr(
                        tag_known,
                        Op::Read,
                        self.block_phys_addr(page, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.offchip_read_bytes += BLOCK_BYTES;
                    let fill = mem.stacked.access(
                        oc.last_data_ps,
                        Op::Write,
                        self.data_loc(set, way, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.stacked_write_bytes += BLOCK_BYTES;
                    self.stats.fill_blocks += 1;
                    // Bit-vector update rides the write queue (see hit path).
                    self.stats.stacked_write_bytes += 8;
                    self.meta.or_present(set, way, block_bit);
                    self.meta.or_demanded(set, way, block_bit);
                    if req.is_write {
                        self.meta.or_dirty(set, way, block_bit);
                    }
                    self.stats.underprediction_misses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::UnderpredictionMiss,
                        critical_ps: oc.first_data_ps,
                        done_ps: fill.last_data_ps,
                    }
                }
            }
            None => {
                // ---- TRIGGER MISS ---- (§III-A.3/4).
                // Singleton-table correction: a previously bypassed page
                // touched at a *different* block was not a singleton.
                let singleton_info = self.singletons.lookup(page);
                let corrected = match singleton_info {
                    Some(s) if s.block != offset => {
                        let mut fp = Footprint::single(s.block, self.cfg.page_blocks);
                        fp.insert(offset);
                        self.fp_table.train(s.pc, s.offset, fp);
                        self.singletons.remove(page);
                        Some(fp)
                    }
                    _ => None,
                };

                let predicted_fp = corrected.or_else(|| self.fp_table.predict(req.pc, offset));
                let is_singleton_pred =
                    corrected.is_none() && predicted_fp.map(|f| f.is_singleton()).unwrap_or(false);

                if is_singleton_pred {
                    // Bypass: forward the block, allocate nothing.
                    let oc = mem.offchip.access_addr(
                        tag_known,
                        Op::Read,
                        self.block_phys_addr(page, offset),
                        BLOCK_BYTES as u32,
                    );
                    self.stats.offchip_read_bytes += BLOCK_BYTES;
                    self.singletons.insert(SingletonEntry {
                        pc: req.pc,
                        offset,
                        page,
                        block: offset,
                    });
                    self.stats.singleton_bypasses += 1;
                    CacheAccess {
                        outcome: AccessOutcome::SingletonBypass,
                        critical_ps: oc.first_data_ps,
                        done_ps: oc.last_data_ps,
                    }
                } else {
                    // Allocate: evict the LRU way, fetch the footprint.
                    let way = self.meta.evict_victim(set);
                    let mut evict_done = tag_known;
                    if self.meta.is_valid(set, way) {
                        evict_done = self.evict(tag_known, set, way, mem);
                    }
                    // No history => conservative full-page default.
                    let mut fetch =
                        predicted_fp.unwrap_or_else(|| Footprint::full(self.cfg.page_blocks));
                    fetch.insert(offset);

                    let (crit, fill_done) =
                        self.fetch_footprint(tag_known, page, set, way, offset, fetch, mem);

                    // Install metadata (tag, bit vectors, PC+offset): one
                    // 16 B write riding the write queue with the fills.
                    self.stats.stacked_write_bytes += 16;

                    let block_bit = 1u32 << offset;
                    self.meta.install(
                        set,
                        way,
                        PageMeta {
                            tag,
                            present: fetch.mask() as u32,
                            demanded: block_bit,
                            dirty: if req.is_write { block_bit } else { 0 },
                            predicted: fetch.mask() as u32,
                            pc: req.pc,
                            offset: offset as u8,
                        },
                    );
                    if matches!(self.cfg.way_policy, WayPolicy::Predict) {
                        self.wp.update(page, way.min(3));
                    }
                    self.meta.touch(set, way, 0);
                    self.stats.trigger_misses += 1;
                    return self.finish(
                        now,
                        CacheAccess {
                            outcome: AccessOutcome::TriggerMiss,
                            critical_ps: crit,
                            done_ps: fill_done.max(evict_done),
                        },
                    );
                }
            }
        };

        if let Some(way) = found {
            self.meta.touch(set, way, 0);
        }
        self.finish(now, access)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.wp.reset_stats();
    }
}

impl UnisonCache {
    fn finish(&mut self, now: Ps, a: CacheAccess) -> CacheAccess {
        self.stats.critical_latency_sum_ps += a.critical_ps.saturating_sub(now);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> (UnisonCache, MemPorts) {
        // 1 MB cache: 128 rows, 256 sets of 4 ways.
        (
            UnisonCache::new(UnisonConfig::new(1 << 20)),
            MemPorts::paper_default(),
        )
    }

    fn read(addr: u64) -> Request {
        Request {
            core: 0,
            pc: 0x400,
            addr,
            is_write: false,
        }
    }

    fn write(addr: u64) -> Request {
        Request {
            core: 0,
            pc: 0x400,
            addr,
            is_write: true,
        }
    }

    #[test]
    fn cold_access_is_trigger_miss_then_hit() {
        let (mut uc, mut mem) = small_cache();
        let a1 = uc.access(0, &read(0x10000), &mut mem);
        assert_eq!(a1.outcome, AccessOutcome::TriggerMiss);
        let a2 = uc.access(a1.done_ps, &read(0x10000), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::Hit);
        assert_eq!(uc.stats().hits, 1);
        assert_eq!(uc.stats().trigger_misses, 1);
    }

    #[test]
    fn full_page_default_makes_neighbors_hit() {
        // With no footprint history the whole page is fetched, so a
        // different block of the same page hits.
        let (mut uc, mut mem) = small_cache();
        let a1 = uc.access(0, &read(0), &mut mem);
        assert_eq!(a1.outcome, AccessOutcome::TriggerMiss);
        let a2 = uc.access(a1.done_ps, &read(5 * 64), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn hit_latency_well_below_miss_latency() {
        let (mut uc, mut mem) = small_cache();
        let a1 = uc.access(0, &read(0x40000), &mut mem);
        let t = a1.done_ps + 1_000_000;
        let a2 = uc.access(t, &read(0x40000), &mut mem);
        let miss_lat = a1.critical_ps;
        let hit_lat = a2.critical_ps - t;
        assert!(
            hit_lat * 2 < miss_lat,
            "hit {hit_lat} ps should be far below miss {miss_lat} ps"
        );
    }

    #[test]
    fn hit_latency_is_about_60_cpu_cycles() {
        // §V.B: "~60 cycles it takes to access DRAM". Cold-bank hit:
        // ACT + CAS + burst + 2 cycles tags + compare + ctrl.
        let (mut uc, mut mem) = small_cache();
        let a1 = uc.access(0, &read(0x40000), &mut mem);
        let t = a1.done_ps + 10_000_000; // bank long precharged? rows stay open; fine
        let a2 = uc.access(t, &read(0x40000), &mut mem);
        let hit_cycles = unison_dram::ps_to_cpu_cycles(a2.critical_ps - t);
        assert!(
            (20..=90).contains(&hit_cycles),
            "hit latency {hit_cycles} cycles out of plausible range"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        // Fill one set's 4 ways plus one more page mapping to the same
        // set; the LRU victim's dirty blocks must be written back.
        let (mut uc, mut mem) = small_cache();
        let sets = uc.num_sets();
        let page_bytes = 960u64;
        // Pages that map to set 0: page = k * sets.
        let mut t = 0;
        let a = uc.access(t, &write(0), &mut mem);
        t = a.done_ps;
        for k in 1..=4u64 {
            let addr = k * sets * page_bytes;
            let a = uc.access(t, &read(addr), &mut mem);
            t = a.done_ps;
        }
        assert!(uc.stats().evictions >= 1);
        assert!(uc.stats().writeback_blocks >= 1);
        assert!(uc.stats().offchip_write_bytes >= 64);
    }

    #[test]
    fn footprint_is_learned_after_eviction() {
        // Touch two blocks of a page, evict it, then re-trigger with the
        // same PC/offset: only those two blocks should be fetched.
        let (mut uc, mut mem) = small_cache();
        let sets = uc.num_sets();
        let page_bytes = 960u64;
        let mut t = 0;
        // Visit page 0: blocks 2 and 5, trigger offset 2.
        let a = uc.access(t, &read(2 * 64), &mut mem);
        t = a.done_ps;
        let a = uc.access(t, &read(5 * 64), &mut mem);
        t = a.done_ps;
        // Evict page 0 by filling set 0 with 4 conflicting pages.
        for k in 1..=4u64 {
            let a = uc.access(t, &read(k * sets * page_bytes + 2 * 64), &mut mem);
            t = a.done_ps;
        }
        assert!(uc.stats().evictions >= 1);
        let fills_before = uc.stats().fill_blocks;
        // Re-trigger page 0 at offset 2 with the same PC: prediction
        // should fetch exactly {2, 5}.
        let a = uc.access(t, &read(2 * 64), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        assert_eq!(uc.stats().fill_blocks - fills_before, 2);
    }

    #[test]
    fn singleton_prediction_bypasses_allocation() {
        let (mut uc, mut mem) = small_cache();
        let sets = uc.num_sets();
        let page_bytes = 960u64;
        let pc_single = 0x9000;
        let mut t = 0;
        // Teach the predictor that pc_single touches exactly one block:
        // visit a page once, then evict it.
        let touch = Request {
            core: 0,
            pc: pc_single,
            addr: 7 * 64,
            is_write: false,
        };
        let a = uc.access(t, &touch, &mut mem);
        t = a.done_ps;
        for k in 1..=4u64 {
            let a = uc.access(t, &read(k * sets * page_bytes + 7 * 64), &mut mem);
            t = a.done_ps;
        }
        // New page, same (pc, offset=7): should bypass.
        let fresh = Request {
            core: 0,
            pc: pc_single,
            addr: 10 * sets * page_bytes + 7 * 64,
            is_write: false,
        };
        let a = uc.access(t, &fresh, &mut mem);
        assert_eq!(a.outcome, AccessOutcome::SingletonBypass);
        assert_eq!(uc.stats().singleton_bypasses, 1);
    }

    #[test]
    fn singleton_correction_promotes_page() {
        let (mut uc, mut mem) = small_cache();
        let sets = uc.num_sets();
        let page_bytes = 960u64;
        let pc = 0xa000;
        let mut t = 0;
        // Teach singleton for (pc, offset 3).
        let r1 = Request {
            core: 0,
            pc,
            addr: 3 * 64,
            is_write: false,
        };
        let a = uc.access(t, &r1, &mut mem);
        t = a.done_ps;
        for k in 1..=4u64 {
            let a = uc.access(t, &read(k * sets * page_bytes + 3 * 64), &mut mem);
            t = a.done_ps;
        }
        // Bypass a fresh page.
        let base = 20 * sets * page_bytes;
        let r2 = Request {
            core: 0,
            pc,
            addr: base + 3 * 64,
            is_write: false,
        };
        let a = uc.access(t, &r2, &mut mem);
        assert_eq!(a.outcome, AccessOutcome::SingletonBypass);
        t = a.done_ps;
        // Touch a *different* block of the bypassed page: correction
        // kicks in and the page is allocated this time.
        let r3 = Request {
            core: 0,
            pc,
            addr: base + 9 * 64,
            is_write: false,
        };
        let a = uc.access(t, &r3, &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        t = a.done_ps;
        // Both blocks now resident.
        let a = uc.access(
            t,
            &Request {
                core: 0,
                pc,
                addr: base + 3 * 64,
                is_write: false,
            },
            &mut mem,
        );
        assert_eq!(a.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn way_predictor_accuracy_high_on_repeated_pages() {
        let (mut uc, mut mem) = small_cache();
        let mut t = 0;
        // Allocate a page then hammer it.
        for i in 0..50u64 {
            let a = uc.access(t, &read((i % 10) * 64), &mut mem);
            t = a.done_ps;
        }
        let s = uc.stats();
        assert!(s.wp_lookups > 0);
        assert!(
            s.wp_accuracy() > 0.9,
            "repeated-page stream should predict well, got {}",
            s.wp_accuracy()
        );
    }

    #[test]
    fn direct_mapped_config_works() {
        let mut uc = UnisonCache::new(UnisonConfig::new(1 << 20).with_assoc(1));
        let mut mem = MemPorts::paper_default();
        let a = uc.access(0, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        let a = uc.access(a.done_ps, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn thirty_two_way_config_works() {
        let mut uc = UnisonCache::new(UnisonConfig::new(1 << 20).with_assoc(32));
        let mut mem = MemPorts::paper_default();
        let a = uc.access(0, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        let a = uc.access(a.done_ps, &read(0), &mut mem);
        assert_eq!(a.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn conflicting_pages_coexist_with_associativity() {
        // Four pages mapping to one set must all be resident in a 4-way
        // cache (they'd thrash a direct-mapped one).
        let (mut uc, mut mem) = small_cache();
        let sets = uc.num_sets();
        let page_bytes = 960u64;
        let mut t = 0;
        for k in 0..4u64 {
            let a = uc.access(t, &read(k * sets * page_bytes), &mut mem);
            t = a.done_ps;
            assert_eq!(a.outcome, AccessOutcome::TriggerMiss);
        }
        for k in 0..4u64 {
            let a = uc.access(t, &read(k * sets * page_bytes), &mut mem);
            t = a.done_ps;
            assert_eq!(a.outcome, AccessOutcome::Hit, "page {k} evicted too early");
        }
        assert_eq!(uc.stats().evictions, 0);
    }

    #[test]
    fn write_hit_marks_dirty_and_writes_stacked() {
        let (mut uc, mut mem) = small_cache();
        let a = uc.access(0, &read(0x800), &mut mem);
        let before = uc.stats().stacked_write_bytes;
        let a2 = uc.access(a.done_ps, &write(0x800), &mut mem);
        assert_eq!(a2.outcome, AccessOutcome::Hit);
        assert!(uc.stats().stacked_write_bytes > before);
    }

    #[test]
    fn large_page_config_matches_layout() {
        let uc = UnisonCache::new(UnisonConfig::large_pages(1 << 20));
        assert_eq!(uc.layout().page_blocks, 31);
        assert_eq!(uc.layout().blocks_per_row, 124);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let (mut uc, mut mem) = small_cache();
        let a = uc.access(0, &read(0), &mut mem);
        uc.reset_stats();
        assert_eq!(uc.stats().accesses, 0);
        let a2 = uc.access(a.done_ps, &read(0), &mut mem);
        assert_eq!(
            a2.outcome,
            AccessOutcome::Hit,
            "contents must survive reset"
        );
    }

    #[test]
    #[should_panic(expected = "2^n - 1")]
    fn bad_page_blocks_panics() {
        let _ = UnisonCache::new(UnisonConfig {
            page_blocks: 16,
            ..UnisonConfig::new(1 << 20)
        });
    }

    #[test]
    fn way_policy_names_round_trip() {
        for p in WayPolicy::ALL {
            assert_eq!(WayPolicy::from_name(p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(
            WayPolicy::from_name("Parallel"),
            Some(WayPolicy::ParallelFetch)
        );
        assert_eq!(
            WayPolicy::from_name("serial"),
            Some(WayPolicy::SerialTagData)
        );
        let e = WayPolicy::parse("bogus").unwrap_err();
        for p in WayPolicy::ALL {
            assert!(e.contains(p.name()), "error {e:?} missing {}", p.name());
        }
    }

    #[test]
    fn with_page_blocks_builds_the_large_page_variant() {
        assert_eq!(
            UnisonConfig::new(1 << 30).with_page_blocks(31),
            UnisonConfig::large_pages(1 << 30)
        );
    }
}
