//! Property tests: the SoA [`MetaStore`] against the naive nested-Vec
//! arrays-of-structs [`NaiveStore`] reference on arbitrary request-like
//! operation streams.
//!
//! The driver below applies the same operations a cache design issues —
//! probe, recency touch, mask updates on hits, victim selection +
//! invalidate + install on misses — to both stores and asserts they stay
//! in lock-step on every observable: probe results, victim choices,
//! validity, entry contents, and recency stamps. It also checks the
//! structural invariants the designs rely on:
//!
//! * no two valid ways of a set ever share a tag;
//! * `dirty ⊆ present` and `demanded ⊆ present` for every valid entry;
//! * aging-LRU stamps never exceed 255 (the in-DRAM LRU byte);
//! * after a touch, the touched way is the set's most-recent way.

use proptest::prelude::*;
use unison_core::meta::reference::NaiveStore;
use unison_core::meta::LANES;
use unison_core::{MetaStore, PageMeta, Replacement};

// 24 sets: with 3 ways the store holds 72 entries, so high sets' valid
// bits straddle the boundary between two packed u64 words (set 21 spans
// entries 63..66) — the property streams must exercise that merge path,
// which no production geometry (1/2/4/32 ways, all dividing 64) reaches.
const SETS: u64 = 24;

/// One request-like step: `sel` picks the operation, the rest seed its
/// operands. Tags are drawn from a small space so streams actually hit.
type Op = (u8, u64, u64, u32, u32);

fn policy_of(which: bool) -> Replacement {
    if which {
        Replacement::AgingLru
    } else {
        Replacement::TimestampLru
    }
}

/// Applies one op to both stores, asserting observable equality at every
/// decision point. Returns the clock (monotonic per stream).
fn step(soa: &mut MetaStore, naive: &mut NaiveStore, op: Op, clock: u32) {
    let (sel, set_raw, tag_raw, bits_raw, pc_seed) = op;
    let set = set_raw % SETS;
    let tag = tag_raw % 16;
    let ways = soa.ways();
    match sel % 4 {
        // A read/write touching a resident page: mask updates + touch.
        0 => {
            let found = soa.probe_set(set, tag);
            assert_eq!(found, naive.probe_set(set, tag), "probe diverged");
            if let Some(w) = found {
                // Cache designs only demand/dirty blocks that are present.
                let present = soa.load(set, w).present;
                let bits = bits_raw & present;
                soa.or_demanded(set, w, bits);
                naive.or_demanded(set, w, bits);
                if pc_seed & 1 == 1 {
                    soa.or_dirty(set, w, bits);
                    naive.or_dirty(set, w, bits);
                }
                soa.touch(set, w, clock);
                naive.touch(set, w, clock);
                assert_eq!(soa.stamps(set), naive.stamps(set).as_slice());
            }
        }
        // A trigger miss: victim selection, eviction, install, touch.
        1 => {
            if soa.probe_set(set, tag).is_some() {
                return; // resident: nothing to allocate
            }
            let victim = soa.evict_victim(set);
            assert_eq!(victim, naive.evict_victim(set), "victim diverged");
            if soa.is_valid(set, victim) {
                // The eviction record must agree with the entry contents.
                let info = soa.eviction_info(set, victim, 31);
                let e = naive.load(set, victim);
                assert_eq!(info.actual.mask(), u64::from(e.demanded));
                assert_eq!(info.predicted.mask(), u64::from(e.predicted));
                assert_eq!(info.dirty.mask(), u64::from(e.dirty));
                assert_eq!(info.pc, e.pc);
                assert_eq!(info.offset, u32::from(e.offset));
                soa.invalidate(set, victim);
                naive.invalidate(set, victim);
            }
            // Masks only ever contain bits below page_blocks (31 here),
            // as in the cache designs.
            let present = (bits_raw & 0x7fff_ffff) | 1;
            let meta = PageMeta {
                tag,
                present,
                demanded: 1,
                dirty: if pc_seed & 1 == 1 { 1 } else { 0 },
                predicted: present,
                pc: u64::from(pc_seed),
                offset: (bits_raw % 31) as u8,
            };
            soa.install(set, victim, meta);
            naive.install(set, victim, meta);
            soa.touch(set, victim, clock);
            naive.touch(set, victim, clock);
        }
        // An invalidation (e.g. a bypass correction).
        2 => {
            let found = soa.probe_set(set, tag);
            assert_eq!(found, naive.probe_set(set, tag));
            if let Some(w) = found {
                soa.invalidate(set, w);
                naive.invalidate(set, w);
            }
        }
        // A pure recency touch of an arbitrary way.
        _ => {
            let w = bits_raw % ways;
            soa.touch(set, w, clock);
            naive.touch(set, w, clock);
        }
    }
}

/// Full-state comparison plus the structural invariants.
fn check_invariants(soa: &MetaStore, naive: &NaiveStore, policy: Replacement) {
    for set in 0..SETS {
        let mut live_tags = Vec::new();
        for w in 0..soa.ways() {
            assert_eq!(
                soa.is_valid(set, w),
                naive.is_valid(set, w),
                "validity diverged at ({set}, {w})"
            );
            if soa.is_valid(set, w) {
                let a = soa.load(set, w);
                let b = naive.load(set, w);
                assert_eq!(a, b, "entry diverged at ({set}, {w})");
                assert_eq!(
                    a.dirty & !a.present,
                    0,
                    "dirty block outside present at ({set}, {w})"
                );
                assert_eq!(
                    a.demanded & !a.present,
                    0,
                    "demanded block outside present at ({set}, {w})"
                );
                assert!(
                    !live_tags.contains(&a.tag),
                    "two valid ways of set {set} share tag {}",
                    a.tag
                );
                live_tags.push(a.tag);
            }
        }
        assert_eq!(
            soa.stamps(set),
            naive.stamps(set).as_slice(),
            "recency diverged at set {set}"
        );
        if policy == Replacement::AgingLru {
            assert!(
                soa.stamps(set).iter().all(|&s| s <= 255),
                "aging stamp overflowed its byte"
            );
        }
        assert_eq!(soa.evict_victim(set), naive.evict_victim(set));
    }
}

/// Applies one op to three stores at once — the vectorized [`MetaStore`]
/// paths, a second `MetaStore` driven exclusively through the retained
/// `*_scalar` reference loops, and the [`NaiveStore`] — asserting the
/// triangle agrees at every decision point. `clock` is supplied by the
/// caller and may repeat, so timestamp-LRU stamp ties occur on real
/// streams (not just hand-built states).
fn step_raced(
    soa: &mut MetaStore,
    scalar: &mut MetaStore,
    naive: &mut NaiveStore,
    op: Op,
    clock: u32,
) {
    let (sel, set_raw, tag_raw, bits_raw, pc_seed) = op;
    let set = set_raw % SETS;
    let tag = tag_raw % 16;
    let ways = soa.ways();
    match sel % 3 {
        // Probe + hit path: mask updates and a recency touch.
        0 => {
            let found = soa.probe_set(set, tag);
            assert_eq!(
                found,
                soa.probe_set_scalar(set, tag),
                "vectorized probe diverged from the scalar loop"
            );
            assert_eq!(found, scalar.probe_set_scalar(set, tag));
            assert_eq!(found, naive.probe_set(set, tag));
            if let Some(w) = found {
                let bits = bits_raw & soa.load(set, w).present;
                soa.or_demanded(set, w, bits);
                scalar.or_demanded(set, w, bits);
                naive.or_demanded(set, w, bits);
                soa.touch(set, w, clock);
                scalar.touch_scalar(set, w, clock);
                naive.touch(set, w, clock);
                assert_eq!(
                    soa.stamps(set),
                    scalar.stamps(set),
                    "vectorized touch diverged from the scalar loop"
                );
                assert_eq!(soa.stamps(set), naive.stamps(set).as_slice());
            }
        }
        // Miss path: victim selection, eviction, install, touch.
        1 => {
            if soa.probe_set(set, tag).is_some() {
                return;
            }
            let victim = soa.evict_victim(set);
            assert_eq!(
                victim,
                soa.evict_victim_scalar(set),
                "vectorized victim diverged from the scalar loop"
            );
            assert_eq!(victim, scalar.evict_victim_scalar(set));
            assert_eq!(victim, naive.evict_victim(set));
            if soa.is_valid(set, victim) {
                soa.invalidate(set, victim);
                scalar.invalidate(set, victim);
                naive.invalidate(set, victim);
            }
            let meta = PageMeta {
                tag,
                present: (bits_raw & 0x7fff_ffff) | 1,
                demanded: 1,
                dirty: 0,
                predicted: (bits_raw & 0x7fff_ffff) | 1,
                pc: u64::from(pc_seed),
                offset: (bits_raw % 31) as u8,
            };
            soa.install(set, victim, meta);
            scalar.install(set, victim, meta);
            naive.install(set, victim, meta);
            soa.touch(set, victim, clock);
            scalar.touch_scalar(set, victim, clock);
            naive.touch(set, victim, clock);
        }
        // A pure recency touch of an arbitrary way.
        _ => {
            let w = bits_raw % ways;
            soa.touch(set, w, clock);
            scalar.touch_scalar(set, w, clock);
            naive.touch(set, w, clock);
            assert_eq!(soa.stamps(set), scalar.stamps(set));
            assert_eq!(soa.stamps(set), naive.stamps(set).as_slice());
        }
    }
}

/// Associativities the vectorized-vs-scalar races sweep: below the lane
/// width, exactly one lane chunk, chunk + remainder (not a multiple of
/// [`LANES`]), several chunks, and the 64-way ceiling.
const RACE_WAYS: [u32; 8] = [
    1,
    3,
    LANES as u32 - 1,
    LANES as u32,
    LANES as u32 + 3,
    17,
    32,
    64,
];

proptest! {
    /// Arbitrary op streams keep the SoA store and the nested-Vec
    /// reference in lock-step under both replacement policies.
    #[test]
    fn soa_matches_nested_vec_reference(
        aging in any::<bool>(),
        ways in 1u32..=4,
        ops in proptest::collection::vec(
            (0u8..4, 0u64..64, 0u64..64, any::<u32>(), any::<u32>()),
            1..250,
        )
    ) {
        let policy = policy_of(aging);
        let mut soa = MetaStore::paged(SETS, ways, policy);
        let mut naive = NaiveStore::paged(SETS, ways, policy);
        for (i, op) in ops.into_iter().enumerate() {
            step(&mut soa, &mut naive, op, i as u32 + 1);
        }
        check_invariants(&soa, &naive, policy);
    }

    /// After touching a valid way under aging LRU it is never the next
    /// victim of a full set (the defining LRU-order property), and under
    /// timestamp LRU the victim is always the least-recently-stamped
    /// valid way.
    #[test]
    fn touched_way_is_most_recent(
        aging in any::<bool>(),
        ways in 2u32..=4,
        seed_ops in proptest::collection::vec(
            (0u8..4, 0u64..64, 0u64..64, any::<u32>(), any::<u32>()),
            1..120,
        ),
        set_raw in 0u64..64,
        way_raw in 0u32..4,
    ) {
        let policy = policy_of(aging);
        let mut soa = MetaStore::paged(SETS, ways, policy);
        let mut naive = NaiveStore::paged(SETS, ways, policy);
        let mut clock = 0;
        for op in seed_ops {
            clock += 1;
            step(&mut soa, &mut naive, op, clock);
        }
        // Fill the chosen set completely so the victim is a true LRU
        // choice, not an invalid way.
        let set = set_raw % SETS;
        for w in 0..ways {
            if !soa.is_valid(set, w) {
                let meta = PageMeta { tag: 100 + u64::from(w), ..PageMeta::default() };
                soa.install(set, w, meta);
                naive.install(set, w, meta);
                clock += 1;
                soa.touch(set, w, clock);
                naive.touch(set, w, clock);
            }
        }
        let way = way_raw % ways;
        clock += 1;
        soa.touch(set, way, clock);
        naive.touch(set, way, clock);
        let victim = soa.evict_victim(set);
        prop_assert_eq!(victim, naive.evict_victim(set));
        prop_assert!(victim != way, "most-recently-touched way chosen as victim");
        if policy == Replacement::TimestampLru {
            let stamps = soa.stamps(set);
            let min = *stamps.iter().min().expect("ways >= 2");
            prop_assert_eq!(stamps[victim as usize], min);
        }
    }

    /// The eviction record is a pure projection of the entry state: its
    /// masks always reproduce the load() view truncated to the page.
    #[test]
    fn eviction_info_is_projection(
        tag in 0u64..1000,
        present in any::<u32>(),
        demanded in any::<u32>(),
        dirty in any::<u32>(),
        pc in any::<u64>(),
        offset in 0u32..31,
        page_blocks in 1u32..=31,
    ) {
        let mut m = MetaStore::paged(2, 2, Replacement::AgingLru);
        let meta = PageMeta {
            tag,
            present: present | demanded | dirty, // cache invariant
            demanded,
            dirty,
            predicted: present,
            pc,
            offset: offset as u8,
        };
        m.install(1, 1, meta);
        let info = m.eviction_info(1, 1, page_blocks);
        let page_mask = if page_blocks == 64 { u64::MAX } else { (1u64 << page_blocks) - 1 };
        prop_assert_eq!(info.actual.mask(), u64::from(demanded) & page_mask);
        prop_assert_eq!(info.predicted.mask(), u64::from(present) & page_mask);
        prop_assert_eq!(info.dirty.mask(), u64::from(dirty) & page_mask);
        prop_assert_eq!(info.pc, pc);
        prop_assert_eq!(info.offset, offset);
    }

    /// The vectorized probe/touch/victim walks are bit-identical to the
    /// retained scalar reference loops *and* the naive store on arbitrary
    /// op streams, across associativities below, at, and beyond the lane
    /// width — including widths that are not a multiple of [`LANES`]
    /// (remainder-chunk handling). The clock deliberately repeats every
    /// third step, so timestamp-LRU tie-breaks are exercised on live
    /// streams, and aging-LRU all-equal stamps (fresh installs) exercise
    /// the max-reduce tie rule.
    #[test]
    fn vectorized_walks_match_scalar_and_naive(
        aging in any::<bool>(),
        ways_idx in 0usize..RACE_WAYS.len(),
        ops in proptest::collection::vec(
            (0u8..3, 0u64..64, 0u64..64, any::<u32>(), any::<u32>()),
            1..250,
        )
    ) {
        let policy = policy_of(aging);
        let ways = RACE_WAYS[ways_idx];
        let mut soa = MetaStore::paged(SETS, ways, policy);
        let mut scalar = MetaStore::paged(SETS, ways, policy);
        let mut naive = NaiveStore::paged(SETS, ways, policy);
        for (i, op) in ops.into_iter().enumerate() {
            step_raced(&mut soa, &mut scalar, &mut naive, op, i as u32 / 3 + 1);
        }
        for set in 0..SETS {
            prop_assert_eq!(soa.stamps(set), scalar.stamps(set));
            prop_assert_eq!(soa.evict_victim(set), soa.evict_victim_scalar(set));
            prop_assert_eq!(soa.evict_victim(set), naive.evict_victim(set));
        }
    }
}

/// Deterministic tie-break sweep: full sets with hand-built stamp
/// patterns full of duplicates, across every raced associativity. Aging
/// LRU must resolve equal-max stamps to the *highest* way and timestamp
/// LRU equal-min stamps to the *lowest* — vectorized, scalar, and naive
/// all agreeing — including the all-equal pattern (every way tied).
#[test]
fn victim_tie_breaks_match_across_widths() {
    for &ways in &RACE_WAYS {
        for aging in [true, false] {
            let policy = policy_of(aging);
            let mut soa = MetaStore::paged(2, ways, policy);
            let mut naive = NaiveStore::paged(2, ways, policy);
            for w in 0..ways {
                let meta = PageMeta {
                    tag: u64::from(w),
                    ..PageMeta::default()
                };
                soa.install(0, w, meta);
                naive.install(0, w, meta);
            }
            // All stamps equal (zero) right after install: the whole set
            // is one big tie.
            let all_tied = soa.evict_victim(0);
            assert_eq!(all_tied, soa.evict_victim_scalar(0));
            assert_eq!(all_tied, naive.evict_victim(0));
            let expected = match policy {
                Replacement::AgingLru => ways - 1,
                Replacement::TimestampLru => 0,
            };
            assert_eq!(
                all_tied, expected,
                "{policy:?} all-tied victim at {ways} ways"
            );
            // A duplicate-heavy stamp pattern: timestamp clocks repeat
            // every three ways; aging stamps get the same shape via
            // per-way touch sequences under timestamp policy only, so
            // for aging we drive touches (which cap and tie naturally).
            match policy {
                Replacement::TimestampLru => {
                    for w in 0..ways {
                        soa.touch(0, w, w / 3);
                        naive.touch(0, w, w / 3);
                    }
                }
                Replacement::AgingLru => {
                    // Touch a strided subset: untouched ways all share the
                    // same (maximal) age — a multi-way tie.
                    for w in (0..ways).step_by(3) {
                        soa.touch(0, w, 0);
                        naive.touch(0, w, 0);
                    }
                }
            }
            assert_eq!(soa.stamps(0), naive.stamps(0).as_slice());
            let victim = soa.evict_victim(0);
            assert_eq!(
                victim,
                soa.evict_victim_scalar(0),
                "{policy:?} tie victim diverged from scalar at {ways} ways"
            );
            assert_eq!(
                victim,
                naive.evict_victim(0),
                "{policy:?} tie victim diverged from naive at {ways} ways"
            );
        }
    }
}
