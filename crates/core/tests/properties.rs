//! Property-based tests for the cache designs' invariants.

use proptest::prelude::*;
use unison_core::residue::{mod_2n_minus_1, split_page_offset};
use unison_core::{
    AlloyCache, AlloyConfig, DramCacheModel, FootprintCache, FootprintConfig, MemPorts, Request,
    UnisonCache, UnisonConfig,
};

proptest! {
    /// The residue unit agrees with `%` over the whole address space —
    /// the §III-A.7 hardware trick is exact.
    #[test]
    fn residue_matches_modulo(x in any::<u64>(), n in 1u32..=32) {
        let m = (1u64 << n) - 1;
        if m > 1 {
            prop_assert_eq!(mod_2n_minus_1(x, n), x % m);
        } else {
            prop_assert_eq!(mod_2n_minus_1(x, n), 0);
        }
    }

    /// Page/offset splitting reconstructs the block number for both
    /// Unison page sizes.
    #[test]
    fn split_reconstructs(bn in any::<u64>(), use_31 in any::<bool>()) {
        let n = if use_31 { 5 } else { 4 };
        let blocks = (1u64 << n) - 1;
        // Avoid the (page * blocks) overflow edge at u64::MAX.
        let bn = bn % (u64::MAX / 64);
        let (page, off) = split_page_offset(bn, n);
        prop_assert!(u64::from(off) < blocks);
        prop_assert_eq!(page * blocks + u64::from(off), bn);
    }

    /// After any request sequence, a resident block must hit on
    /// re-access (inclusion/coherence of the metadata state machine),
    /// for every design.
    #[test]
    fn resident_blocks_hit_on_reaccess(
        addrs in proptest::collection::vec(0u64..(1 << 24), 1..60),
    ) {
        let mut uc = UnisonCache::new(UnisonConfig::new(8 << 20));
        let mut ac = AlloyCache::new(AlloyConfig::new(8 << 20));
        let mut fc = FootprintCache::new(FootprintConfig::new(8 << 20));
        let mut mem = MemPorts::paper_default();
        let mut t = 0u64;
        for (i, &addr) in addrs.iter().enumerate() {
            let req = Request { core: (i % 16) as u8, pc: 0x400, addr, is_write: i % 3 == 0 };
            // Touch once (may miss), touch again immediately: must hit —
            // nothing can have evicted it in between.
            for expect_hit in [false, true] {
                let a = uc.access(t, &req, &mut mem);
                t = a.done_ps;
                if expect_hit {
                    prop_assert!(a.hit(), "unison lost a just-touched block @{addr:#x}");
                }
                let a = ac.access(t, &req, &mut mem);
                t = a.done_ps;
                if expect_hit {
                    prop_assert!(a.hit(), "alloy lost a just-touched block @{addr:#x}");
                }
                let a = fc.access(t, &req, &mut mem);
                t = a.done_ps;
                if expect_hit {
                    prop_assert!(a.hit(), "footprint lost a just-touched block @{addr:#x}");
                }
            }
        }
    }

    /// Statistics identities hold under arbitrary request streams:
    /// hits + misses == accesses, and critical latency is never negative.
    #[test]
    fn stats_identities(
        steps in proptest::collection::vec((0u64..(1 << 26), any::<bool>()), 1..150),
    ) {
        let mut uc = UnisonCache::new(UnisonConfig::new(4 << 20));
        let mut mem = MemPorts::paper_default();
        let mut t = 0u64;
        for (i, &(addr, w)) in steps.iter().enumerate() {
            let req = Request { core: (i % 16) as u8, pc: addr % 977, addr, is_write: w };
            let a = uc.access(t, &req, &mut mem);
            prop_assert!(a.critical_ps >= t);
            prop_assert!(a.done_ps >= a.critical_ps || a.done_ps >= t);
            t = a.done_ps;
        }
        let s = uc.stats();
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert_eq!(s.accesses, steps.len() as u64);
        // Footprint accounting identities.
        prop_assert!(s.fp_covered_blocks <= s.fp_actual_blocks);
        prop_assert!(s.fp_covered_blocks + s.fp_over_blocks == s.fp_predicted_blocks);
    }

    /// The LRU victim policy never evicts the most recently used way.
    #[test]
    fn lru_never_evicts_mru(conflicts in 2u64..12) {
        let mut uc = UnisonCache::new(UnisonConfig::new(1 << 20));
        let sets = uc.num_sets();
        let mut mem = MemPorts::paper_default();
        let mut t = 0u64;
        // Fill one set, then keep touching page 0 while streaming
        // conflicting pages through: page 0 must stay resident.
        let touch = |uc: &mut UnisonCache, mem: &mut MemPorts, t: &mut u64, page: u64| {
            let req = Request { core: 0, pc: 0x999, addr: page * sets * 960, is_write: false };
            let a = uc.access(*t, &req, mem);
            *t = a.done_ps;
            a
        };
        touch(&mut uc, &mut mem, &mut t, 0);
        for k in 1..=conflicts {
            touch(&mut uc, &mut mem, &mut t, k);
            let a = touch(&mut uc, &mut mem, &mut t, 0);
            prop_assert!(a.hit(), "MRU page 0 evicted after {k} conflicts");
        }
    }
}
