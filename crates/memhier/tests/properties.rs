//! Property-based tests for the SRAM cache models.

use proptest::prelude::*;
use unison_memhier::{SramCache, SramConfig};

proptest! {
    /// A just-accessed block always hits immediately after (the LRU
    /// policy can never evict the MRU line).
    #[test]
    fn mru_line_is_stable(addrs in proptest::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut c = SramCache::new(SramConfig {
            size_bytes: 8 << 10,
            ways: 2,
            latency_cycles: 1,
        });
        for addr in addrs {
            let _ = c.access(addr, false);
            prop_assert!(c.access(addr, false), "MRU block missed @{addr:#x}");
        }
    }

    /// Hit/miss accounting is consistent: accesses = hits + misses, and
    /// writebacks never exceed misses (only evictions write back).
    #[test]
    fn accounting_is_consistent(
        steps in proptest::collection::vec((0u64..(1 << 16), any::<bool>()), 1..500),
    ) {
        let mut c = SramCache::new(SramConfig {
            size_bytes: 4 << 10,
            ways: 4,
            latency_cycles: 1,
        });
        for &(addr, w) in &steps {
            let _ = c.access(addr, w);
        }
        let s = *c.stats();
        prop_assert_eq!(s.accesses, steps.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(s.writebacks <= s.accesses - s.hits);
    }

    /// A cache with more ways never has a *higher* miss count on the
    /// same trace (LRU is a stack algorithm at fixed capacity... per set;
    /// we check the common case with identical set counts scaled by
    /// ways, which preserves the inclusion property per address).
    #[test]
    fn more_capacity_never_hurts(addrs in proptest::collection::vec(0u64..(1 << 14), 1..400)) {
        let small = SramConfig { size_bytes: 2 << 10, ways: 4, latency_cycles: 1 };
        let large = SramConfig { size_bytes: 8 << 10, ways: 16, latency_cycles: 1 };
        let mut cs = SramCache::new(small);
        let mut cl = SramCache::new(large);
        for &a in &addrs {
            let _ = cs.access(a, false);
            let _ = cl.access(a, false);
        }
        // Same set count (32) with 4x the ways: LRU inclusion holds.
        prop_assert_eq!(small.sets(), large.sets());
        prop_assert!(cl.stats().hits >= cs.stats().hits);
    }
}
