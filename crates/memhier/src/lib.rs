//! SRAM cache hierarchy models (L1/L2) and the post-L2 trace filter.
//!
//! The paper's DRAM caches sit *below* a conventional on-chip hierarchy:
//! per-core 64 KB L1s and a shared 4 MB, 16-way L2 (Table III). The
//! hierarchy matters because it filters temporal locality out of the
//! reference stream — the reason block-based DRAM caches see such poor
//! hit rates (§II-A).
//!
//! This crate provides a generic set-associative writeback
//! [`SramCache`] model, the Table III [`Hierarchy`] composition, and
//! [`HierarchyFilter`], which converts an L1-level trace into the post-L2
//! stream a DRAM cache observes. The headline experiments use
//! `unison-trace`'s generators, which synthesize post-L2 streams
//! directly; this crate demonstrates the full path end-to-end and lets
//! integration tests validate the filtering argument.
//!
//! # Example
//!
//! ```
//! use unison_memhier::{SramCache, SramConfig};
//!
//! let mut l1 = SramCache::new(SramConfig::l1d());
//! assert!(!l1.access(0x1000, false)); // cold miss
//! assert!(l1.access(0x1000, false)); // hit
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod filter;
mod sram;

pub use filter::{FilteredStats, HierarchyFilter};
pub use sram::{Hierarchy, SramCache, SramConfig, SramStats};
