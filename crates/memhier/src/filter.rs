//! Turning an L1-level trace into the post-L2 stream a DRAM cache sees.

use unison_trace::TraceRecord;

use crate::sram::Hierarchy;

/// Statistics of a filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilteredStats {
    /// Records presented to the hierarchy.
    pub input_records: u64,
    /// Records that escaped the L2 (the DRAM-cache request stream).
    pub output_records: u64,
}

impl FilteredStats {
    /// Fraction of the input stream absorbed on-chip.
    pub fn absorption(&self) -> f64 {
        if self.input_records == 0 {
            0.0
        } else {
            1.0 - self.output_records as f64 / self.input_records as f64
        }
    }
}

/// An iterator adapter that runs records through [`Hierarchy`] and yields
/// only post-L2 misses, accumulating the filtered-out instruction gaps so
/// the surviving records carry the correct memory intensity.
///
/// # Example
///
/// ```
/// use unison_memhier::HierarchyFilter;
/// use unison_trace::{workloads, WorkloadGen};
///
/// let raw = WorkloadGen::new(workloads::web_serving(), 3).take(10_000);
/// let mut filter = HierarchyFilter::new(16, raw);
/// let survivors: Vec<_> = (&mut filter).collect();
/// assert!(survivors.len() < 10_000);
/// assert!(filter.stats().absorption() > 0.0);
/// ```
#[derive(Debug)]
pub struct HierarchyFilter<I> {
    inner: I,
    hierarchy: Hierarchy,
    /// Per-core instruction gap accumulated from absorbed records.
    pending_igap: Vec<u64>,
    stats: FilteredStats,
}

impl<I: Iterator<Item = TraceRecord>> HierarchyFilter<I> {
    /// Wraps `inner`, filtering through a fresh Table III hierarchy with
    /// `cores` L1s.
    pub fn new(cores: usize, inner: I) -> Self {
        HierarchyFilter {
            inner,
            hierarchy: Hierarchy::new(cores),
            pending_igap: vec![0; cores],
            stats: FilteredStats::default(),
        }
    }

    /// Filtering statistics so far.
    pub fn stats(&self) -> &FilteredStats {
        &self.stats
    }

    /// The underlying hierarchy (for inspecting L1/L2 stats).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

impl<I: Iterator<Item = TraceRecord>> Iterator for HierarchyFilter<I> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        for rec in self.inner.by_ref() {
            self.stats.input_records += 1;
            let core = usize::from(rec.core) % self.pending_igap.len();
            let absorbed = self.hierarchy.access(core, rec.addr, rec.kind.is_write());
            if absorbed {
                self.pending_igap[core] += u64::from(rec.igap);
            } else {
                self.stats.output_records += 1;
                let carried = self.pending_igap[core];
                self.pending_igap[core] = 0;
                let igap = (u64::from(rec.igap) + carried).min(u64::from(u32::MAX)) as u32;
                return Some(TraceRecord { igap, ..rec });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::{workloads, WorkloadGen};

    #[test]
    fn filter_reduces_stream_and_preserves_instructions() {
        let n = 20_000;
        let raw: Vec<_> = WorkloadGen::new(workloads::data_serving(), 11)
            .take(n)
            .collect();
        let total_instr: u64 = raw.iter().map(|r| u64::from(r.igap)).sum();
        let mut filter = HierarchyFilter::new(16, raw.into_iter());
        let out: Vec<_> = (&mut filter).collect();
        assert!(out.len() < n, "hierarchy should absorb something");
        // Instruction gaps of absorbed records are folded into survivors
        // (minus any tail still pending per core at end of stream).
        let out_instr: u64 = out.iter().map(|r| u64::from(r.igap)).sum();
        assert!(out_instr <= total_instr);
        assert!(
            out_instr * 10 > total_instr * 5,
            "most instructions should be carried by survivors"
        );
        assert_eq!(filter.stats().output_records as usize, out.len());
    }

    #[test]
    fn repeated_block_is_fully_absorbed() {
        let rec = |i: u32| TraceRecord {
            core: 0,
            kind: unison_trace::AccessKind::Read,
            pc: 0x400,
            addr: 0x8000,
            igap: 10 + i,
        };
        let raw = (0..100).map(rec);
        let out: Vec<_> = HierarchyFilter::new(1, raw).collect();
        assert_eq!(out.len(), 1, "only the cold miss survives");
    }
}
