//! Generic set-associative SRAM cache model.

use serde::{Deserialize, Serialize};

/// Block size of the on-chip hierarchy: 64 B (Table III).
pub const BLOCK_BYTES: u64 = 64;

/// Geometry and latency of one SRAM cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Load-to-use latency in CPU cycles (charged by the core model).
    pub latency_cycles: u64,
}

impl SramConfig {
    /// Table III L1-D: 64 KB, 2-cycle load-to-use. The paper doesn't
    /// give L1 associativity; 4-way is the Cortex-A15 configuration the
    /// core is modeled after.
    pub fn l1d() -> Self {
        SramConfig {
            size_bytes: 64 << 10,
            ways: 4,
            latency_cycles: 2,
        }
    }

    /// Table III L2: 4 MB, 16-way, 13-cycle hit latency.
    pub fn l2() -> Self {
        SramConfig {
            size_bytes: 4 << 20,
            ways: 16,
            latency_cycles: 13,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (BLOCK_BYTES * u64::from(self.ways))
    }
}

/// Hit/miss/writeback counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramStats {
    /// Lookups served.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Dirty blocks evicted (handed to the next level).
    pub writebacks: u64,
}

impl SramStats {
    /// Miss ratio of this level.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    stamp: u32,
}

/// A set-associative, writeback, write-allocate SRAM cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct SramCache {
    cfg: SramConfig,
    sets: u64,
    lines: Vec<Line>,
    clock: u32,
    stats: SramStats,
}

impl SramCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(cfg: SramConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0, "cache too small for its associativity");
        SramCache {
            sets,
            lines: vec![Line::default(); (sets * u64::from(cfg.ways)) as usize],
            clock: 0,
            stats: SramStats::default(),
            cfg,
        }
    }

    /// The configuration of this level.
    pub fn config(&self) -> &SramConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SramStats {
        &self.stats
    }

    fn line(&mut self, set: u64, way: u32) -> &mut Line {
        &mut self.lines[(set * u64::from(self.cfg.ways) + u64::from(way)) as usize]
    }

    /// Presents an access; returns `true` on hit. On miss the block is
    /// allocated (write-allocate for stores); a dirty victim increments
    /// the writeback counter and is returned so the caller can hand it
    /// down the hierarchy.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.access_full(addr, is_write).0
    }

    /// Like [`Self::access`], also returning the evicted dirty block's
    /// address, if any.
    pub fn access_full(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        self.clock = self.clock.wrapping_add(1);
        self.stats.accesses += 1;
        let bn = addr / BLOCK_BYTES;
        let set = bn % self.sets;
        let tag = bn / self.sets;
        let clock = self.clock;

        for w in 0..self.cfg.ways {
            let l = self.line(set, w);
            if l.valid && l.tag == tag {
                l.stamp = clock;
                if is_write {
                    l.dirty = true;
                }
                self.stats.hits += 1;
                return (true, None);
            }
        }

        // Miss: pick an invalid way or the LRU one.
        let victim = (0..self.cfg.ways)
            .find(|&w| !self.line(set, w).valid)
            .unwrap_or_else(|| {
                (0..self.cfg.ways)
                    .min_by_key(|&w| self.line(set, w).stamp)
                    .expect("ways >= 1")
            });
        let sets = self.sets;
        let old = *self.line(set, victim);
        let evicted = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            Some((old.tag * sets + set) * BLOCK_BYTES)
        } else {
            None
        };
        *self.line(set, victim) = Line {
            valid: true,
            dirty: is_write,
            tag,
            stamp: clock,
        };
        (false, evicted)
    }
}

/// The Table III on-chip hierarchy: per-core L1-D caches in front of one
/// shared L2.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Vec<SramCache>,
    l2: SramCache,
}

impl Hierarchy {
    /// Builds `cores` private L1s plus the shared L2.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Hierarchy {
            l1: (0..cores)
                .map(|_| SramCache::new(SramConfig::l1d()))
                .collect(),
            l2: SramCache::new(SramConfig::l2()),
        }
    }

    /// Presents an access from `core`; returns `true` if it was absorbed
    /// on-chip (L1 or L2 hit) and `false` if it becomes a post-L2 miss.
    /// L1 dirty victims are installed into the L2 (writeback path).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> bool {
        let (l1_hit, evicted) = self.l1[core].access_full(addr, is_write);
        if let Some(victim) = evicted {
            // L1 writeback lands in L2 (allocate-on-writeback).
            let _ = self.l2.access(victim, true);
        }
        if l1_hit {
            return true;
        }
        self.l2.access(addr, is_write)
    }

    /// L1 statistics for `core`.
    pub fn l1_stats(&self, core: usize) -> &SramStats {
        self.l1[core].stats()
    }

    /// Shared-L2 statistics.
    pub fn l2_stats(&self) -> &SramStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_geometries() {
        assert_eq!(SramConfig::l1d().sets(), 256);
        assert_eq!(SramConfig::l2().sets(), 4096);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = SramCache::new(SramConfig::l1d());
        assert!(!c.access(0x40, false));
        assert!(c.access(0x40, false));
        assert!(c.access(0x7f, false), "same block");
        assert!(!c.access(0x80, false), "next block");
    }

    #[test]
    fn lru_within_set() {
        let cfg = SramConfig {
            size_bytes: 4 * 64,
            ways: 4,
            latency_cycles: 1,
        }; // one set, 4 ways
        let mut c = SramCache::new(cfg);
        for i in 0..4u64 {
            c.access(i * 64, false);
        }
        // Touch block 0 to refresh it, then insert a 5th block.
        assert!(c.access(0, false));
        assert!(!c.access(4 * 64, false));
        // Victim must be block 1 (the LRU), not block 0.
        assert!(c.access(0, false));
        assert!(!c.access(64, false));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let cfg = SramConfig {
            size_bytes: 64,
            ways: 1,
            latency_cycles: 1,
        }; // one line
        let mut c = SramCache::new(cfg);
        c.access(0, true);
        let (_, evicted) = c.access_full(64, false);
        assert_eq!(evicted, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn hierarchy_filters_temporal_locality() {
        let mut h = Hierarchy::new(2);
        // Core 0 hammers one block: only the first access escapes L1.
        let mut post_l2 = 0;
        for _ in 0..100 {
            if !h.access(0, 0x1234_0000, false) {
                post_l2 += 1;
            }
        }
        assert_eq!(post_l2, 1);
        assert!(h.l1_stats(0).miss_ratio() < 0.05);
    }

    #[test]
    fn l2_catches_l1_conflicts() {
        let mut h = Hierarchy::new(1);
        // Two blocks conflicting in L1 (same L1 set, 4-way needs 5
        // conflicting blocks) but co-resident in the bigger L2.
        let l1_sets = SramConfig::l1d().sets();
        let stride = l1_sets * BLOCK_BYTES;
        let addrs: Vec<u64> = (0..5).map(|i| i * stride).collect();
        // First pass: all post-L2 misses.
        let misses1: usize = addrs.iter().filter(|&&a| !h.access(0, a, false)).count();
        assert_eq!(misses1, 5);
        // Second pass: L1 thrashes but L2 absorbs everything.
        let misses2: usize = addrs.iter().filter(|&&a| !h.access(0, a, false)).count();
        assert_eq!(misses2, 0);
    }
}
