//! Edge-case timing tests: turnarounds, cross-rank independence, and
//! sustained-bandwidth sanity for the DRAM engine.

use unison_dram::{cpu_cycles_to_ps, DramConfig, DramModel, Op, RowCol};

#[test]
fn write_after_write_streams_on_the_bus() {
    // Back-to-back writes to an open row should be bus-limited, not
    // turnaround-limited.
    let mut d = DramModel::new(DramConfig::stacked());
    let w1 = d.access(0, Op::Write, RowCol::new(0, 0), 64);
    let w2 = d.access(0, Op::Write, RowCol::new(0, 64), 64);
    assert_eq!(
        w2.last_data_ps - w1.last_data_ps,
        d.config().burst_ps(64),
        "second write should follow one burst behind the first"
    );
}

#[test]
fn tfaw_does_not_throttle_across_ranks() {
    // DDR3 preset has 2 ranks: four ACTs to rank 0 must not delay an ACT
    // to rank 1.
    let cfg = DramConfig::ddr3_1600();
    let banks = u64::from(cfg.banks);
    let mut d = DramModel::new(cfg.clone());
    // Rows 0..8: banks rotate first, so rows 0..8 cover rank 0's banks;
    // row `banks` (8) lands on rank 1, bank 0.
    for i in 0..4 {
        d.access(0, Op::Read, RowCol::new(i, 0), 64);
    }
    let other_rank = d.access(0, Op::Read, RowCol::new(banks, 0), 64);
    let t = cfg.timings;
    let upper = cpu_cycles_to_ps(0)
        + u64::from(t.t_rcd + t.t_cas) * cfg.clock_ps()
        + cfg.burst_ps(64)
        + 5 * cfg.burst_ps(64); // bus queue behind the four reads
    assert!(
        other_rank.last_data_ps <= upper,
        "rank-1 ACT throttled by rank-0 tFAW: {} > {}",
        other_rank.last_data_ps,
        upper
    );
}

#[test]
fn sustained_row_hits_approach_peak_bandwidth() {
    // Stream 64 reads from one open row: the bus should be the limiter,
    // so total time ≈ 64 bursts after the first access completes.
    let cfg = DramConfig::stacked();
    let burst = cfg.burst_ps(64);
    let mut d = DramModel::new(cfg);
    let first = d.access(0, Op::Read, RowCol::new(0, 0), 64);
    let mut last = first.last_data_ps;
    for i in 1..64u32 {
        last = d
            .access(0, Op::Read, RowCol::new(0, (i * 64) % 8128), 64)
            .last_data_ps;
    }
    let elapsed = last - first.last_data_ps;
    assert_eq!(elapsed, 63 * burst, "row-hit stream must be bus-limited");
}

#[test]
fn read_write_read_turnaround_costs_more_than_read_read() {
    let mut d1 = DramModel::new(DramConfig::ddr3_1600());
    let a = d1.access(0, Op::Read, RowCol::new(0, 0), 64);
    let b = d1.access(a.last_data_ps, Op::Write, RowCol::new(0, 64), 64);
    let c = d1.access(b.last_data_ps, Op::Read, RowCol::new(0, 128), 64);
    let rwr = c.last_data_ps;

    let mut d2 = DramModel::new(DramConfig::ddr3_1600());
    let a = d2.access(0, Op::Read, RowCol::new(0, 0), 64);
    let b = d2.access(a.last_data_ps, Op::Read, RowCol::new(0, 64), 64);
    let c = d2.access(b.last_data_ps, Op::Read, RowCol::new(0, 128), 64);
    let rrr = c.last_data_ps;

    assert!(rwr > rrr, "tWTR must make R-W-R slower than R-R-R");
}

#[test]
fn row_conflict_statistics_classify_correctly() {
    let cfg = DramConfig::ddr3_1600();
    let stride = u64::from(cfg.total_banks());
    let mut d = DramModel::new(cfg);
    d.access(0, Op::Read, RowCol::new(0, 0), 64); // empty
    let t = d.access(1_000_000, Op::Read, RowCol::new(0, 64), 64); // hit
    d.access(
        t.last_data_ps + 1_000_000,
        Op::Read,
        RowCol::new(stride, 0),
        64,
    ); // conflict
    let s = d.stats();
    assert_eq!(s.row_empty, 1);
    assert_eq!(s.row_hits, 1);
    assert_eq!(s.row_conflicts, 1);
}

#[test]
fn full_row_transfer_is_one_activation() {
    // Reading a whole 8KB row in 64B chunks must cost exactly one
    // activation — the premise of footprint-granularity efficiency.
    let mut d = DramModel::new(DramConfig::ddr3_1600());
    for i in 0..128u32 {
        d.access(0, Op::Read, RowCol::new(5, i * 64), 64);
    }
    assert_eq!(d.energy().activations, 1);
    assert_eq!(d.energy().bytes_read, 8192);
}
