//! Property tests: the table-driven [`DramModel::access`] fast path
//! against the retained div/mod + multiply [`DramModel::access_reference`]
//! on arbitrary access streams.
//!
//! The driver below feeds the *same* stream — both ops, mixed burst
//! sizes, arbitrary rows and arrival times — to two models built from the
//! same config and asserts they stay in lock-step on every observable:
//! each access's full [`Completion`] (CAS time, first/last data beat,
//! hit/activate/conflict classification), the aggregate [`DramStats`],
//! the energy counters, and the per-channel bus horizons. This mirrors
//! `crates/core/tests/meta_properties.rs`, which races the vectorized
//! metadata walks against their scalar reference the same way.
//!
//! Coverage spans every preset geometry (all power-of-two, so the
//! shift/mask `RouteMap` and premultiplied timing tables are live) plus a
//! deliberately non-pow2 geometry that forces the div/mod routing
//! fallback and the `burst_ps` recompute fallback inside the fast path.

use proptest::prelude::*;
use unison_dram::{Completion, DramConfig, DramModel, DramPreset, Op, RouteMap, RowCol};

/// One access: operation selector, raw row, raw column seed, burst-size
/// selector, and the gap to advance the arrival clock by.
type Step = (bool, u64, u32, u8, u32);

/// Burst sizes the designs actually issue: 32 B metadata reads, 64 B
/// blocks, 512 B footprint runs, and whole-row page transfers.
fn burst_bytes(sel: u8, row_bytes: u32) -> u32 {
    match sel % 4 {
        0 => 32.min(row_bytes),
        1 => 64.min(row_bytes),
        2 => 512.min(row_bytes),
        _ => row_bytes,
    }
}

/// Decodes one raw step against a geometry: a row-bounded access plus the
/// next arrival time. Rows are drawn small so streams revisit banks and
/// real hit/conflict interleavings occur.
fn decode(step: Step, row_bytes: u32, now: &mut u64) -> (u64, Op, RowCol, u32) {
    let (is_write, row_raw, col_raw, bytes_sel, gap) = step;
    let op = if is_write { Op::Write } else { Op::Read };
    let bytes = burst_bytes(bytes_sel, row_bytes);
    let col_byte = col_raw % (row_bytes - bytes + 1);
    let row = row_raw % 96; // a few multiples of every preset's bank count
    *now += u64::from(gap % 50_000);
    (*now, op, RowCol::new(row, col_byte), bytes)
}

/// Runs `steps` through a fast-path model and a reference model in
/// lock-step, asserting every observable matches.
fn race(cfg: DramConfig, steps: Vec<Step>) {
    let name = cfg.name;
    let mut fast = DramModel::new(cfg.clone());
    let mut reference = DramModel::new(cfg.clone());
    let mut now = 0u64;
    let mut now_ref = 0u64;
    for (i, step) in steps.into_iter().enumerate() {
        let (at, op, rc, bytes) = decode(step, cfg.row_bytes, &mut now);
        let (at_ref, ..) = decode(step, cfg.row_bytes, &mut now_ref);
        assert_eq!(at, at_ref);
        let a = fast.access(at, op, rc, bytes);
        let b = reference.access_reference(at, op, rc, bytes);
        assert_eq!(
            a, b,
            "{name}: completion diverged at step {i} ({op:?} {rc:?} x{bytes})"
        );
    }
    assert_eq!(fast.stats(), reference.stats(), "{name}: stats diverged");
    assert_eq!(fast.energy(), reference.energy(), "{name}: energy diverged");
    for row in 0..96 {
        assert_eq!(
            fast.channel_free_at(row),
            reference.channel_free_at(row),
            "{name}: bus horizon diverged on row {row}"
        );
    }
}

/// A geometry no preset has: non-pow2 channels, banks, and row size, plus
/// a bus width whose beat size is not a power of two — every fast-path
/// precomputation (`RouteMap`, beat-shift burst LUT) must decline and
/// fall back to the reference arithmetic inline.
fn non_pow2_config() -> DramConfig {
    let mut cfg = DramConfig::stacked();
    cfg.name = "non-pow2";
    cfg.channels = 3;
    cfg.banks = 5;
    cfg.row_bytes = 6144;
    cfg.bus_bits = 24; // 3-byte beats: burst LUT declines too
    cfg
}

proptest! {
    /// Arbitrary access streams keep the fast path and the reference
    /// bit-identical on every preset geometry (all pow2: `RouteMap` and
    /// the timing tables are fully live).
    #[test]
    fn fast_path_matches_reference_on_presets(
        preset_idx in 0usize..DramPreset::ALL.len(),
        steps in proptest::collection::vec(
            (any::<bool>(), any::<u64>(), any::<u32>(), any::<u8>(), any::<u32>()),
            1..200,
        )
    ) {
        let cfg = DramPreset::ALL[preset_idx].config();
        prop_assert!(DramModel::new(cfg.clone()).has_fast_route(),
            "{}: preset geometry must take the shift/mask route", cfg.name);
        race(cfg, steps);
    }

    /// The same race on a deliberately non-pow2 geometry: the fast entry
    /// point must produce identical results through its div/mod routing
    /// and `burst_ps` fallbacks.
    #[test]
    fn fast_path_matches_reference_on_non_pow2_fallback(
        steps in proptest::collection::vec(
            (any::<bool>(), any::<u64>(), any::<u32>(), any::<u8>(), any::<u32>()),
            1..200,
        )
    ) {
        let cfg = non_pow2_config();
        prop_assert!(!DramModel::new(cfg.clone()).has_fast_route());
        prop_assert!(RouteMap::try_new(&cfg).is_none());
        race(cfg, steps);
    }

    /// `access_addr` (physical-address entry point, used by the off-chip
    /// port) splits addresses identically whether the shift/AND
    /// `RouteMap::row_col` or the div/mod `RowCol::from_phys_addr` runs.
    #[test]
    fn access_addr_split_matches_reference(
        addrs in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        for cfg in [DramConfig::stacked(), DramConfig::ddr3_1600(), non_pow2_config()] {
            let mut fast = DramModel::new(cfg.clone());
            let mut reference = DramModel::new(cfg.clone());
            let mut now = 0u64;
            for &addr in &addrs {
                // Keep 64 B accesses row-bounded for any row size.
                let addr = addr - (addr % 64).min(addr);
                let a = fast.access_addr(now, Op::Read, addr, 64);
                let rc = RowCol::from_phys_addr(addr, cfg.row_bytes);
                let b = reference.access_reference(now, Op::Read, rc, 64);
                prop_assert_eq!(a, b, "{}: addr {:#x}", cfg.name, addr);
                now += 10_000;
            }
        }
    }
}

/// Deterministic spot-check of the classification triple on both paths:
/// a cold access activates (row_empty), a same-row follow-up hits, and a
/// same-bank different-row access conflicts — on every preset.
#[test]
fn classification_matches_on_every_preset() {
    for preset in DramPreset::ALL {
        let cfg = preset.config();
        let stride = u64::from(cfg.total_banks());
        let mut fast = DramModel::new(cfg.clone());
        let mut reference = DramModel::new(cfg.clone());
        let run = |m: &mut DramModel, f: fn(&mut DramModel, u64, Op, RowCol, u32) -> Completion| {
            let cold = f(m, 0, Op::Read, RowCol::new(7, 0), 64);
            let hit = f(m, cold.last_data_ps, Op::Read, RowCol::new(7, 64), 64);
            let conflict = f(
                m,
                hit.last_data_ps,
                Op::Write,
                RowCol::new(7 + stride, 0),
                64,
            );
            (cold, hit, conflict)
        };
        let a = run(&mut fast, |m, t, o, rc, b| m.access(t, o, rc, b));
        let b = run(&mut reference, |m, t, o, rc, b| {
            m.access_reference(t, o, rc, b)
        });
        assert_eq!(a, b, "{}", cfg.name);
        let (cold, hit, conflict) = a;
        assert!(
            cold.activated && !cold.row_hit && !cold.conflict,
            "{}",
            cfg.name
        );
        assert!(hit.row_hit && !hit.activated, "{}", cfg.name);
        assert!(conflict.conflict && conflict.activated, "{}", cfg.name);
    }
}

/// Release-build speed assertion for the nightly job (`--include-ignored`):
/// on a row-hit-heavy read stream — the campaign's common case — the
/// table-driven fast path must beat the retained div/mod + multiply
/// reference by ≥1.15×. Interleaved best-of-5 so machine noise hits both
/// sides equally.
#[test]
#[ignore = "perf assertion; meaningful in --release only (nightly CI runs it)"]
fn fast_access_beats_reference_on_row_hits() {
    use std::hint::black_box;
    use std::time::Instant;

    // In campaign use the geometry is runtime data (preset parsed from
    // the sweep spec); black_box keeps the compiler from specializing the
    // reference's div/mod to compile-time-constant divisors here.
    let cfg = black_box(DramConfig::stacked());
    let banks = u64::from(cfg.total_banks());
    // Rows 0..banks land on distinct banks; cycling them keeps every row
    // open, so after one lap the stream is pure row hits. The stream is
    // generated on the fly (a few adds and ANDs per access) so the loops
    // measure the access paths, not 50 MB of stream traffic.
    const N: u64 = 2_000_000;
    // Two monomorphic loops (macro, not fn pointer): call sites in the
    // campaign invoke `access` directly, so the measurement must let the
    // compiler inline each path into its loop the same way.
    macro_rules! time_loop {
        ($m:ident . $method:ident) => {{
            let t0 = Instant::now();
            let (mut row, mut col, mut at) = (0u64, 0u64, 0u64);
            let mut acc = 0u64;
            for _ in 0..N {
                acc ^= $m
                    .$method(at, Op::Read, RowCol::new(row, col as u32), 64)
                    .last_data_ps;
                row += 1;
                if row == banks {
                    row = 0;
                }
                col = (col + 64) & 8191;
                at += 2_500;
            }
            black_box(acc);
            t0.elapsed().as_nanos()
        }};
    }

    let mut best_fast = u128::MAX;
    let mut best_reference = u128::MAX;
    for _ in 0..7 {
        let mut m = DramModel::new(cfg.clone());
        best_fast = best_fast.min(time_loop!(m.access));
        let hits = m.stats().row_hits;
        assert!(
            hits > N - banks * 2,
            "stream must be row-hit-heavy, got {hits}"
        );

        let mut m = DramModel::new(cfg.clone());
        best_reference = best_reference.min(time_loop!(m.access_reference));
    }

    let speedup = best_reference as f64 / best_fast as f64;
    eprintln!(
        "dram access fast path: {:.2} ns/access vs reference {:.2} ns/access ({speedup:.3}x)",
        best_fast as f64 / N as f64,
        best_reference as f64 / N as f64,
    );
    assert!(
        speedup >= 1.15,
        "fast access path must beat the div/mod+multiply reference by >=1.15x \
         on row hits, got {speedup:.3}x (fast {best_fast} ns vs reference {best_reference} ns)"
    );
}
