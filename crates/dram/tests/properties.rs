//! Property-based tests for the DRAM timing engine.

use proptest::prelude::*;
use unison_dram::{DramConfig, DramModel, Op, RowCol};

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Read), Just(Op::Write)]
}

proptest! {
    /// Completion times never precede arrival, and data ordering holds.
    #[test]
    fn completions_are_causal(
        steps in proptest::collection::vec((0u64..64, 0u32..127, arb_op(), 1u64..4000), 1..200)
    ) {
        let mut d = DramModel::new(DramConfig::stacked());
        let mut now = 0u64;
        for (row, col64, op, gap) in steps {
            now += gap;
            let c = d.access(now, op, RowCol::new(row, col64 * 64), 64);
            prop_assert!(c.cas_ps >= now);
            prop_assert!(c.first_data_ps > c.cas_ps);
            prop_assert!(c.last_data_ps >= c.first_data_ps);
        }
    }

    /// The channel bus never double-books: each access's burst begins at
    /// or after the previous burst on the same channel ended.
    #[test]
    fn bus_is_never_double_booked(
        steps in proptest::collection::vec((0u64..16, arb_op(), 0u64..2000), 1..200)
    ) {
        let cfg = DramConfig::ddr3_1600(); // single channel: strongest check
        let burst = cfg.burst_ps(64);
        let mut d = DramModel::new(cfg);
        let mut now = 0u64;
        let mut last_end = 0u64;
        for (row, op, gap) in steps {
            now += gap;
            let c = d.access(now, op, RowCol::new(row, 0), 64);
            let start = c.last_data_ps - burst;
            prop_assert!(start >= last_end, "burst started before bus freed");
            last_end = c.last_data_ps;
        }
    }

    /// Same-bank accesses respect tRC between activations.
    #[test]
    fn same_bank_activations_respect_trc(
        gaps in proptest::collection::vec(0u64..3000, 2..100)
    ) {
        let cfg = DramConfig::ddr3_1600();
        let t = cfg.timings;
        let trc = u64::from(t.t_rc) * cfg.clock_ps();
        let stride = u64::from(cfg.total_banks());
        let mut d = DramModel::new(cfg);
        let mut now = 0u64;
        let mut last_act: Option<u64> = None;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            // Alternate two rows of the same bank: every access conflicts.
            let row = stride * (i as u64 % 2);
            let c = d.access(now, Op::Read, RowCol::new(row, 0), 64);
            if c.activated {
                let act_time = c.cas_ps; // CAS >= ACT + tRCD, so ACT <= CAS
                if let Some(prev) = last_act {
                    // ACT-to-ACT >= tRC; we check the conservative bound
                    // via CAS spacing (CAS_i - CAS_{i-1} >= tRC).
                    prop_assert!(act_time >= prev + trc);
                }
                last_act = Some(act_time);
            }
        }
    }

    /// Energy counters add up: bytes counted equal bytes requested.
    #[test]
    fn energy_bytes_match_requests(
        steps in proptest::collection::vec((0u64..64, arb_op()), 1..100)
    ) {
        let mut d = DramModel::new(DramConfig::stacked());
        let mut now = 0u64;
        let (mut rd, mut wr) = (0u64, 0u64);
        for (row, op) in steps {
            now += 10_000;
            d.access(now, op, RowCol::new(row, 0), 64);
            match op {
                Op::Read => rd += 64,
                Op::Write => wr += 64,
            }
        }
        prop_assert_eq!(d.energy().bytes_read, rd);
        prop_assert_eq!(d.energy().bytes_written, wr);
    }
}
