//! Per-bank row-buffer and timing state.

use crate::time::Ps;

/// The timing-relevant state of one DRAM bank.
///
/// The model keeps, for each bank, the currently open row plus the earliest
/// legal times for the next precharge and activate. These are *forwarded
/// timestamps*: instead of simulating the command bus cycle by cycle, each
/// request computes when its commands could legally issue and advances
/// these horizons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankState {
    /// Row currently latched in the row buffer, if any.
    pub open_row: Option<u64>,
    /// When the open row's ACT command issued.
    pub act_at: Ps,
    /// Earliest time a PRE may issue (covers `tRAS`, `tRTP`, `tWR`).
    pub earliest_pre: Ps,
    /// Earliest time the next ACT may issue (covers `tRP` after a
    /// precharge and `tRC` since the previous ACT).
    pub earliest_act: Ps,
    /// Earliest time a CAS to the open row may issue (covers `tRCD`).
    pub earliest_cas: Ps,
    /// Whether this bank has ever activated a row. `act_at` and the `tRC`
    /// constraint are only meaningful once this is set.
    pub activated_once: bool,
}

impl BankState {
    /// Creates a bank with no open row and no pending constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `row` is latched in the row buffer.
    ///
    /// This is the row-hit fast-path test: when it holds, an access needs
    /// only `earliest_cas` from this state — none of the ACT/PRE horizons
    /// are read or written, which is what keeps the common case in
    /// `DramModel::access` branch-minimal.
    #[inline]
    pub fn is_open(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_has_no_open_row() {
        let b = BankState::new();
        assert_eq!(b.open_row, None);
        assert!(!b.is_open(0));
    }

    #[test]
    fn is_open_matches_exact_row() {
        let b = BankState {
            open_row: Some(42),
            ..BankState::new()
        };
        assert!(b.is_open(42));
        assert!(!b.is_open(43));
    }
}
