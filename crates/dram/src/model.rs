//! The timestamp-forwarding DRAM timing engine.

use serde::{Deserialize, Serialize};

use crate::address::{FlatRoute, Location, RouteMap, RowCol};
use crate::bank::BankState;
use crate::config::DramConfig;
use crate::energy::EnergyCounters;
use crate::time::Ps;

/// A column operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Column read (data leaves the device).
    Read,
    /// Column write (data enters the device).
    Write,
}

/// The computed timing of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the column command effectively issued (after all constraints).
    pub cas_ps: Ps,
    /// When the first data beat has arrived — the critical-word time a
    /// waiting core observes.
    pub first_data_ps: Ps,
    /// When the last data beat has transferred — when the bus frees and
    /// the full block is available.
    pub last_data_ps: Ps,
    /// The access found its row already open (row-buffer hit).
    pub row_hit: bool,
    /// The access had to activate a row.
    pub activated: bool,
    /// The access had to precharge a *different* open row first
    /// (row-buffer conflict).
    pub conflict: bool,
}

/// Aggregate counters over all accesses since the last stats reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Column reads served.
    pub reads: u64,
    /// Column writes served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Activations into an idle (precharged) bank.
    pub row_empty: u64,
    /// Activations that had to close another row first.
    pub row_conflicts: u64,
    /// Total data-bus occupancy accumulated, in picoseconds (summed across
    /// channels; divide by channels × elapsed time for utilization).
    pub bus_busy_ps: Ps,
}

/// Per-device timing constants with the clock multiply already paid.
///
/// `DramModel::access` historically converted every constraint from
/// device clocks to picoseconds with a `u64` multiply per use, plus a
/// `div_ceil` per burst — on the innermost per-access path. This table
/// premultiplies each `t_*` by `clock_ps` once at construction and
/// tabulates burst durations by beat count, so the row-hit fast path
/// performs zero multiplications and zero divisions.
///
/// All values are exact (`clocks_to_ps`/`burst_ps` applied eagerly), so
/// table-driven timing is bit-identical to the retained reference — the
/// property `crates/dram/tests/model_properties.rs` races.
#[derive(Debug, Clone)]
struct TimingTable {
    cas_ps: Ps,
    cwd_ps: Ps,
    rp_ps: Ps,
    rcd_ps: Ps,
    rc_ps: Ps,
    ras_ps: Ps,
    wr_ps: Ps,
    wtr_ps: Ps,
    rtp_ps: Ps,
    rrd_ps: Ps,
    faw_ps: Ps,
    /// `clock_ps.div_ceil(2)` — the first-beat arrival offset.
    half_clock_ps: Ps,
    /// Shift turning bytes into a beat index when bytes-per-beat is a
    /// power of two (true for every preset bus width); `None` falls back
    /// to [`DramConfig::burst_ps`].
    beat_shift: Option<u32>,
    /// `burst_ps` by beat count, covering `0..=row_bytes / beat_bytes`
    /// beats — every burst size a row-bounded access can issue (the
    /// designs use 32 B metadata, 64 B blocks, and up-to-row-sized
    /// footprint/page transfers).
    burst_by_beats: Vec<Ps>,
}

impl TimingTable {
    fn new(cfg: &DramConfig) -> Self {
        let t = cfg.timings;
        let beat_bytes = cfg.bus_bits / 8;
        let (beat_shift, burst_by_beats) = if beat_bytes > 0 && beat_bytes.is_power_of_two() {
            let max_beats = cfg.row_bytes.div_ceil(beat_bytes) as u64;
            let lut = (0..=max_beats)
                .map(|beats| (beats * cfg.clock_ps()).div_ceil(2))
                .collect();
            (Some(beat_bytes.trailing_zeros()), lut)
        } else {
            (None, Vec::new())
        };
        TimingTable {
            cas_ps: cfg.clocks_to_ps(t.t_cas),
            cwd_ps: cfg.clocks_to_ps(t.t_cwd),
            rp_ps: cfg.clocks_to_ps(t.t_rp),
            rcd_ps: cfg.clocks_to_ps(t.t_rcd),
            rc_ps: cfg.clocks_to_ps(t.t_rc),
            ras_ps: cfg.clocks_to_ps(t.t_ras),
            wr_ps: cfg.clocks_to_ps(t.t_wr),
            wtr_ps: cfg.clocks_to_ps(t.t_wtr),
            rtp_ps: cfg.clocks_to_ps(t.t_rtp),
            rrd_ps: cfg.clocks_to_ps(t.t_rrd),
            faw_ps: cfg.clocks_to_ps(t.t_faw),
            half_clock_ps: cfg.clock_ps().div_ceil(2),
            beat_shift,
            burst_by_beats,
        }
    }

    /// Tabulated [`DramConfig::burst_ps`]: one shift-add and a load.
    #[inline]
    fn burst(&self, bytes: u32, cfg: &DramConfig) -> Ps {
        match self.beat_shift {
            Some(shift) => {
                let beats = ((bytes as usize) + ((1usize << shift) - 1)) >> shift;
                match self.burst_by_beats.get(beats) {
                    Some(&ps) => ps,
                    // Row-crossing bursts are debug-asserted away in
                    // `access`; compute rather than index out of bounds.
                    None => cfg.burst_ps(bytes),
                }
            }
            None => cfg.burst_ps(bytes),
        }
    }
}

/// A single DRAM device (stacked cache DRAM or off-chip main memory).
///
/// See the [crate docs](crate) for the modelling approach. Accesses should
/// arrive in roughly non-decreasing `now` order; small inversions (a
/// demand access presented while an earlier request's background fill is
/// still charged in the future) are tolerated — the max-based timing
/// horizons make such accesses queue behind the already-charged work,
/// which is the causally conservative direction.
///
/// Construction precomputes two fast-path tables: a [`RouteMap`]
/// (shift/mask routing, present whenever the geometry is power-of-two —
/// true for every preset) and a [`TimingTable`] (clock multiplies and
/// burst `div_ceil`s paid once). [`Self::access`] runs on those tables;
/// [`Self::access_reference`] retains the original div/mod + multiply
/// path, both as the non-pow2 routing fallback and as the executable
/// reference the property suite races bit-for-bit.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    route: Option<RouteMap>,
    timing: TimingTable,
    banks: Vec<BankState>,
    /// Per-channel data bus busy-until horizon.
    bus_free: Vec<Ps>,
    /// Per-rank time of the most recent ACT (for `tRRD`).
    rank_last_act: Vec<Ps>,
    /// Per-rank ring buffer of the last four ACT times (for `tFAW`).
    rank_faw: Vec<[Ps; 4]>,
    rank_faw_idx: Vec<usize>,
    /// Per-rank count of ACTs issued so far; `tRRD` applies after the
    /// first, `tFAW` after the fourth.
    rank_act_count: Vec<u64>,
    /// Per-rank earliest read CAS after a write burst (for `tWTR`).
    rank_wtr_ready: Vec<Ps>,
    counters: EnergyCounters,
    stats: DramStats,
}

impl DramModel {
    /// Creates a device in the all-banks-precharged state at time zero.
    pub fn new(cfg: DramConfig) -> Self {
        let n_banks = cfg.total_banks() as usize;
        let n_ranks = (cfg.channels * cfg.ranks) as usize;
        let n_ch = cfg.channels as usize;
        let route = RouteMap::try_new(&cfg);
        let timing = TimingTable::new(&cfg);
        DramModel {
            route,
            timing,
            banks: vec![BankState::new(); n_banks],
            bus_free: vec![0; n_ch],
            rank_last_act: vec![0; n_ranks],
            rank_faw: vec![[0; 4]; n_ranks],
            rank_faw_idx: vec![0; n_ranks],
            rank_act_count: vec![0; n_ranks],
            rank_wtr_ready: vec![0; n_ranks],
            counters: EnergyCounters::default(),
            stats: DramStats::default(),
            cfg,
        }
    }

    /// True when this device routes through the precomputed shift/mask
    /// [`RouteMap`] (power-of-two geometry — every preset qualifies).
    pub fn has_fast_route(&self) -> bool {
        self.route.is_some()
    }

    /// Routes `row` to its flat state indices: shift/mask when the
    /// geometry allows, the div/mod reference otherwise.
    #[inline]
    fn flat_route(&self, row: u64) -> FlatRoute {
        match self.route {
            Some(map) => map.flat(row),
            None => {
                let loc = Location::route(row, &self.cfg);
                FlatRoute {
                    channel: loc.channel as usize,
                    rank: loc.flat_rank(&self.cfg),
                    bank: loc.flat_bank(&self.cfg),
                }
            }
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Dynamic-energy counters accumulated so far.
    pub fn energy(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Access statistics accumulated since the last [`Self::reset_stats`].
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics and energy counters but *keeps* all timing state
    /// (open rows, horizons) — used at the warmup/measurement boundary.
    pub fn reset_stats(&mut self) {
        self.counters = EnergyCounters::default();
        self.stats = DramStats::default();
    }

    /// Earliest time the data bus of the channel serving `row` frees up.
    /// Useful for callers modelling controller-queue backpressure.
    pub fn channel_free_at(&self, row: u64) -> Ps {
        let ch = match self.route {
            Some(map) => map.flat(row).channel,
            None => Location::route(row, &self.cfg).channel as usize,
        };
        self.bus_free[ch]
    }

    /// Performs one column access of `bytes` at `rc`, arriving at `now`.
    ///
    /// Returns the full timing. All inter-command constraints are enforced
    /// against the device state left behind by earlier accesses; the
    /// device state advances to reflect this access.
    ///
    /// This is the **table-driven fast path**: routing is shifts and
    /// masks (via the precomputed [`RouteMap`]), every timing constraint
    /// is a premultiplied picosecond constant, and burst durations come
    /// from a per-beat-count lookup table. The common case — a row hit —
    /// runs straight through without touching the ACT/PRE/`tFAW` machinery
    /// in [`Self::activate`]. Bit-identical to [`Self::access_reference`]
    /// (pinned by `crates/dram/tests/model_properties.rs` across presets,
    /// both ops, and non-pow2 fallback geometry).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the access fits within one row.
    pub fn access(&mut self, now: Ps, op: Op, rc: RowCol, bytes: u32) -> Completion {
        debug_assert!(
            rc.col_byte + bytes <= self.cfg.row_bytes,
            "access must not cross a row boundary"
        );
        let FlatRoute {
            channel: ch,
            rank: rank_idx,
            bank: bank_idx,
        } = self.flat_route(rc.row);
        let is_read = op == Op::Read;

        // Row-hit fast path: one bank-state load, one compare, one max —
        // none of the activation state is touched.
        let bank = self.banks[bank_idx];
        let row_hit = bank.is_open(rc.row);
        let (mut cas_ready, activated, conflict) = if row_hit {
            (now.max(bank.earliest_cas), false, false)
        } else {
            let (ready, conflict) = self.activate(now, rc.row, bank_idx, rank_idx);
            (ready, true, conflict)
        };

        // Write-to-read turnaround within the rank.
        if is_read {
            cas_ready = cas_ready.max(self.rank_wtr_ready[rank_idx]);
        }

        let t = &self.timing;
        let cmd_to_data = if is_read { t.cas_ps } else { t.cwd_ps };
        let burst = t.burst(bytes, &self.cfg);
        let (rtp_ps, wr_ps, ras_ps, wtr_ps, half_clock_ps) =
            (t.rtp_ps, t.wr_ps, t.ras_ps, t.wtr_ps, t.half_clock_ps);
        // The data burst needs the channel bus; if the bus is still busy,
        // the column command slides later.
        let data_start = (cas_ready + cmd_to_data).max(self.bus_free[ch]);
        let cas_at = data_start - cmd_to_data;
        let data_end = data_start + burst;
        self.bus_free[ch] = data_end;

        // Bank horizons left behind for the next access.
        {
            let b = &mut self.banks[bank_idx];
            // Approximates tCCD with the burst occupancy of this access.
            b.earliest_cas = b.earliest_cas.max(cas_at + burst);
            let pre_after = if is_read {
                cas_at + rtp_ps
            } else {
                data_end + wr_ps
            };
            b.earliest_pre = b.earliest_pre.max(b.act_at + ras_ps).max(pre_after);
        }
        if !is_read {
            self.rank_wtr_ready[rank_idx] = data_end + wtr_ps;
        }

        // Statistics and energy; the hit/empty/conflict classification is
        // branchless (the three counts are disjoint indicator sums).
        if is_read {
            self.stats.reads += 1;
            self.counters.read_cmds += 1;
            self.counters.bytes_read += u64::from(bytes);
        } else {
            self.stats.writes += 1;
            self.counters.write_cmds += 1;
            self.counters.bytes_written += u64::from(bytes);
        }
        self.stats.row_hits += u64::from(row_hit);
        self.stats.row_conflicts += u64::from(conflict);
        self.stats.row_empty += u64::from(!row_hit && !conflict);
        self.counters.activations += u64::from(activated);
        self.stats.bus_busy_ps += burst;

        // First beat completes after half a device clock (one DDR beat).
        let first_data_ps = data_start + half_clock_ps;
        Completion {
            cas_ps: cas_at,
            first_data_ps: first_data_ps.min(data_end),
            last_data_ps: data_end,
            row_hit,
            activated,
            conflict,
        }
    }

    /// The activation slow path: needs an ACT, maybe a PRE first, under
    /// the rank-level `tRRD`/`tFAW` throttles and same-bank `tRC`. Kept
    /// out of line so the row-hit fast path stays compact. Returns the
    /// earliest CAS time and whether another row had to be closed.
    #[inline(never)]
    fn activate(&mut self, now: Ps, row: u64, bank_idx: usize, rank_idx: usize) -> (Ps, bool) {
        let t = &self.timing;
        let (rp_ps, rrd_ps, faw_ps, rc_ps, rcd_ps) =
            (t.rp_ps, t.rrd_ps, t.faw_ps, t.rc_ps, t.rcd_ps);
        let bank = self.banks[bank_idx];
        let mut conflict = false;
        let after_pre = if bank.open_row.is_some() {
            conflict = true;
            let pre_at = now.max(bank.earliest_pre);
            pre_at + rp_ps
        } else {
            now.max(bank.earliest_act)
        };
        // Rank-level activation throttles: tRRD after the first ACT,
        // tFAW once four ACTs have happened in the window.
        let acts_so_far = self.rank_act_count[rank_idx];
        let rrd_ready = if acts_so_far >= 1 {
            self.rank_last_act[rank_idx] + rrd_ps
        } else {
            0
        };
        let faw_ready = if acts_so_far >= 4 {
            self.rank_faw[rank_idx][self.rank_faw_idx[rank_idx]] + faw_ps
        } else {
            0
        };
        // Same-bank ACT-to-ACT (tRC).
        let rc_ready = if bank.activated_once {
            bank.act_at + rc_ps
        } else {
            0
        };
        let act_at = after_pre.max(rrd_ready).max(faw_ready).max(rc_ready);

        let b = &mut self.banks[bank_idx];
        b.open_row = Some(row);
        b.act_at = act_at;
        b.activated_once = true;
        b.earliest_act = act_at + rc_ps;
        self.rank_last_act[rank_idx] = act_at;
        self.rank_faw[rank_idx][self.rank_faw_idx[rank_idx]] = act_at;
        self.rank_faw_idx[rank_idx] = (self.rank_faw_idx[rank_idx] + 1) % 4;
        self.rank_act_count[rank_idx] += 1;
        (act_at + rcd_ps, conflict)
    }

    /// [`Self::access`] on the original div/mod + multiply path,
    /// retained verbatim: [`Location::route`] divides out the geometry,
    /// every constraint re-multiplies its clock count, and the burst
    /// duration recomputes its `div_ceil`s. Performs the identical state
    /// transition — the executable reference the property suite and the
    /// `dram_access` microbench group race the fast path against.
    pub fn access_reference(&mut self, now: Ps, op: Op, rc: RowCol, bytes: u32) -> Completion {
        debug_assert!(
            rc.col_byte + bytes <= self.cfg.row_bytes,
            "access must not cross a row boundary"
        );
        let loc = Location::route(rc.row, &self.cfg);
        let bank_idx = loc.flat_bank(&self.cfg);
        let rank_idx = loc.flat_rank(&self.cfg);
        let ch = loc.channel as usize;
        let t = self.cfg.timings;
        let tck = self.cfg.clock_ps();
        let clocks = |c: u32| u64::from(c) * tck;

        let row_hit = self.banks[bank_idx].is_open(rc.row);
        let mut activated = false;
        let mut conflict = false;

        let mut cas_ready = if row_hit {
            now.max(self.banks[bank_idx].earliest_cas)
        } else {
            // Need an ACT; maybe a PRE first.
            let bank = self.banks[bank_idx];
            let after_pre = if bank.open_row.is_some() {
                conflict = true;
                let pre_at = now.max(bank.earliest_pre);
                pre_at + clocks(t.t_rp)
            } else {
                now.max(bank.earliest_act)
            };
            // Rank-level activation throttles: tRRD after the first ACT,
            // tFAW once four ACTs have happened in the window.
            let acts_so_far = self.rank_act_count[rank_idx];
            let rrd_ready = if acts_so_far >= 1 {
                self.rank_last_act[rank_idx] + clocks(t.t_rrd)
            } else {
                0
            };
            let faw_ready = if acts_so_far >= 4 {
                self.rank_faw[rank_idx][self.rank_faw_idx[rank_idx]] + clocks(t.t_faw)
            } else {
                0
            };
            // Same-bank ACT-to-ACT (tRC).
            let rc_ready = if bank.activated_once {
                bank.act_at + clocks(t.t_rc)
            } else {
                0
            };
            let act_at = after_pre.max(rrd_ready).max(faw_ready).max(rc_ready);

            let b = &mut self.banks[bank_idx];
            b.open_row = Some(rc.row);
            b.act_at = act_at;
            b.activated_once = true;
            b.earliest_act = act_at + clocks(t.t_rc);
            self.rank_last_act[rank_idx] = act_at;
            self.rank_faw[rank_idx][self.rank_faw_idx[rank_idx]] = act_at;
            self.rank_faw_idx[rank_idx] = (self.rank_faw_idx[rank_idx] + 1) % 4;
            self.rank_act_count[rank_idx] += 1;
            activated = true;

            act_at + clocks(t.t_rcd)
        };

        // Write-to-read turnaround within the rank.
        if op == Op::Read {
            cas_ready = cas_ready.max(self.rank_wtr_ready[rank_idx]);
        }

        let cmd_to_data = match op {
            Op::Read => clocks(t.t_cas),
            Op::Write => clocks(t.t_cwd),
        };
        let burst = self.cfg.burst_ps(bytes);
        // The data burst needs the channel bus; if the bus is still busy,
        // the column command slides later.
        let data_start = (cas_ready + cmd_to_data).max(self.bus_free[ch]);
        let cas_at = data_start - cmd_to_data;
        let data_end = data_start + burst;
        self.bus_free[ch] = data_end;

        // Bank horizons left behind for the next access.
        {
            let b = &mut self.banks[bank_idx];
            // Approximates tCCD with the burst occupancy of this access.
            b.earliest_cas = b.earliest_cas.max(cas_at + burst);
            let pre_after = match op {
                Op::Read => cas_at + clocks(t.t_rtp),
                Op::Write => data_end + clocks(t.t_wr),
            };
            b.earliest_pre = b
                .earliest_pre
                .max(b.act_at + clocks(t.t_ras))
                .max(pre_after);
        }
        if op == Op::Write {
            self.rank_wtr_ready[rank_idx] = data_end + clocks(t.t_wtr);
        }

        // Statistics and energy.
        match op {
            Op::Read => {
                self.stats.reads += 1;
                self.counters.read_cmds += 1;
                self.counters.bytes_read += u64::from(bytes);
            }
            Op::Write => {
                self.stats.writes += 1;
                self.counters.write_cmds += 1;
                self.counters.bytes_written += u64::from(bytes);
            }
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else if conflict {
            self.stats.row_conflicts += 1;
        } else {
            self.stats.row_empty += 1;
        }
        if activated {
            self.counters.activations += 1;
        }
        self.stats.bus_busy_ps += burst;

        // First beat completes after half a device clock (one DDR beat).
        let first_data_ps = data_start + tck.div_ceil(2);
        Completion {
            cas_ps: cas_at,
            first_data_ps: first_data_ps.min(data_end),
            last_data_ps: data_end,
            row_hit,
            activated,
            conflict,
        }
    }

    /// Convenience: access by physical byte address (linear row mapping).
    pub fn access_addr(&mut self, now: Ps, op: Op, addr: u64, bytes: u32) -> Completion {
        let rc = match self.route {
            Some(map) => map.row_col(addr),
            None => RowCol::from_phys_addr(addr, self.cfg.row_bytes),
        };
        self.access(now, op, rc, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr3() -> DramModel {
        DramModel::new(DramConfig::ddr3_1600())
    }

    #[test]
    fn cold_read_pays_act_plus_cas() {
        let mut d = ddr3();
        let t = d.config().timings;
        let tck = d.config().clock_ps();
        let c = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        assert!(!c.row_hit);
        assert!(c.activated);
        assert!(!c.conflict);
        // ACT at 0, CAS at tRCD, data at tRCD + tCAS.
        let expect = u64::from(t.t_rcd + t.t_cas) * tck;
        assert_eq!(c.last_data_ps, expect + d.config().burst_ps(64));
    }

    #[test]
    fn row_hit_skips_activation() {
        let mut d = ddr3();
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        let c2 = d.access(c1.last_data_ps, Op::Read, RowCol::new(0, 64), 64);
        assert!(c2.row_hit);
        assert!(!c2.activated);
        assert!(c2.last_data_ps - c1.last_data_ps < c1.last_data_ps);
    }

    #[test]
    fn conflict_pays_precharge() {
        let mut d = ddr3();
        let cfg = d.config().clone();
        // Rows 0 and banks*channels*ranks map to the same bank.
        let stride = u64::from(cfg.total_banks());
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        let far = c1.last_data_ps + 1_000_000; // long idle, all constraints met
        let c2 = d.access(far, Op::Read, RowCol::new(stride, 0), 64);
        assert!(c2.conflict);
        let t = cfg.timings;
        let tck = cfg.clock_ps();
        let expect = far + u64::from(t.t_rp + t.t_rcd + t.t_cas) * tck + cfg.burst_ps(64);
        assert_eq!(c2.last_data_ps, expect);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = ddr3();
        // ddr3 has 1 channel: rows 0 and 1 share a bus but not a bank.
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        let c2 = d.access(0, Op::Read, RowCol::new(1, 0), 64);
        // Second access activates its own bank in parallel (delayed only
        // by tRRD); the data bursts serialize on the shared bus.
        let trrd = u64::from(d.config().timings.t_rrd) * d.config().clock_ps();
        assert!(c2.last_data_ps < 2 * c1.last_data_ps);
        assert!(c2.last_data_ps <= c1.last_data_ps + d.config().burst_ps(64) + trrd);
    }

    #[test]
    fn channels_are_fully_independent() {
        let mut d = DramModel::new(DramConfig::stacked());
        // Rows 0 and 1 are on different channels under row interleaving.
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        let c2 = d.access(0, Op::Read, RowCol::new(1, 0), 64);
        assert_eq!(c1.last_data_ps, c2.last_data_ps);
    }

    #[test]
    fn overlapped_tag_and_data_read_cost_little_more_than_one_read() {
        // §III-A: Unison Cache issues a 32 B metadata read and a 64 B data
        // read back-to-back to the same row. The second read should finish
        // roughly one small burst after the first — NOT one full DRAM
        // access later.
        let mut d = DramModel::new(DramConfig::stacked());
        let meta = d.access(0, Op::Read, RowCol::new(0, 0), 32);
        let data = d.access(0, Op::Read, RowCol::new(0, 32), 64);
        let serialized_estimate = 2 * meta.last_data_ps;
        assert!(data.last_data_ps < serialized_estimate);
        assert_eq!(
            data.last_data_ps,
            meta.last_data_ps + d.config().burst_ps(64)
        );
    }

    #[test]
    fn write_then_read_pays_wtr() {
        let mut d = ddr3();
        let t = d.config().timings;
        let tck = d.config().clock_ps();
        let w = d.access(0, Op::Write, RowCol::new(0, 0), 64);
        let r = d.access(w.last_data_ps, Op::Read, RowCol::new(0, 64), 64);
        // Read CAS must wait tWTR after the write burst ends.
        assert!(r.cas_ps >= w.last_data_ps + u64::from(t.t_wtr) * tck);
    }

    #[test]
    fn faw_throttles_bursts_of_activations() {
        let mut d = ddr3();
        let cfg = d.config().clone();
        // Five activations to five different banks of rank 0 at time 0.
        // Banks on rank 0 (1 channel, 2 ranks... route: bank rotates first).
        let mut acts = vec![];
        for i in 0..5 {
            // Rows i map to banks i (channel 0). Ranks alternate after banks.
            let c = d.access(0, Op::Read, RowCol::new(i, 0), 64);
            if c.activated {
                acts.push(c);
            }
        }
        assert_eq!(acts.len(), 5);
        let t = cfg.timings;
        let tck = cfg.clock_ps();
        // The 5th ACT to the same rank must be >= first ACT + tFAW.
        let first_cas = acts[0].cas_ps;
        let fifth_cas = acts[4].cas_ps;
        assert!(fifth_cas >= first_cas + u64::from(t.t_faw) * tck - u64::from(t.t_rcd) * tck);
    }

    #[test]
    fn stats_and_energy_track_accesses() {
        let mut d = ddr3();
        d.access(0, Op::Read, RowCol::new(0, 0), 64);
        let t1 = d
            .access(1000, Op::Write, RowCol::new(0, 64), 64)
            .last_data_ps;
        d.access(t1, Op::Read, RowCol::new(0, 128), 64);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.row_empty, 1);
        let e = d.energy();
        assert_eq!(e.activations, 1);
        assert_eq!(e.bytes_read, 128);
        assert_eq!(e.bytes_written, 64);
    }

    #[test]
    fn reset_stats_preserves_timing_state() {
        let mut d = ddr3();
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 64);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
        // Row is still open: next access is a row hit.
        let c2 = d.access(c1.last_data_ps, Op::Read, RowCol::new(0, 64), 64);
        assert!(c2.row_hit);
    }

    #[test]
    fn bus_contention_delays_later_requests() {
        let mut d = ddr3();
        // Saturate the single channel with large bursts to one row.
        let c1 = d.access(0, Op::Read, RowCol::new(0, 0), 4096);
        let c2 = d.access(0, Op::Read, RowCol::new(0, 4096), 64);
        assert!(c2.first_data_ps > c1.last_data_ps);
    }

    #[test]
    fn completion_ordering_invariants() {
        let mut d = DramModel::new(DramConfig::stacked());
        let mut now = 0;
        for i in 0..200 {
            let c = d.access(
                now,
                Op::Read,
                RowCol::new(i % 37, ((i * 64) % 8128) as u32),
                64,
            );
            assert!(c.cas_ps >= now);
            assert!(c.first_data_ps > c.cas_ps);
            assert!(c.last_data_ps >= c.first_data_ps);
            now += 500;
        }
    }
}
