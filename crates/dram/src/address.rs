//! Row/column addressing and channel/rank/bank routing.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;

/// A device-agnostic DRAM location: a global row number plus a byte column
/// within that row.
///
/// Callers that manage their own row layout (the DRAM cache designs, which
/// treat each 8 KB row as a cache set container) address the device
/// directly in these terms. Callers holding physical byte addresses (the
/// off-chip main memory path) can convert with [`RowCol::from_phys_addr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowCol {
    /// Global row number (device-wide, before channel/bank interleaving).
    pub row: u64,
    /// Byte offset within the row, `< row_bytes`.
    pub col_byte: u32,
}

impl RowCol {
    /// Creates a location from a global row number and byte column.
    pub fn new(row: u64, col_byte: u32) -> Self {
        RowCol { row, col_byte }
    }

    /// Maps a physical byte address onto (row, column) for a device with
    /// `row_bytes`-sized rows, using simple linear row order.
    ///
    /// # Example
    ///
    /// ```
    /// # use unison_dram::RowCol;
    /// let rc = RowCol::from_phys_addr(0x4000 + 96, 8192);
    /// assert_eq!(rc.row, 2);
    /// assert_eq!(rc.col_byte, 96);
    /// ```
    pub fn from_phys_addr(addr: u64, row_bytes: u32) -> Self {
        RowCol {
            row: addr / u64::from(row_bytes),
            col_byte: (addr % u64::from(row_bytes)) as u32,
        }
    }
}

/// A fully routed location: which channel, rank, and bank a row lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index, `< channels`.
    pub channel: u32,
    /// Rank index within the channel, `< ranks`.
    pub rank: u32,
    /// Bank index within the rank, `< banks`.
    pub bank: u32,
    /// Device row index within the bank.
    pub bank_row: u64,
}

impl Location {
    /// Routes a global row to its channel/rank/bank using row
    /// interleaving: consecutive global rows rotate across channels first,
    /// then banks, then ranks.
    ///
    /// Row interleaving makes adjacent cache sets land on different
    /// channels/banks, maximizing bank-level parallelism for independent
    /// requests while keeping each whole row (and thus each cache set, and
    /// each footprint transferred from main memory) inside one bank — the
    /// property the paper's energy argument (§V.D) relies on.
    pub fn route(row: u64, cfg: &DramConfig) -> Self {
        let ch = (row % u64::from(cfg.channels)) as u32;
        let rest = row / u64::from(cfg.channels);
        let bank = (rest % u64::from(cfg.banks)) as u32;
        let rest = rest / u64::from(cfg.banks);
        let rank = (rest % u64::from(cfg.ranks)) as u32;
        let bank_row = rest / u64::from(cfg.ranks);
        Location {
            channel: ch,
            rank,
            bank,
            bank_row,
        }
    }

    /// Flat index of this location's bank across the whole device.
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        ((self.channel * cfg.ranks + self.rank) * cfg.banks + self.bank) as usize
    }

    /// Flat index of this location's rank across the whole device.
    pub fn flat_rank(&self, cfg: &DramConfig) -> usize {
        (self.channel * cfg.ranks + self.rank) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_rows_rotate_channels() {
        let cfg = DramConfig::stacked(); // 4 channels
        let locs: Vec<_> = (0..8).map(|r| Location::route(r, &cfg)).collect();
        assert_eq!(locs[0].channel, 0);
        assert_eq!(locs[1].channel, 1);
        assert_eq!(locs[2].channel, 2);
        assert_eq!(locs[3].channel, 3);
        assert_eq!(locs[4].channel, 0);
        // After a full channel rotation the bank advances.
        assert_eq!(locs[0].bank, 0);
        assert_eq!(locs[4].bank, 1);
    }

    #[test]
    fn same_row_routes_identically() {
        let cfg = DramConfig::ddr3_1600();
        assert_eq!(Location::route(12345, &cfg), Location::route(12345, &cfg));
    }

    #[test]
    fn flat_bank_is_unique_per_bank() {
        let cfg = DramConfig::stacked();
        let mut seen = std::collections::HashSet::new();
        for row in 0..u64::from(cfg.total_banks()) {
            let loc = Location::route(row, &cfg);
            assert!(seen.insert(loc.flat_bank(&cfg)));
        }
    }

    #[test]
    fn phys_addr_roundtrip() {
        let rc = RowCol::from_phys_addr(8192 * 10 + 4095, 8192);
        assert_eq!(rc.row, 10);
        assert_eq!(rc.col_byte, 4095);
    }
}
