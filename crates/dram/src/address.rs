//! Row/column addressing and channel/rank/bank routing.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;

/// A device-agnostic DRAM location: a global row number plus a byte column
/// within that row.
///
/// Callers that manage their own row layout (the DRAM cache designs, which
/// treat each 8 KB row as a cache set container) address the device
/// directly in these terms. Callers holding physical byte addresses (the
/// off-chip main memory path) can convert with [`RowCol::from_phys_addr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowCol {
    /// Global row number (device-wide, before channel/bank interleaving).
    pub row: u64,
    /// Byte offset within the row, `< row_bytes`.
    pub col_byte: u32,
}

impl RowCol {
    /// Creates a location from a global row number and byte column.
    pub fn new(row: u64, col_byte: u32) -> Self {
        RowCol { row, col_byte }
    }

    /// Maps a physical byte address onto (row, column) for a device with
    /// `row_bytes`-sized rows, using simple linear row order.
    ///
    /// # Example
    ///
    /// ```
    /// # use unison_dram::RowCol;
    /// let rc = RowCol::from_phys_addr(0x4000 + 96, 8192);
    /// assert_eq!(rc.row, 2);
    /// assert_eq!(rc.col_byte, 96);
    /// ```
    pub fn from_phys_addr(addr: u64, row_bytes: u32) -> Self {
        RowCol {
            row: addr / u64::from(row_bytes),
            col_byte: (addr % u64::from(row_bytes)) as u32,
        }
    }
}

/// A fully routed location: which channel, rank, and bank a row lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index, `< channels`.
    pub channel: u32,
    /// Rank index within the channel, `< ranks`.
    pub rank: u32,
    /// Bank index within the rank, `< banks`.
    pub bank: u32,
    /// Device row index within the bank.
    pub bank_row: u64,
}

impl Location {
    /// Routes a global row to its channel/rank/bank using row
    /// interleaving: consecutive global rows rotate across channels first,
    /// then banks, then ranks.
    ///
    /// Row interleaving makes adjacent cache sets land on different
    /// channels/banks, maximizing bank-level parallelism for independent
    /// requests while keeping each whole row (and thus each cache set, and
    /// each footprint transferred from main memory) inside one bank — the
    /// property the paper's energy argument (§V.D) relies on.
    ///
    /// This div/mod form is the routing *reference*: it works for any
    /// geometry and is what [`RouteMap`] — the shift/mask fast path every
    /// power-of-two preset actually runs — is property-raced against.
    pub fn route(row: u64, cfg: &DramConfig) -> Self {
        let ch = (row % u64::from(cfg.channels)) as u32;
        let rest = row / u64::from(cfg.channels);
        let bank = (rest % u64::from(cfg.banks)) as u32;
        let rest = rest / u64::from(cfg.banks);
        let rank = (rest % u64::from(cfg.ranks)) as u32;
        let bank_row = rest / u64::from(cfg.ranks);
        Location {
            channel: ch,
            rank,
            bank,
            bank_row,
        }
    }

    /// Flat index of this location's bank across the whole device.
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        ((self.channel * cfg.ranks + self.rank) * cfg.banks + self.bank) as usize
    }

    /// Flat index of this location's rank across the whole device.
    pub fn flat_rank(&self, cfg: &DramConfig) -> usize {
        (self.channel * cfg.ranks + self.rank) as usize
    }
}

/// The flat indices one DRAM access actually needs: the channel (for the
/// data bus), the device-wide rank slot (for `tRRD`/`tFAW`/`tWTR` state),
/// and the device-wide bank slot (for row-buffer state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatRoute {
    /// Channel index, `< channels`.
    pub channel: usize,
    /// `Location::flat_rank` equivalent: `channel * ranks + rank`.
    pub rank: usize,
    /// `Location::flat_bank` equivalent:
    /// `(channel * ranks + rank) * banks + bank`.
    pub bank: usize,
}

/// Precomputed shift/mask routing for power-of-two geometries.
///
/// [`Location::route`] pays three hardware div/mod pairs per call and
/// [`RowCol::from_phys_addr`] a fourth — per *simulated access*, on the
/// innermost path of every campaign cell. Every preset geometry
/// (`stacked` 4/1/8/8192, `ddr3-1600` 1/2/8/8192, `ddr4-2400`, and the
/// 2x/half variants) has power-of-two channels/ranks/banks/row-bytes, so
/// [`DramModel::new`](crate::DramModel::new) builds one of these and the
/// whole walk collapses to shifts and ANDs. Non-pow2 geometries get
/// `None` from [`RouteMap::try_new`] and keep the div/mod reference.
///
/// Bit-identity with the reference is pinned by
/// `crates/dram/tests/model_properties.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteMap {
    ch_bits: u32,
    ch_mask: u64,
    bank_bits: u32,
    bank_mask: u64,
    rank_bits: u32,
    rank_mask: u64,
    row_shift: u32,
    col_mask: u64,
}

impl RouteMap {
    /// Builds the shift/mask tables, or `None` when any of channels,
    /// ranks, banks, or row-bytes is not a power of two.
    pub fn try_new(cfg: &DramConfig) -> Option<Self> {
        let pow2 = cfg.channels.is_power_of_two()
            && cfg.ranks.is_power_of_two()
            && cfg.banks.is_power_of_two()
            && cfg.row_bytes.is_power_of_two();
        if !pow2 {
            return None;
        }
        Some(RouteMap {
            ch_bits: cfg.channels.trailing_zeros(),
            ch_mask: u64::from(cfg.channels - 1),
            bank_bits: cfg.banks.trailing_zeros(),
            bank_mask: u64::from(cfg.banks - 1),
            rank_bits: cfg.ranks.trailing_zeros(),
            rank_mask: u64::from(cfg.ranks - 1),
            row_shift: cfg.row_bytes.trailing_zeros(),
            col_mask: u64::from(cfg.row_bytes - 1),
        })
    }

    /// [`Location::route`], as shifts and masks. Bit-identical for any
    /// geometry this map was built for.
    #[inline]
    pub fn route(&self, row: u64) -> Location {
        let channel = (row & self.ch_mask) as u32;
        let rest = row >> self.ch_bits;
        let bank = (rest & self.bank_mask) as u32;
        let rest = rest >> self.bank_bits;
        let rank = (rest & self.rank_mask) as u32;
        let bank_row = rest >> self.rank_bits;
        Location {
            channel,
            rank,
            bank,
            bank_row,
        }
    }

    /// Routes straight to the flat state indices the timing engine
    /// indexes with — channel, `flat_rank`, `flat_bank` — without
    /// materializing a [`Location`] or re-multiplying the geometry.
    #[inline]
    pub fn flat(&self, row: u64) -> FlatRoute {
        let channel = row & self.ch_mask;
        let rest = row >> self.ch_bits;
        let bank = rest & self.bank_mask;
        let rank = (rest >> self.bank_bits) & self.rank_mask;
        // (channel * ranks + rank) * banks + bank, with pow2 multipliers
        // folded into shifts.
        let flat_rank = (channel << self.rank_bits) | rank;
        let flat_bank = (flat_rank << self.bank_bits) | bank;
        FlatRoute {
            channel: channel as usize,
            rank: flat_rank as usize,
            bank: flat_bank as usize,
        }
    }

    /// [`RowCol::from_phys_addr`], as a shift and an AND.
    #[inline]
    pub fn row_col(&self, addr: u64) -> RowCol {
        RowCol {
            row: addr >> self.row_shift,
            col_byte: (addr & self.col_mask) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_rows_rotate_channels() {
        let cfg = DramConfig::stacked(); // 4 channels
        let locs: Vec<_> = (0..8).map(|r| Location::route(r, &cfg)).collect();
        assert_eq!(locs[0].channel, 0);
        assert_eq!(locs[1].channel, 1);
        assert_eq!(locs[2].channel, 2);
        assert_eq!(locs[3].channel, 3);
        assert_eq!(locs[4].channel, 0);
        // After a full channel rotation the bank advances.
        assert_eq!(locs[0].bank, 0);
        assert_eq!(locs[4].bank, 1);
    }

    #[test]
    fn same_row_routes_identically() {
        let cfg = DramConfig::ddr3_1600();
        assert_eq!(Location::route(12345, &cfg), Location::route(12345, &cfg));
    }

    #[test]
    fn flat_bank_is_unique_per_bank() {
        let cfg = DramConfig::stacked();
        let mut seen = std::collections::HashSet::new();
        for row in 0..u64::from(cfg.total_banks()) {
            let loc = Location::route(row, &cfg);
            assert!(seen.insert(loc.flat_bank(&cfg)));
        }
    }

    #[test]
    fn phys_addr_roundtrip() {
        let rc = RowCol::from_phys_addr(8192 * 10 + 4095, 8192);
        assert_eq!(rc.row, 10);
        assert_eq!(rc.col_byte, 4095);
    }

    #[test]
    fn route_map_matches_reference_on_pow2_geometries() {
        for cfg in [DramConfig::stacked(), DramConfig::ddr3_1600()] {
            let map = RouteMap::try_new(&cfg).expect("preset geometry is pow2");
            for row in (0..4096).chain([u64::MAX >> 14, 123_456_789]) {
                let reference = Location::route(row, &cfg);
                assert_eq!(map.route(row), reference, "{} row {row}", cfg.name);
                let flat = map.flat(row);
                assert_eq!(flat.channel, reference.channel as usize);
                assert_eq!(flat.rank, reference.flat_rank(&cfg));
                assert_eq!(flat.bank, reference.flat_bank(&cfg));
            }
            for addr in [0u64, 63, 8191, 8192, 8192 * 10 + 4095, 1 << 40] {
                assert_eq!(
                    map.row_col(addr),
                    RowCol::from_phys_addr(addr, cfg.row_bytes)
                );
            }
        }
    }

    #[test]
    fn route_map_rejects_non_pow2_geometry() {
        let mut cfg = DramConfig::stacked();
        cfg.channels = 3;
        assert_eq!(RouteMap::try_new(&cfg), None);
        let mut cfg = DramConfig::stacked();
        cfg.banks = 5;
        assert_eq!(RouteMap::try_new(&cfg), None);
        let mut cfg = DramConfig::stacked();
        cfg.row_bytes = 6144;
        assert_eq!(RouteMap::try_new(&cfg), None);
        assert!(RouteMap::try_new(&DramConfig::stacked()).is_some());
    }

    #[test]
    fn single_channel_single_rank_degenerates_cleanly() {
        // channels = 1 means 0 shift bits and a zero mask: `row & 0 == 0`
        // must equal `row % 1` and `row >> 0` equal `row / 1`.
        let cfg = DramConfig::ddr3_1600(); // 1 channel, 2 ranks
        let map = RouteMap::try_new(&cfg).unwrap();
        let loc = map.route(12345);
        assert_eq!(loc, Location::route(12345, &cfg));
        assert_eq!(loc.channel, 0);
    }
}
