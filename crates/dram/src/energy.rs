//! Dynamic-energy accounting for the Section V.D analysis.

use serde::{Deserialize, Serialize};

use crate::config::EnergyParams;

/// Raw dynamic-event counters maintained by a [`crate::DramModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Row activations (each implies a matching precharge).
    pub activations: u64,
    /// Column read commands.
    pub read_cmds: u64,
    /// Column write commands.
    pub write_cmds: u64,
    /// Bytes moved out of the device.
    pub bytes_read: u64,
    /// Bytes moved into the device.
    pub bytes_written: u64,
}

impl EnergyCounters {
    /// Computes the dynamic energy breakdown under `params`.
    pub fn breakdown(&self, params: &EnergyParams) -> EnergyBreakdown {
        let act_pre_pj = self.activations as f64 * params.act_pre_pj;
        let rd_wr_pj = self.bytes_read as f64 * params.read_pj_per_byte
            + self.bytes_written as f64 * params.write_pj_per_byte;
        let io_pj = (self.bytes_read + self.bytes_written) as f64 * params.io_pj_per_byte;
        EnergyBreakdown {
            act_pre_pj,
            rd_wr_pj,
            io_pj,
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activations += other.activations;
        self.read_cmds += other.read_cmds;
        self.write_cmds += other.write_cmds;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// Dynamic DRAM energy split by source, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent on ACT/PRE pairs — the paper calls row activations
    /// "the most energy-demanding operations" (§V.D).
    pub act_pre_pj: f64,
    /// Column read/write array energy.
    pub rd_wr_pj: f64,
    /// I/O and termination energy.
    pub io_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.act_pre_pj + self.rd_wr_pj + self.io_pj
    }

    /// Total dynamic energy in millijoules (convenience for reports).
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_components() {
        let c = EnergyCounters {
            activations: 10,
            read_cmds: 5,
            write_cmds: 5,
            bytes_read: 640,
            bytes_written: 320,
        };
        let p = EnergyParams::ddr3();
        let b = c.breakdown(&p);
        assert!(b.act_pre_pj > 0.0);
        assert!((b.total_pj() - (b.act_pre_pj + b.rd_wr_pj + b.io_pj)).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyCounters {
            activations: 1,
            ..Default::default()
        };
        let b = EnergyCounters {
            activations: 2,
            bytes_read: 64,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.activations, 3);
        assert_eq!(a.bytes_read, 64);
    }

    #[test]
    fn activation_energy_dominates_small_transfers() {
        // One activation vs one 64 B read: ACT/PRE should dominate, which
        // is the premise of the paper's §V.D argument.
        let c = EnergyCounters {
            activations: 1,
            read_cmds: 1,
            bytes_read: 64,
            ..Default::default()
        };
        let b = c.breakdown(&EnergyParams::ddr3());
        assert!(b.act_pre_pj > b.rd_wr_pj + b.io_pj);
    }
}
