//! Time base helpers.
//!
//! All DRAM-internal arithmetic uses **picoseconds** so that the 3 GHz CPU
//! clock (333.33 ps, i.e. exactly 1 ns per 3 cycles), the 800 MHz DDR3
//! clock (1250 ps), and the 1.6 GHz stacked-DRAM clock (625 ps) can be
//! mixed without cumulative rounding error.

/// A point in (or duration of) simulated time, in picoseconds.
pub type Ps = u64;

/// The CPU clock frequency of the evaluated system (Table III): 3 GHz.
pub const CPU_CLOCK_MHZ: u64 = 3000;

/// Picoseconds per CPU clock period, times 3 (exact: 3 cycles == 1 ns).
const PS_PER_3_CPU_CYCLES: u64 = 1000;

/// Converts a CPU-cycle count into picoseconds (3 GHz clock).
///
/// The conversion is exact for multiples of 3 cycles and rounds to the
/// nearest picosecond otherwise.
///
/// # Example
///
/// ```
/// # use unison_dram::cpu_cycles_to_ps;
/// assert_eq!(cpu_cycles_to_ps(3), 1_000);
/// assert_eq!(cpu_cycles_to_ps(60), 20_000);
/// ```
pub fn cpu_cycles_to_ps(cycles: u64) -> Ps {
    // cycles * 1000 / 3, rounded to nearest.
    (cycles * PS_PER_3_CPU_CYCLES + 1) / 3
}

/// Converts picoseconds into CPU cycles (3 GHz clock), rounding up.
///
/// Rounding up matches how a synchronous core observes an asynchronous
/// completion: the result is visible at the *next* core clock edge.
///
/// # Example
///
/// ```
/// # use unison_dram::ps_to_cpu_cycles;
/// assert_eq!(ps_to_cpu_cycles(1_000), 3);
/// assert_eq!(ps_to_cpu_cycles(1_001), 4);
/// ```
pub fn ps_to_cpu_cycles(ps: Ps) -> u64 {
    (ps * 3).div_ceil(PS_PER_3_CPU_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_cycle_conversion_is_exact_for_multiples_of_three() {
        for c in (0..3000).step_by(3) {
            assert_eq!(ps_to_cpu_cycles(cpu_cycles_to_ps(c)), c);
        }
    }

    #[test]
    fn ps_to_cycles_rounds_up() {
        assert_eq!(ps_to_cpu_cycles(0), 0);
        assert_eq!(ps_to_cpu_cycles(1), 1);
        assert_eq!(ps_to_cpu_cycles(334), 2);
    }

    #[test]
    fn sixty_cpu_cycles_is_twenty_ns() {
        // The paper quotes "~60 cycles" for a DRAM access == 20 ns @3GHz.
        assert_eq!(cpu_cycles_to_ps(60), 20_000);
    }
}
