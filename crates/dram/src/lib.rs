//! Timestamp-forwarding DRAM timing and energy model.
//!
//! This crate is the reproduction's substitute for DRAMSim2, the
//! cycle-accurate memory simulator the Unison Cache paper integrates into
//! Flexus. Instead of stepping a DRAM state machine cycle by cycle, each
//! request's completion time is *computed* from the current per-bank
//! row-buffer state, the JEDEC-style inter-command timing constraints, and
//! data-bus occupancy. The model preserves the three DRAM behaviours the
//! paper's arguments rest on:
//!
//! 1. **Row-buffer locality** — back-to-back accesses to the same row skip
//!    the activate/precharge cost, which is what makes Unison Cache's
//!    overlapped tag + data reads (two CASes to one open row) and its cheap
//!    way-misprediction recovery work.
//! 2. **Bank-level parallelism** — independent banks serve requests
//!    concurrently, bounded by `tRRD`/`tFAW` activation throttles.
//! 3. **Bus serialization** — every burst occupies the channel data bus, so
//!    footprint overfetch and parallel-way fetches cost real bandwidth.
//!
//! Two presets mirror Table III of the paper: [`DramConfig::stacked`] (the
//! 4-channel, 128-bit, 1.6 GHz die-stacked cache DRAM) and
//! [`DramConfig::ddr3_1600`] (the single-channel, 64-bit off-chip DDR3).
//!
//! # Example
//!
//! ```
//! use unison_dram::{DramConfig, DramModel, Op, RowCol};
//!
//! let mut dram = DramModel::new(DramConfig::stacked());
//! // Read 64 bytes from column 96 of global row 7 at time 0.
//! let c = dram.access(0, Op::Read, RowCol::new(7, 96), 64);
//! assert!(c.first_data_ps > 0);
//! // A second read to the same row is a row-buffer hit and faster.
//! let c2 = dram.access(c.last_data_ps, Op::Read, RowCol::new(7, 160), 64);
//! assert!(c2.row_hit);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod address;
mod bank;
mod config;
mod energy;
mod model;
mod time;

pub use address::{FlatRoute, Location, RouteMap, RowCol};
pub use bank::BankState;
pub use config::{DramConfig, DramPreset, EnergyParams, Timings};
pub use energy::{EnergyBreakdown, EnergyCounters};
pub use model::{Completion, DramModel, DramStats, Op};
pub use time::{cpu_cycles_to_ps, ps_to_cpu_cycles, Ps, CPU_CLOCK_MHZ};
