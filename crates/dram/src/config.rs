//! DRAM device geometry, timing, and energy configuration.

use serde::{Deserialize, Serialize};

use crate::time::Ps;

/// JEDEC-style inter-command timing constraints, in device clock cycles.
///
/// The field values of the two presets are the Table III parameters of the
/// paper (`tCAS-tRCD-tRP-tRAS = 11-11-11-28`, `tRC-tWR-tWTR-tRTP =
/// 39-12-6-6`, `tRRD-tFAW = 5-24`), interpreted in the respective device
/// clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Timings {
    /// Column access strobe latency: CAS command to first data beat.
    pub t_cas: u32,
    /// Row-to-column delay: ACT to first CAS.
    pub t_rcd: u32,
    /// Row precharge time: PRE to next ACT on the same bank.
    pub t_rp: u32,
    /// Row active time: minimum ACT-to-PRE interval.
    pub t_ras: u32,
    /// Row cycle: minimum ACT-to-ACT interval on the same bank.
    pub t_rc: u32,
    /// Write recovery: end of write data to PRE.
    pub t_wr: u32,
    /// Write-to-read turnaround within a rank.
    pub t_wtr: u32,
    /// Read-to-precharge delay.
    pub t_rtp: u32,
    /// ACT-to-ACT minimum across banks of a rank.
    pub t_rrd: u32,
    /// Four-activate window: at most 4 ACTs per rank per `t_faw`.
    pub t_faw: u32,
    /// Write latency (CAS-write to first data beat). DDR3 uses
    /// `tCWL ≈ tCAS - 1`; both presets follow that convention.
    pub t_cwd: u32,
}

impl Timings {
    /// The Table III timing set shared by both DRAM devices in the paper.
    pub const fn table_iii() -> Self {
        Timings {
            t_cas: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_rrd: 5,
            t_faw: 24,
            t_cwd: 10,
        }
    }

    /// DDR4-2400-class timings interpreted at a 1200 MHz device clock
    /// (JEDEC 17-17-17-39 ballpark). Used by the `ddr4-2400` preset.
    pub const fn ddr4_2400() -> Self {
        Timings {
            t_cas: 17,
            t_rcd: 17,
            t_rp: 17,
            t_ras: 39,
            t_rc: 56,
            t_wr: 18,
            t_wtr: 9,
            t_rtp: 9,
            t_rrd: 6,
            t_faw: 26,
            t_cwd: 16,
        }
    }
}

/// Per-operation dynamic energy parameters, in picojoules.
///
/// Defaults are representative DDR3/stacked-DRAM figures (Micron power
/// model ballpark); the Section V.D reproduction only depends on *ratios*
/// between designs (activation counts per useful block), not on the
/// absolute nanojoule values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one ACT+PRE pair (row activation plus precharge), pJ.
    pub act_pre_pj: f64,
    /// Column read energy per byte transferred, pJ/B.
    pub read_pj_per_byte: f64,
    /// Column write energy per byte transferred, pJ/B.
    pub write_pj_per_byte: f64,
    /// I/O and termination energy per byte moved on the bus, pJ/B.
    pub io_pj_per_byte: f64,
}

impl EnergyParams {
    /// Off-chip DDR3 energy preset (long PCB traces dominate I/O energy).
    pub const fn ddr3() -> Self {
        EnergyParams {
            act_pre_pj: 20_000.0,
            read_pj_per_byte: 4.0,
            write_pj_per_byte: 4.0,
            io_pj_per_byte: 12.0,
        }
    }

    /// Die-stacked DRAM energy preset (TSV I/O is roughly an order of
    /// magnitude cheaper than off-chip signalling).
    pub const fn stacked() -> Self {
        EnergyParams {
            act_pre_pj: 12_000.0,
            read_pj_per_byte: 3.0,
            write_pj_per_byte: 3.0,
            io_pj_per_byte: 1.2,
        }
    }
}

/// Full configuration of one DRAM device (geometry + timing + energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Device clock in MHz. The data bus is DDR: two beats per clock.
    pub clock_mhz: u64,
    /// Data bus width in bits, per channel.
    pub bus_bits: u32,
    /// Number of independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank (Table III: 8).
    pub banks: u32,
    /// Row buffer size in bytes (Table III: 8 KB).
    pub row_bytes: u32,
    /// Inter-command timing constraints.
    pub timings: Timings,
    /// Dynamic energy parameters.
    pub energy: EnergyParams,
}

impl DramConfig {
    /// Die-stacked DRAM per Table III: DDR-like interface at 1.6 GHz,
    /// 4 channels, 8 banks/rank, 8 KB row buffer, 128-bit bus.
    ///
    /// Peak bandwidth: 4 ch × 16 B/beat × 3.2 Gbeat/s = 204.8 GB/s, in line
    /// with the paper's "over 100 GB/s" for die-stacked DRAM.
    pub fn stacked() -> Self {
        DramConfig {
            name: "stacked",
            clock_mhz: 1600,
            bus_bits: 128,
            channels: 4,
            ranks: 1,
            banks: 8,
            row_bytes: 8192,
            timings: Timings::table_iii(),
            energy: EnergyParams::stacked(),
        }
    }

    /// Off-chip DRAM per Table III: one DDR3-1600 channel (800 MHz clock),
    /// 8 banks per rank, 8 KB row buffer, 64-bit bus. Peak 12.8 GB/s.
    pub fn ddr3_1600() -> Self {
        DramConfig {
            name: "ddr3-1600",
            clock_mhz: 800,
            bus_bits: 64,
            channels: 1,
            ranks: 2,
            banks: 8,
            row_bytes: 8192,
            timings: Timings::table_iii(),
            energy: EnergyParams::ddr3(),
        }
    }

    /// Picoseconds per device clock cycle.
    ///
    /// # Example
    ///
    /// ```
    /// # use unison_dram::DramConfig;
    /// assert_eq!(DramConfig::ddr3_1600().clock_ps(), 1250);
    /// assert_eq!(DramConfig::stacked().clock_ps(), 625);
    /// ```
    pub fn clock_ps(&self) -> Ps {
        1_000_000 / self.clock_mhz
    }

    /// Converts a count of device clock cycles to picoseconds.
    pub fn clocks_to_ps(&self, clocks: u32) -> Ps {
        u64::from(clocks) * self.clock_ps()
    }

    /// Duration of a burst transferring `bytes`, in picoseconds.
    ///
    /// The bus is DDR (two beats per clock), each beat moving
    /// `bus_bits / 8` bytes. Partial beats round up.
    ///
    /// # Example
    ///
    /// 64 B on the stacked 128-bit bus is 4 beats = 2 device clocks
    /// = 1250 ps (≈ 4 CPU cycles at 3 GHz):
    ///
    /// ```
    /// # use unison_dram::DramConfig;
    /// let d = DramConfig::stacked();
    /// assert_eq!(d.burst_ps(64), 1250);
    /// // The 32 B Unison Cache set-metadata read is one clock (2 beats):
    /// assert_eq!(d.burst_ps(32), 625);
    /// ```
    pub fn burst_ps(&self, bytes: u32) -> Ps {
        let beat_bytes = self.bus_bits / 8;
        let beats = u64::from(bytes.div_ceil(beat_bytes));
        // Two beats per clock; round half-clock bursts up.
        (beats * self.clock_ps()).div_ceil(2)
    }

    /// Total number of banks across the whole device.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// Peak data bandwidth in bytes per second, across all channels.
    pub fn peak_bandwidth_bytes_per_sec(&self) -> u64 {
        // beats/s = 2 * clock; bytes/beat = bus_bits/8.
        2 * self.clock_mhz * 1_000_000 * u64::from(self.bus_bits / 8) * u64::from(self.channels)
    }
}

/// Named DRAM device presets — the timing/energy points a scenario can
/// select for either the stacked or the off-chip device without editing
/// code. `Stacked` + `Ddr3_1600` reproduce Table III exactly; the rest
/// are the bandwidth/latency corners related work sweeps ("Die-Stacked
/// DRAM: Memory, Cache, or MemCache?" varies exactly these axes).
///
/// Serialized by its CLI spelling (`"stacked"`, `"ddr4-2400"`, …), so
/// scenario JSON files read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramPreset {
    /// Table III die-stacked device: 4 ch × 128-bit @ 1.6 GHz.
    Stacked,
    /// Stacked device with doubled channel count (8 ch, ~410 GB/s) — the
    /// "bandwidth is cheap through TSVs" corner.
    Stacked2x,
    /// Stacked device with half the channels (2 ch) — a constrained
    /// interposer corner that stresses bandwidth-hungry designs.
    StackedHalf,
    /// Table III off-chip device: one DDR3-1600 channel.
    Ddr3_1600,
    /// A faster off-chip part: one DDR4-2400-class channel, 16 banks.
    Ddr4_2400,
}

impl DramPreset {
    /// Every preset, in display order (the source of CLI error listings).
    pub const ALL: [DramPreset; 5] = [
        DramPreset::Stacked,
        DramPreset::Stacked2x,
        DramPreset::StackedHalf,
        DramPreset::Ddr3_1600,
        DramPreset::Ddr4_2400,
    ];

    /// The preset's canonical (CLI and JSON) spelling.
    pub fn name(&self) -> &'static str {
        match self {
            DramPreset::Stacked => "stacked",
            DramPreset::Stacked2x => "stacked-2x",
            DramPreset::StackedHalf => "stacked-half",
            DramPreset::Ddr3_1600 => "ddr3-1600",
            DramPreset::Ddr4_2400 => "ddr4-2400",
        }
    }

    /// Comma-joined list of all valid names, for error messages.
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Parses a preset name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DramPreset> {
        let lower = name.trim().to_ascii_lowercase();
        Self::ALL.iter().copied().find(|p| p.name() == lower)
    }

    /// [`Self::from_name`] with an error that lists the valid names.
    ///
    /// # Errors
    ///
    /// Returns the full valid-name list when `name` matches no preset.
    pub fn parse(name: &str) -> Result<DramPreset, String> {
        Self::from_name(name).ok_or_else(|| {
            format!(
                "unknown DRAM preset {name:?} (valid presets: {})",
                Self::valid_names()
            )
        })
    }

    /// The full device configuration this preset names.
    pub fn config(&self) -> DramConfig {
        match self {
            DramPreset::Stacked => DramConfig::stacked(),
            DramPreset::Stacked2x => DramConfig {
                name: "stacked-2x",
                channels: 8,
                ..DramConfig::stacked()
            },
            DramPreset::StackedHalf => DramConfig {
                name: "stacked-half",
                channels: 2,
                ..DramConfig::stacked()
            },
            DramPreset::Ddr3_1600 => DramConfig::ddr3_1600(),
            DramPreset::Ddr4_2400 => DramConfig {
                name: "ddr4-2400",
                clock_mhz: 1200,
                banks: 16,
                timings: Timings::ddr4_2400(),
                ..DramConfig::ddr3_1600()
            },
        }
    }
}

impl serde::Serialize for DramPreset {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl serde::Deserialize for DramPreset {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s).map_err(serde::DeError::msg),
            other => Err(serde::DeError::msg(format!(
                "expected a DRAM preset name, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_presets_match_paper() {
        let s = DramConfig::stacked();
        assert_eq!(s.channels, 4);
        assert_eq!(s.banks, 8);
        assert_eq!(s.row_bytes, 8192);
        assert_eq!(s.bus_bits, 128);
        assert_eq!(s.timings.t_cas, 11);
        assert_eq!(s.timings.t_faw, 24);

        let d = DramConfig::ddr3_1600();
        assert_eq!(d.channels, 1);
        assert_eq!(d.clock_mhz, 800);
        assert_eq!(d.bus_bits, 64);
    }

    #[test]
    fn stacked_bandwidth_exceeds_100_gb_per_s() {
        let s = DramConfig::stacked();
        assert!(s.peak_bandwidth_bytes_per_sec() > 100_000_000_000);
    }

    #[test]
    fn offchip_bandwidth_is_12_8_gb_per_s() {
        let d = DramConfig::ddr3_1600();
        assert_eq!(d.peak_bandwidth_bytes_per_sec(), 12_800_000_000);
    }

    #[test]
    fn burst_duration_rounds_partial_beats_up() {
        let d = DramConfig::ddr3_1600(); // 8 B/beat, 625 ps/beat
        assert_eq!(d.burst_ps(64), 5000); // 8 beats = 4 clocks
        assert_eq!(d.burst_ps(1), 625); // 1 beat rounds to a half clock
        assert_eq!(d.burst_ps(72), 5625); // 9 beats
    }

    #[test]
    fn preset_names_round_trip() {
        for p in DramPreset::ALL {
            assert_eq!(DramPreset::from_name(p.name()), Some(p), "{}", p.name());
            assert_eq!(p.config().name, p.name());
        }
        assert_eq!(DramPreset::from_name("STACKED"), Some(DramPreset::Stacked));
        assert_eq!(DramPreset::from_name("bogus"), None);
    }

    #[test]
    fn preset_parse_error_lists_valid_names() {
        let e = DramPreset::parse("hbm9").unwrap_err();
        for p in DramPreset::ALL {
            assert!(e.contains(p.name()), "error {e:?} missing {}", p.name());
        }
    }

    #[test]
    fn table_iii_presets_are_the_papers_devices() {
        assert_eq!(DramPreset::Stacked.config(), DramConfig::stacked());
        assert_eq!(DramPreset::Ddr3_1600.config(), DramConfig::ddr3_1600());
    }

    #[test]
    fn preset_bandwidth_ordering_is_sane() {
        let bw = |p: DramPreset| p.config().peak_bandwidth_bytes_per_sec();
        assert_eq!(bw(DramPreset::Stacked2x), 2 * bw(DramPreset::Stacked));
        assert_eq!(2 * bw(DramPreset::StackedHalf), bw(DramPreset::Stacked));
        assert!(bw(DramPreset::Ddr4_2400) > bw(DramPreset::Ddr3_1600));
    }

    #[test]
    fn preset_serde_uses_kebab_names() {
        let json = serde_json::to_string(&DramPreset::Ddr4_2400).unwrap();
        assert_eq!(json, "\"ddr4-2400\"");
        let back: DramPreset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, DramPreset::Ddr4_2400);
        assert!(serde_json::from_str::<DramPreset>("\"hbm9\"").is_err());
    }

    #[test]
    fn metadata_read_is_two_cpu_cycles_on_stacked_bus() {
        // §III-A.6: 32 B of tags transfer in two bursts over the 128-bit
        // TSV bus, "one bus cycle or two CPU cycles".
        let s = DramConfig::stacked();
        let cycles = crate::time::ps_to_cpu_cycles(s.burst_ps(32));
        assert_eq!(cycles, 2);
    }
}
