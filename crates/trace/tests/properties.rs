//! Property-based tests for the trace layer.

use proptest::prelude::*;
use unison_trace::codec::{decode, encode, Decoder};
use unison_trace::{workloads, AccessKind, TraceArtifact, TraceRecord, WorkloadGen, Zipf};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u8..16,
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
        1u32..100_000,
    )
        .prop_map(|(core, w, pc, addr, igap)| TraceRecord {
            core,
            kind: if w {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            pc,
            addr,
            igap,
        })
}

proptest! {
    /// The binary codec roundtrips any record sequence bit-exactly.
    #[test]
    fn codec_roundtrips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let bytes = encode(&records);
        let back = decode(&bytes).expect("decode");
        prop_assert_eq!(back, records);
    }

    /// Decoding never panics on arbitrary bytes (it returns errors).
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode(&bytes);
    }

    /// The streaming decoder agrees with the batch decoder on arbitrary
    /// bytes: same records on success, same first error otherwise.
    #[test]
    fn streaming_decode_equals_batch_decode(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let streamed = Decoder::new(&bytes).and_then(Iterator::collect::<Result<Vec<_>, _>>);
        prop_assert_eq!(streamed, decode(&bytes));
    }

    /// Replaying a frozen artifact yields the byte-identical record
    /// stream a fresh `WorkloadGen` produces, for every named workload at
    /// quick-test scale, for any seed and length.
    #[test]
    fn artifact_replay_equals_fresh_generation(seed in any::<u64>(), len in 0u64..800) {
        for w in workloads::all() {
            let spec = w.scaled(64);
            let artifact = TraceArtifact::freeze(&spec, seed, len);
            let live: Vec<_> = WorkloadGen::new(spec.clone(), seed).take(len as usize).collect();
            let replayed: Vec<_> = artifact.replay().collect();
            prop_assert_eq!(&replayed, &live, "workload {} seed {}", spec.name, seed);
            // And the frozen payload is byte-identical to encoding the
            // live stream, so artifacts are stable cache currency.
            prop_assert_eq!(artifact.bytes().to_vec(), encode(&live).to_vec());
        }
    }

    /// Zipf samples always land in range for any parameters.
    #[test]
    fn zipf_in_range(n in 1u64..1_000_000, theta in 0.0f64..2.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, theta);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Generators are deterministic and stay inside their address space
    /// for any seed.
    #[test]
    fn generator_determinism_and_bounds(seed in any::<u64>()) {
        let spec = workloads::web_serving().scaled(64);
        let limit = spec.mem_footprint_bytes;
        let a: Vec<_> = WorkloadGen::new(spec.clone(), seed).take(500).collect();
        let b: Vec<_> = WorkloadGen::new(spec, seed).take(500).collect();
        prop_assert_eq!(&a, &b);
        for r in a {
            prop_assert!(r.addr < limit);
            prop_assert!(r.igap >= 1);
            prop_assert!(r.core < 16);
        }
    }

    /// Scaling a workload never changes its ratio knobs, only the
    /// footprint.
    #[test]
    fn scaling_preserves_ratios(factor in 1u64..128) {
        for w in workloads::all() {
            let s = w.clone().scaled(factor);
            prop_assert_eq!(s.zipf_theta, w.zipf_theta);
            prop_assert_eq!(s.write_fraction, w.write_fraction);
            prop_assert_eq!(s.pattern_noise, w.pattern_noise);
            prop_assert!(s.mem_footprint_bytes <= w.mem_footprint_bytes);
        }
    }
}
