//! The trace record type.

use serde::{Deserialize, Serialize};

/// Cache block size in bytes, fixed at 64 throughout the paper.
pub const BLOCK_BYTES: u64 = 64;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (or instruction fetch) — data flows toward the core.
    Read,
    /// A store — marks the block dirty in whatever cache holds it.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One post-L2 memory access as observed by a die-stacked DRAM cache.
///
/// `igap` carries the workload's *memory intensity*: the number of
/// instructions the issuing core executed since its previous record. The
/// performance model turns instruction gaps into compute cycles and
/// memory accesses into stalls; their ratio determines how memory-bound a
/// workload is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Issuing core, `0..cores` (16 in the paper's pod).
    pub core: u8,
    /// Read or write.
    pub kind: AccessKind,
    /// Program counter of the triggering instruction. Footprint and miss
    /// predictors index on this.
    pub pc: u64,
    /// Physical byte address accessed.
    pub addr: u64,
    /// Instructions executed by `core` since its previous trace record.
    pub igap: u32,
}

impl TraceRecord {
    /// The 64-byte-aligned block address of this access.
    ///
    /// # Example
    ///
    /// ```
    /// # use unison_trace::{AccessKind, TraceRecord};
    /// let r = TraceRecord { core: 0, kind: AccessKind::Read, pc: 0x400, addr: 130, igap: 10 };
    /// assert_eq!(r.block_addr(), 128);
    /// ```
    pub fn block_addr(&self) -> u64 {
        self.addr & !(BLOCK_BYTES - 1)
    }

    /// The global block number (`addr / 64`).
    pub fn block_number(&self) -> u64 {
        self.addr / BLOCK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord {
            core: 3,
            kind: AccessKind::Write,
            pc: 0xdead_beef,
            addr,
            igap: 100,
        }
    }

    #[test]
    fn block_addr_masks_low_bits() {
        assert_eq!(rec(0).block_addr(), 0);
        assert_eq!(rec(63).block_addr(), 0);
        assert_eq!(rec(64).block_addr(), 64);
        assert_eq!(rec(191).block_addr(), 128);
    }

    #[test]
    fn block_number_divides() {
        assert_eq!(rec(6400).block_number(), 100);
        assert_eq!(rec(6463).block_number(), 100);
    }

    #[test]
    fn write_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
