//! The six paper workloads as synthetic presets.
//!
//! Knob values are calibrated so the *relative* behaviours the paper
//! reports hold: predictor-accuracy bands (Table V), miss-ratio ordering
//! and trends (Figures 5/6), and speedup ordering (Figures 7/8). See
//! DESIGN.md §4 for the per-workload calibration targets and EXPERIMENTS.md
//! for the measured outcomes.

use crate::profile::ProfileMix;
use crate::spec::WorkloadSpec;

const GB: u64 = 1 << 30;

/// CloudSuite *Data Analytics* (MapReduce): pointer-intensive hash-table
/// probing — the paper's lowest-spatial-locality workload, where the gap
/// between block- and page-based designs is smallest (§V.B).
pub fn data_analytics() -> WorkloadSpec {
    WorkloadSpec {
        name: "Data Analytics",
        mem_footprint_bytes: 5 * GB,
        hot_fraction: 0.30,
        zipf_theta: 0.82,
        stream_fraction: 0.22,
        n_functions: 96,
        fn_zipf_theta: 0.80,
        profile_mix: ProfileMix {
            dense: 0.3,
            run: 1.0,
            strided: 0.5,
            sparse: 3.8,
            singleton: 1.5,
        },
        fn_region_affinity: 0.93,
        pattern_noise: 0.035,
        offset_entropy: 3,
        scan_span: 1,
        write_fraction: 0.25,
        mean_igap: 450,
        cores: 16,
    }
}

/// CloudSuite *Data Serving* (Cassandra/YCSB): Zipf-skewed key-value
/// lookups with very repeatable per-function footprints — the workload
/// with the paper's largest DRAM-cache speedups (Figure 7's 4× scale).
pub fn data_serving() -> WorkloadSpec {
    WorkloadSpec {
        name: "Data Serving",
        mem_footprint_bytes: 4 * GB,
        hot_fraction: 0.30,
        zipf_theta: 0.98,
        stream_fraction: 0.06,
        n_functions: 48,
        fn_zipf_theta: 0.90,
        profile_mix: ProfileMix {
            dense: 0.6,
            run: 2.4,
            strided: 0.6,
            sparse: 0.8,
            singleton: 0.5,
        },
        fn_region_affinity: 0.96,
        pattern_noise: 0.02,
        offset_entropy: 2,
        scan_span: 2,
        write_fraction: 0.30,
        mean_igap: 220,
        cores: 16,
    }
}

/// CloudSuite *Software Testing* (Cloud9 symbolic execution): diverse code
/// paths with noisy footprints — the paper's lowest footprint-prediction
/// accuracy and highest overfetch (Table V).
pub fn software_testing() -> WorkloadSpec {
    WorkloadSpec {
        name: "Software Testing",
        mem_footprint_bytes: 4 * GB,
        hot_fraction: 0.38,
        zipf_theta: 0.85,
        stream_fraction: 0.12,
        n_functions: 160,
        fn_zipf_theta: 0.60,
        profile_mix: ProfileMix {
            dense: 0.8,
            run: 1.6,
            strided: 1.2,
            sparse: 1.6,
            singleton: 0.8,
        },
        fn_region_affinity: 0.68,
        pattern_noise: 0.16,
        offset_entropy: 6,
        scan_span: 2,
        write_fraction: 0.22,
        mean_igap: 500,
        cores: 16,
    }
}

/// CloudSuite *Web Search* (Nutch/Lucene): index scans with extremely
/// dense, predictable footprints — the paper's highest footprint accuracy
/// and lowest overfetch (Table V).
pub fn web_search() -> WorkloadSpec {
    WorkloadSpec {
        name: "Web Search",
        mem_footprint_bytes: 4 * GB,
        hot_fraction: 0.45,
        zipf_theta: 0.95,
        stream_fraction: 0.05,
        n_functions: 40,
        fn_zipf_theta: 0.90,
        profile_mix: ProfileMix {
            dense: 2.6,
            run: 1.2,
            strided: 0.3,
            sparse: 0.3,
            singleton: 0.25,
        },
        fn_region_affinity: 0.97,
        pattern_noise: 0.012,
        offset_entropy: 2,
        scan_span: 3,
        write_fraction: 0.10,
        mean_igap: 550,
        cores: 16,
    }
}

/// CloudSuite *Web Serving* (Nginx/PHP/MySQL): a moderate mix of object
/// accesses and request handling.
pub fn web_serving() -> WorkloadSpec {
    WorkloadSpec {
        name: "Web Serving",
        mem_footprint_bytes: 5 * GB,
        hot_fraction: 0.34,
        zipf_theta: 0.88,
        stream_fraction: 0.12,
        n_functions: 80,
        fn_zipf_theta: 0.80,
        profile_mix: ProfileMix {
            dense: 1.0,
            run: 2.0,
            strided: 0.8,
            sparse: 1.0,
            singleton: 0.7,
        },
        fn_region_affinity: 0.90,
        pattern_noise: 0.05,
        offset_entropy: 3,
        scan_span: 3,
        write_fraction: 0.25,
        mean_igap: 350,
        cores: 16,
    }
}

/// *TPC-H* analytic queries on MonetDB: a >100 GB column-store dataset
/// with heavy scans — the workload the paper uses to motivate
/// multi-gigabyte caches (Figures 6/8: caches under 2–4 GB barely help
/// the block-based design).
pub fn tpch() -> WorkloadSpec {
    WorkloadSpec {
        name: "TPC-H",
        mem_footprint_bytes: 128 * GB,
        hot_fraction: 0.075,
        zipf_theta: 0.85,
        stream_fraction: 0.15,
        n_functions: 64,
        fn_zipf_theta: 0.85,
        profile_mix: ProfileMix {
            dense: 1.4,
            run: 1.6,
            strided: 0.6,
            sparse: 1.6,
            singleton: 0.35,
        },
        fn_region_affinity: 0.85,
        pattern_noise: 0.1,
        offset_entropy: 3,
        scan_span: 6,
        write_fraction: 0.06,
        mean_igap: 400,
        cores: 16,
    }
}

/// All six workloads in the paper's presentation order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        data_analytics(),
        data_serving(),
        software_testing(),
        web_search(),
        web_serving(),
        tpch(),
    ]
}

/// The five CloudSuite workloads (everything except TPC-H) — the set used
/// for the sub-gigabyte sweeps of Figures 5/6/7.
pub fn cloudsuite() -> Vec<WorkloadSpec> {
    vec![
        data_analytics(),
        data_serving(),
        software_testing(),
        web_search(),
        web_serving(),
    ]
}

/// Looks a workload up by its display name (case-insensitive).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_exist() {
        assert_eq!(all().len(), 6);
        assert_eq!(cloudsuite().len(), 5);
    }

    #[test]
    fn tpch_is_the_giant() {
        let t = tpch();
        for w in cloudsuite() {
            assert!(t.mem_footprint_bytes > w.mem_footprint_bytes);
        }
        assert!(t.mem_footprint_bytes > 100 * GB);
    }

    #[test]
    fn web_search_is_densest_and_cleanest() {
        let ws = web_search();
        let st = software_testing();
        assert!(ws.pattern_noise < st.pattern_noise);
        assert!(ws.profile_mix.dense > st.profile_mix.dense);
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("tpc-h").is_some());
        assert!(by_name("Web Search").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_footprints_pressure_the_largest_cloudsuite_cache() {
        // Every workload's address space must exceed the 1 GB cache of
        // Figures 6/7 several times over, or the sweeps would saturate.
        for w in all() {
            assert!(w.mem_footprint_bytes >= 4 * GB, "{} too small", w.name);
        }
        assert!(tpch().mem_footprint_bytes > 100 * GB);
    }
}
