//! Zipf-like rank sampling by continuous inversion.

use rand::Rng;

/// A Zipf-like sampler over ranks `0..n`.
///
/// Sampling inverts the CDF of the continuous truncated power law
/// `p(x) ∝ x^{-theta}` on `[1, n+1)` and floors the result, which
/// approximates the discrete Zipf distribution in O(1) time per sample for
/// arbitrary `n` (the paper's TPC-H working set implies tens of millions
/// of 2 KB regions, so O(n) table construction is off the table).
///
/// `theta = 0` degenerates to the uniform distribution; larger `theta`
/// concentrates probability on low ranks. The approximation error against
/// exact discrete Zipf is immaterial for workload synthesis — what matters
/// is a controllable, heavy-tailed reuse distribution.
///
/// # Example
///
/// ```
/// use unison_trace::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(1_000_000, 0.9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    /// `1 - theta`, cached; the special case `theta == 1` uses logs.
    q: f64,
    /// `(n+1)^q - 1` (or `ln(n+1)` when `theta == 1`), cached.
    span: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `0..n` with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be >= 0");
        let q = 1.0 - theta;
        let span = if Self::is_log_case(theta) {
            ((n + 1) as f64).ln()
        } else {
            ((n + 1) as f64).powf(q) - 1.0
        };
        Zipf { n, theta, q, span }
    }

    fn is_log_case(theta: f64) -> bool {
        (theta - 1.0).abs() < 1e-9
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen(); // [0, 1)
        let x = if Self::is_log_case(self.theta) {
            (u * self.span).exp()
        } else {
            (u * self.span + 1.0).powf(1.0 / self.q)
        };
        // x ∈ [1, n+1); floor to rank, guard the right edge.
        ((x as u64).saturating_sub(1)).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, samples: usize, bins: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = vec![0u64; bins];
        let w = z.n().div_ceil(bins as u64);
        for _ in 0..samples {
            let r = z.sample(&mut rng);
            h[(r / w) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = Zipf::new(1000, 0.0);
        let h = histogram(&z, 100_000, 10);
        let max = *h.iter().max().unwrap() as f64;
        let min = *h.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uniform histogram too skewed: {h:?}");
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(1_000_000, 1.2);
        let h = histogram(&z, 100_000, 10);
        assert!(
            h[0] as f64 / 100_000.0 > 0.8,
            "skewed sampler should hit the first decile most of the time: {h:?}"
        );
    }

    #[test]
    fn theta_one_log_case_works() {
        let z = Zipf::new(10_000, 1.0);
        let h = histogram(&z, 100_000, 10);
        assert!(h[0] > h[9], "rank popularity should decay: {h:?}");
        assert!(h.iter().sum::<u64>() == 100_000);
    }

    #[test]
    fn single_rank_always_returns_zero() {
        let z = Zipf::new(1, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_n_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
