//! Compact binary trace encoding.
//!
//! Fixed 22-byte little-endian records with a 16-byte header. The format
//! exists so a calibrated trace can be frozen as an artifact and re-read
//! bit-identically, independent of generator evolution.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{AccessKind, TraceRecord};

/// Magic bytes identifying a trace stream.
pub const MAGIC: &[u8; 8] = b"UNISONTR";
/// Current format version.
pub const VERSION: u32 = 1;

const RECORD_BYTES: usize = 1 + 1 + 8 + 8 + 4;

/// Errors produced while decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is not supported.
    BadVersion(u32),
    /// The stream ended in the middle of a record.
    Truncated,
    /// A record contained an invalid access-kind byte.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "stream does not begin with the trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "stream ended mid-record"),
            DecodeError::BadKind(k) => write!(f, "invalid access kind byte {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes records into a self-describing byte buffer.
///
/// # Example
///
/// ```
/// use unison_trace::codec::{encode, decode};
/// use unison_trace::{AccessKind, TraceRecord};
///
/// let recs = vec![TraceRecord { core: 1, kind: AccessKind::Read, pc: 0x400, addr: 4096, igap: 12 }];
/// let bytes = encode(&recs);
/// assert_eq!(decode(&bytes)?, recs);
/// # Ok::<(), unison_trace::codec::DecodeError>(())
/// ```
pub fn encode(records: &[TraceRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + records.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(0); // reserved
    for r in records {
        buf.put_u8(r.core);
        buf.put_u8(match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
        buf.put_u64_le(r.pc);
        buf.put_u64_le(r.addr);
        buf.put_u32_le(r.igap);
    }
    buf.freeze()
}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed input; never panics.
pub fn decode(mut buf: &[u8]) -> Result<Vec<TraceRecord>, DecodeError> {
    if buf.len() < 16 {
        return Err(DecodeError::BadMagic);
    }
    if &buf[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    buf.advance(8);
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    buf.advance(4); // reserved
    if !buf.len().is_multiple_of(RECORD_BYTES) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(buf.len() / RECORD_BYTES);
    while buf.has_remaining() {
        let core = buf.get_u8();
        let kind = match buf.get_u8() {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => return Err(DecodeError::BadKind(k)),
        };
        let pc = buf.get_u64_le();
        let addr = buf.get_u64_le();
        let igap = buf.get_u32_le();
        out.push(TraceRecord {
            core,
            kind,
            pc,
            addr,
            igap,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use crate::WorkloadGen;

    #[test]
    fn roundtrip_generated_trace() {
        let recs: Vec<_> = WorkloadGen::new(workloads::web_serving(), 77)
            .take(10_000)
            .collect();
        let encoded = encode(&recs);
        let decoded = decode(&encoded).expect("roundtrip");
        assert_eq!(decoded, recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let encoded = encode(&[]);
        assert_eq!(decode(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTATRACE_______"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = encode(&[]).to_vec();
        b[8] = 99;
        assert_eq!(decode(&b), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected() {
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(3).collect();
        let b = encode(&recs).to_vec();
        assert_eq!(decode(&b[..b.len() - 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_kind_rejected() {
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(1).collect();
        let mut b = encode(&recs).to_vec();
        b[17] = 7; // the kind byte of record 0
        assert_eq!(decode(&b), Err(DecodeError::BadKind(7)));
    }
}
