//! Compact binary trace encoding.
//!
//! Fixed 22-byte little-endian records with a 16-byte header. The format
//! exists so a calibrated trace can be frozen as an artifact and re-read
//! bit-identically, independent of generator evolution.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{AccessKind, TraceRecord};

/// Magic bytes identifying a trace stream.
pub const MAGIC: &[u8; 8] = b"UNISONTR";
/// Current format version.
pub const VERSION: u32 = 1;

/// Size of the stream header (magic + version + reserved word).
pub const HEADER_BYTES: usize = 16;
/// Size of one encoded record.
pub const RECORD_BYTES: usize = 1 + 1 + 8 + 8 + 4;

/// Errors produced while decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's version is not supported.
    BadVersion(u32),
    /// The stream ended in the middle of a record.
    Truncated,
    /// A record contained an invalid access-kind byte.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "stream does not begin with the trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "stream ended mid-record"),
            DecodeError::BadKind(k) => write!(f, "invalid access kind byte {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes records into a self-describing byte buffer.
///
/// # Example
///
/// ```
/// use unison_trace::codec::{encode, decode};
/// use unison_trace::{AccessKind, TraceRecord};
///
/// let recs = vec![TraceRecord { core: 1, kind: AccessKind::Read, pc: 0x400, addr: 4096, igap: 12 }];
/// let bytes = encode(&recs);
/// assert_eq!(decode(&bytes)?, recs);
/// # Ok::<(), unison_trace::codec::DecodeError>(())
/// ```
pub fn encode(records: &[TraceRecord]) -> Bytes {
    let mut enc = Encoder::with_capacity(records.len());
    for r in records {
        enc.push(r);
    }
    enc.finish()
}

/// Streaming encoder: writes the header up front and appends records one
/// at a time, so a trace pulled off a generator never has to be
/// materialized as a `Vec<TraceRecord>` before freezing.
#[derive(Debug)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an encoder pre-sized for `records` records, with the
    /// stream header already written.
    pub fn with_capacity(records: usize) -> Self {
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + records * RECORD_BYTES);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(0); // reserved
        Encoder { buf }
    }

    /// Appends one record (one contiguous 22-byte write — a single
    /// capacity check rather than five).
    pub fn push(&mut self, r: &TraceRecord) {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0] = r.core;
        rec[1] = match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        };
        rec[2..10].copy_from_slice(&r.pc.to_le_bytes());
        rec[10..18].copy_from_slice(&r.addr.to_le_bytes());
        rec[18..22].copy_from_slice(&r.igap.to_le_bytes());
        self.buf.put_slice(&rec);
    }

    /// Records encoded so far.
    pub fn len(&self) -> usize {
        (self.buf.len() - HEADER_BYTES) / RECORD_BYTES
    }

    /// True when no records have been encoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the stream into an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed input; never panics.
pub fn decode(buf: &[u8]) -> Result<Vec<TraceRecord>, DecodeError> {
    Decoder::new(buf)?.collect()
}

/// Streaming decoder: validates the header once, then yields records
/// straight off the buffer cursor without materializing a `Vec`.
///
/// The header (magic, version, record alignment) is checked at
/// construction; per-record corruption (an invalid kind byte) surfaces as
/// an `Err` item mid-iteration.
///
/// # Example
///
/// ```
/// use unison_trace::codec::{encode, Decoder};
/// use unison_trace::{AccessKind, TraceRecord};
///
/// let recs = vec![TraceRecord { core: 0, kind: AccessKind::Write, pc: 1, addr: 64, igap: 3 }];
/// let bytes = encode(&recs);
/// let decoded: Result<Vec<_>, _> = Decoder::new(&bytes)?.collect();
/// assert_eq!(decoded?, recs);
/// # Ok::<(), unison_trace::codec::DecodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Validates the stream header and record alignment of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadMagic`], [`DecodeError::BadVersion`], or
    /// [`DecodeError::Truncated`] for a malformed header; never panics.
    pub fn new(mut buf: &'a [u8]) -> Result<Self, DecodeError> {
        if buf.len() < HEADER_BYTES || &buf[..8] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        buf.advance(8);
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        buf.advance(4); // reserved
        if !buf.len().is_multiple_of(RECORD_BYTES) {
            return Err(DecodeError::Truncated);
        }
        Ok(Decoder { buf })
    }

    /// Records left to decode.
    pub fn remaining_records(&self) -> usize {
        self.buf.len() / RECORD_BYTES
    }
}

impl Iterator for Decoder<'_> {
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.buf.has_remaining() {
            return None;
        }
        let core = self.buf.get_u8();
        let kind = match self.buf.get_u8() {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => {
                self.buf = &[]; // poison: stop after the first bad record
                return Some(Err(DecodeError::BadKind(k)));
            }
        };
        let pc = self.buf.get_u64_le();
        let addr = self.buf.get_u64_le();
        let igap = self.buf.get_u32_le();
        Some(Ok(TraceRecord {
            core,
            kind,
            pc,
            addr,
            igap,
        }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining_records();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use crate::WorkloadGen;

    #[test]
    fn roundtrip_generated_trace() {
        let recs: Vec<_> = WorkloadGen::new(workloads::web_serving(), 77)
            .take(10_000)
            .collect();
        let encoded = encode(&recs);
        let decoded = decode(&encoded).expect("roundtrip");
        assert_eq!(decoded, recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let encoded = encode(&[]);
        assert_eq!(decode(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOTATRACE_______"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = encode(&[]).to_vec();
        b[8] = 99;
        assert_eq!(decode(&b), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected() {
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(3).collect();
        let b = encode(&recs).to_vec();
        assert_eq!(decode(&b[..b.len() - 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_kind_rejected() {
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(1).collect();
        let mut b = encode(&recs).to_vec();
        b[17] = 7; // the kind byte of record 0
        assert_eq!(decode(&b), Err(DecodeError::BadKind(7)));
    }

    #[test]
    fn streaming_encoder_matches_batch_encode() {
        let recs: Vec<_> = WorkloadGen::new(workloads::data_serving(), 5)
            .take(2_000)
            .collect();
        let mut enc = Encoder::with_capacity(recs.len());
        assert!(enc.is_empty());
        for r in &recs {
            enc.push(r);
        }
        assert_eq!(enc.len(), recs.len());
        assert_eq!(enc.finish().to_vec(), encode(&recs).to_vec());
    }

    #[test]
    fn streaming_decoder_matches_batch_decode() {
        let recs: Vec<_> = WorkloadGen::new(workloads::web_search(), 11)
            .take(3_000)
            .collect();
        let bytes = encode(&recs);
        let dec = Decoder::new(&bytes).expect("valid header");
        assert_eq!(dec.remaining_records(), recs.len());
        assert_eq!(dec.size_hint(), (recs.len(), Some(recs.len())));
        let streamed: Vec<_> = dec.map(|r| r.expect("valid record")).collect();
        assert_eq!(streamed, recs);
    }

    #[test]
    fn streaming_decoder_rejects_bad_headers() {
        assert_eq!(
            Decoder::new(b"NOTATRACE_______").err(),
            Some(DecodeError::BadMagic)
        );
        let mut versioned = encode(&[]).to_vec();
        versioned[8] = 9;
        assert_eq!(
            Decoder::new(&versioned).err(),
            Some(DecodeError::BadVersion(9))
        );
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(2).collect();
        let b = encode(&recs).to_vec();
        assert_eq!(
            Decoder::new(&b[..b.len() - 3]).err(),
            Some(DecodeError::Truncated)
        );
    }

    #[test]
    fn streaming_decoder_stops_after_bad_kind() {
        let recs: Vec<_> = WorkloadGen::new(workloads::tpch(), 1).take(3).collect();
        let mut b = encode(&recs).to_vec();
        b[HEADER_BYTES + RECORD_BYTES + 1] = 5; // record 1's kind byte
        let mut dec = Decoder::new(&b).expect("header is intact");
        assert_eq!(dec.next(), Some(Ok(recs[0])));
        assert_eq!(dec.next(), Some(Err(DecodeError::BadKind(5))));
        assert_eq!(dec.next(), None, "decoder poisons itself after an error");
    }
}
