//! Synthetic "function" profiles: the code ↔ footprint correlation.
//!
//! The footprint predictor works because server software calls a limited
//! set of functions over large data, and each function touches data in a
//! repetitive spatial pattern (§III-A.1). The generator models this
//! directly: a workload owns a library of synthetic functions, each with a
//! characteristic block-access pattern relative to its first access. At
//! visit time the pattern is placed at an offset inside a 4 KB region and
//! perturbed with workload-specific noise — the noise level is the knob
//! that sets footprint-predictor accuracy.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spatial-locality region size used by the generators: 4 KB, the OS page
/// size — the natural unit at which server software lays out data.
/// (Cache designs use their own page sizes — 960 B/1984 B for Unison,
/// 2 KB for Footprint Cache — neither aligned to this, exactly as in a
/// real system.)
pub const REGION_BYTES: u64 = 4096;

/// Blocks per generator region (`4096 / 64`).
pub const REGION_BLOCKS: u32 = (REGION_BYTES / crate::record::BLOCK_BYTES) as u32;

/// The shape class of a function's footprint pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Long sequential run (scans, column reads): `len` blocks from the
    /// start offset.
    Dense {
        /// Run length in blocks (capped at [`REGION_BLOCKS`]).
        len: u8,
    },
    /// Short-to-medium object access: `len` consecutive blocks.
    Run {
        /// Run length in blocks.
        len: u8,
    },
    /// Regular stride (field access across records).
    Strided {
        /// Distance between touched blocks.
        stride: u8,
        /// Number of touched blocks.
        count: u8,
    },
    /// Irregular pointer-chasing: `count` pseudo-random blocks.
    Sparse {
        /// Number of touched blocks.
        count: u8,
    },
    /// Exactly one block — the "singleton" pages of §III-A.4.
    Singleton,
}

impl PatternClass {
    /// Materializes the class into a bit mask over [`REGION_BLOCKS`]
    /// blocks, relative to the first-touched block (bit 0 is always set).
    ///
    /// `salt` individualizes Sparse patterns between functions while
    /// keeping each function's own pattern fixed.
    pub fn to_mask(self, salt: u64) -> u64 {
        let cap = REGION_BLOCKS;
        match self {
            PatternClass::Dense { len } | PatternClass::Run { len } => {
                let len = u32::from(len).clamp(1, cap);
                if len == 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                }
            }
            PatternClass::Strided { stride, count } => {
                let stride = u32::from(stride).max(1);
                let mut m = 0u64;
                for i in 0..u32::from(count) {
                    let b = i * stride;
                    if b >= cap {
                        break;
                    }
                    m |= 1 << b;
                }
                m | 1
            }
            PatternClass::Sparse { count } => {
                // Deterministic pseudo-random scatter from the salt,
                // clustered in a 6-block (384 B) window: pointer-chasing
                // visits one object and a few of its fields, not the
                // whole page.
                let window = 6.min(cap);
                let mut m = 1u64; // first block always touched
                let mut x = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                let mut placed = 1;
                while placed < u32::from(count).clamp(1, window) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let b = (x % u64::from(window)) as u32;
                    if m & (1u64 << b) == 0 {
                        m |= 1u64 << b;
                        placed += 1;
                    }
                }
                m
            }
            PatternClass::Singleton => 1,
        }
    }
}

/// Relative weights of the pattern classes in a workload's function
/// library. Weights need not sum to one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileMix {
    /// Weight of [`PatternClass::Dense`] (half-region to full-region
    /// scans).
    pub dense: f64,
    /// Weight of [`PatternClass::Run`] (medium objects).
    pub run: f64,
    /// Weight of [`PatternClass::Strided`].
    pub strided: f64,
    /// Weight of [`PatternClass::Sparse`].
    pub sparse: f64,
    /// Weight of [`PatternClass::Singleton`].
    pub singleton: f64,
}

impl ProfileMix {
    /// Draws a pattern class according to the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PatternClass {
        let weights = [
            self.dense,
            self.run,
            self.strided,
            self.sparse,
            self.singleton,
        ];
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "profile weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one profile weight must be positive");
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        match idx {
            // Scans cover whole regions (and roll across regions via
            // `scan_span`); partial coverage comes from per-visit noise,
            // not from artificial mid-page pattern boundaries.
            0 => PatternClass::Dense { len: 64 },
            1 => PatternClass::Run {
                len: rng.gen_range(6..=20),
            },
            2 => PatternClass::Strided {
                stride: rng.gen_range(2..=6),
                count: rng.gen_range(6..=16),
            },
            3 => PatternClass::Sparse {
                count: rng.gen_range(2..=6),
            },
            _ => PatternClass::Singleton,
        }
    }
}

/// One synthetic function: a PC with a fixed footprint pattern and a small
/// set of start-offset alignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// The synthetic program counter.
    pub pc: u64,
    /// Pattern class this function was drawn as.
    pub class: PatternClass,
    /// Block mask relative to the first access (bit 0 set).
    pub base_mask: u64,
    /// Start offsets (block index within region) this function uses —
    /// models data-structure alignment variation (§III-A.1).
    pub offsets: Vec<u8>,
}

impl FunctionProfile {
    /// Generates function `index` of a library.
    pub fn generate<R: Rng + ?Sized>(
        index: usize,
        mix: &ProfileMix,
        offset_entropy: u32,
        rng: &mut R,
    ) -> Self {
        let class = mix.sample(rng);
        let base_mask = class.to_mask(index as u64 + 1);
        let n_offsets = offset_entropy.max(1);
        // Dense scans start at (or near) region boundaries; other
        // patterns land wherever their object sits.
        let offset_cap: u8 = match class {
            PatternClass::Dense { .. } => 1,
            _ => REGION_BLOCKS as u8,
        };
        let mut offsets: Vec<u8> = (0..n_offsets)
            .map(|_| rng.gen_range(0..offset_cap))
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        FunctionProfile {
            pc: 0x40_0000 + (index as u64) * 0x40,
            class,
            base_mask,
            offsets,
        }
    }

    /// Places the base mask at `offset` within the region and truncates at
    /// the region end. Bit `offset` (the trigger block) is always set.
    ///
    /// # Example
    ///
    /// ```
    /// # use unison_trace::{FunctionProfile, PatternClass};
    /// let f = FunctionProfile {
    ///     pc: 0x400000,
    ///     class: PatternClass::Run { len: 4 },
    ///     base_mask: 0b1111,
    ///     offsets: vec![0],
    /// };
    /// assert_eq!(f.mask_at(2), 0b111100);
    /// // Truncated at the region boundary:
    /// assert_eq!(f.mask_at(62), 0b11 << 62);
    /// ```
    pub fn mask_at(&self, offset: u8) -> u64 {
        let shifted = (u128::from(self.base_mask)) << offset;
        (shifted as u64) | (1u64 << offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_mask_is_contiguous() {
        let m = PatternClass::Dense { len: 8 }.to_mask(0);
        assert_eq!(m, 0xff);
        let m64 = PatternClass::Dense { len: 64 }.to_mask(0);
        assert_eq!(m64, u64::MAX);
    }

    #[test]
    fn strided_mask_spaces_bits() {
        let m = PatternClass::Strided {
            stride: 4,
            count: 4,
        }
        .to_mask(0);
        assert_eq!(m, 0b1_0001_0001_0001);
    }

    #[test]
    fn sparse_mask_is_deterministic_per_salt() {
        let a = PatternClass::Sparse { count: 5 }.to_mask(9);
        let b = PatternClass::Sparse { count: 5 }.to_mask(9);
        let c = PatternClass::Sparse { count: 5 }.to_mask(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.count_ones(), 5);
        assert!(a & 1 == 1, "first block always in the footprint");
    }

    #[test]
    fn singleton_mask_is_one_block() {
        assert_eq!(PatternClass::Singleton.to_mask(3), 1);
    }

    #[test]
    fn mask_at_truncates_at_region_end() {
        let f = FunctionProfile {
            pc: 0,
            class: PatternClass::Run { len: 8 },
            base_mask: 0xff,
            offsets: vec![0],
        };
        let m = f.mask_at(60);
        assert_eq!(m.count_ones(), 4);
        assert!(m & (1u64 << 60) != 0);
    }

    #[test]
    fn profile_mix_respects_zero_weights() {
        let mix = ProfileMix {
            dense: 0.0,
            run: 0.0,
            strided: 0.0,
            sparse: 0.0,
            singleton: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut rng), PatternClass::Singleton);
        }
    }

    #[test]
    fn generated_function_has_valid_offsets() {
        let mix = ProfileMix {
            dense: 1.0,
            run: 1.0,
            strided: 1.0,
            sparse: 1.0,
            singleton: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..100 {
            let f = FunctionProfile::generate(i, &mix, 4, &mut rng);
            assert!(!f.offsets.is_empty());
            assert!(f.offsets.iter().all(|&o| u32::from(o) < REGION_BLOCKS));
            assert!(f.base_mask & 1 == 1);
        }
    }

    #[test]
    fn dense_functions_start_near_region_head() {
        let mix = ProfileMix {
            dense: 1.0,
            run: 0.0,
            strided: 0.0,
            sparse: 0.0,
            singleton: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(13);
        for i in 0..50 {
            let f = FunctionProfile::generate(i, &mix, 4, &mut rng);
            assert!(
                f.offsets.iter().all(|&o| o < 4),
                "scan offsets {:?}",
                f.offsets
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_mix_panics() {
        let mix = ProfileMix {
            dense: 0.0,
            run: 0.0,
            strided: 0.0,
            sparse: 0.0,
            singleton: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = mix.sample(&mut rng);
    }
}
