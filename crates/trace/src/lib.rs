//! Memory trace records, a binary trace codec, and synthetic server
//! workload generators.
//!
//! The Unison Cache paper evaluates with memory traces collected from
//! full-system simulation of CloudSuite and TPC-H — 30 billion
//! instructions per core of proprietary Simics/Flexus traces that are not
//! available. This crate substitutes **parameterized synthetic
//! generators**, one per paper workload, that reproduce the *trace
//! properties the paper's results depend on*:
//!
//! * a configurable resident working set with Zipf-like region popularity
//!   plus a streaming component (drives how miss ratio falls with cache
//!   size — Figure 6);
//! * strong but noisy correlation between the code (PC) + first-block
//!   offset and the set of blocks touched in a region ("footprints",
//!   §III-A.1 — drives footprint-predictor accuracy, Table V);
//! * per-workload spatial density, singleton rate, write fraction, and
//!   memory intensity (instruction gap between post-L2 accesses).
//!
//! Traces are streams of [`TraceRecord`]s — the post-L2 request stream a
//! die-stacked DRAM cache observes. Generators implement `Iterator` so
//! multi-gigabyte traces never need to be materialized; the
//! [`codec`] module persists them when a fixed artifact is
//! wanted.
//!
//! # Example
//!
//! ```
//! use unison_trace::{workloads, WorkloadGen};
//!
//! let mut gen = WorkloadGen::new(workloads::web_search(), 42);
//! let first = gen.next().unwrap();
//! assert!(first.core < 16);
//! // Deterministic: the same seed yields the same trace.
//! let mut gen2 = WorkloadGen::new(workloads::web_search(), 42);
//! assert_eq!(Some(first), gen2.next());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod codec;
mod gen;
mod profile;
mod record;
mod spec;
pub mod stats;
pub mod workloads;
mod zipf;

pub use artifact::{artifact_key, Fnv1a, TraceArtifact, TraceReplay};
pub use gen::WorkloadGen;
pub use profile::{FunctionProfile, PatternClass, ProfileMix, REGION_BLOCKS, REGION_BYTES};
pub use record::{AccessKind, TraceRecord, BLOCK_BYTES};
pub use spec::WorkloadSpec;
pub use zipf::Zipf;
