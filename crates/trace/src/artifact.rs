//! Frozen trace artifacts: content-addressed, shareable, replayable.
//!
//! A campaign sweeping N designs × M sizes over one workload replays the
//! *same* `(spec, seed)` record stream N×M times. Regenerating it per cell
//! pays the full RNG/Zipf synthesis cost every time; a [`TraceArtifact`]
//! pays it **once**, freezing the stream through the [`crate::codec`]
//! binary format, and every subsequent consumer iterates a
//! [`TraceReplay`] cursor straight off the shared buffer — no decode
//! `Vec`, no per-record heap allocation, and `Bytes` clones share
//! storage, so handing an artifact to a worker pool is O(1).
//!
//! Artifacts are **content-addressed**: [`artifact_key`] hashes the full
//! serialized workload spec, the seed, and the codec version into a
//! stable 64-bit key, so an on-disk cache can tell apart two specs that
//! share a display name and invalidates itself automatically when the
//! codec format (and therefore [`crate::codec::VERSION`]) changes.
//!
//! Replay is **bit-identical** to live generation: `artifact.replay()`
//! yields exactly the first `len` records of
//! `WorkloadGen::new(spec, seed)` (pinned by property tests and the
//! golden simulation fixtures).
//!
//! # Example
//!
//! ```
//! use unison_trace::{workloads, TraceArtifact, WorkloadGen};
//!
//! let spec = workloads::web_search().scaled(64);
//! let artifact = TraceArtifact::freeze(&spec, 7, 1_000);
//! let live: Vec<_> = WorkloadGen::new(spec, 7).take(1_000).collect();
//! let replayed: Vec<_> = artifact.replay().collect();
//! assert_eq!(live, replayed);
//! ```

use bytes::Bytes;

use crate::codec::{self, DecodeError, HEADER_BYTES, RECORD_BYTES};
use crate::gen::WorkloadGen;
use crate::record::{AccessKind, TraceRecord};
use crate::spec::WorkloadSpec;

/// Version of the **synthesis algorithm** behind `WorkloadGen`.
///
/// Bump this whenever a change to the generator stack (`gen.rs`,
/// `zipf.rs`, `profile.rs`, workload presets) alters the record stream
/// emitted for an unchanged `(spec, seed)` — the golden simulation
/// fixtures failing after a trace-crate change is the usual tell. The
/// value is folded into [`artifact_key`], so persisted artifact caches
/// from before the change stop being addressed instead of silently
/// replaying the outdated stream.
pub const GENERATOR_VERSION: u32 = 1;

/// Derives the stable content key for the trace of `(spec, seed)`.
///
/// The key is an FNV-1a 64 hash over the codec version, the generator
/// version ([`GENERATOR_VERSION`]), the full serialized spec (so two
/// specs sharing a display name but differing in any knob get distinct
/// keys), and the seed. Trace *length* is deliberately excluded: a
/// longer freeze of the same `(spec, seed)` is a strict prefix-extension
/// of a shorter one, so caches keep one artifact per key and grow it on
/// demand.
pub fn artifact_key(spec: &WorkloadSpec, seed: u64) -> u64 {
    let spec_json = serde_json::to_string(spec).expect("workload spec serializes");
    let mut h = Fnv1a::new();
    h.write(b"unison-trace-artifact");
    h.write(&codec::VERSION.to_le_bytes());
    h.write(&GENERATOR_VERSION.to_le_bytes());
    h.write(spec_json.as_bytes());
    h.write(&seed.to_le_bytes());
    h.finish()
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms
/// (unlike `DefaultHasher`, whose output is explicitly unspecified).
/// Public because every cross-process-stable key in the workspace
/// (trace-artifact keys here, the harness's cell keys and plan
/// fingerprints) must hash identically forever — one implementation,
/// not three copies to keep in sync.
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen, immutable trace: the first `len` records of
/// `WorkloadGen::new(spec, seed)` in codec encoding, plus the content key
/// that addresses it.
///
/// Cloning is cheap (the payload is a shared [`Bytes`] buffer); campaigns
/// typically share one artifact behind an `Arc` anyway.
#[derive(Debug, Clone)]
pub struct TraceArtifact {
    key: u64,
    seed: u64,
    len: usize,
    bytes: Bytes,
}

impl TraceArtifact {
    /// Generates and freezes the first `len` records of
    /// `WorkloadGen::new(spec, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails validation (same contract as
    /// [`WorkloadGen::new`]).
    pub fn freeze(spec: &WorkloadSpec, seed: u64, len: u64) -> Self {
        let len = usize::try_from(len).expect("trace length fits in memory");
        let mut enc = codec::Encoder::with_capacity(len);
        for r in WorkloadGen::new(spec.clone(), seed).take(len) {
            enc.push(&r);
        }
        TraceArtifact {
            key: artifact_key(spec, seed),
            seed,
            len,
            bytes: enc.finish(),
        }
    }

    /// Rehydrates an artifact from previously persisted bytes (e.g. a
    /// disk cache), fully validating it: header, version, record
    /// alignment, **and** every record's kind byte — so [`Self::replay`]
    /// can iterate infallibly afterwards.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] found; corrupted cache files
    /// should be treated as misses and regenerated.
    pub fn from_bytes(key: u64, seed: u64, bytes: Bytes) -> Result<Self, DecodeError> {
        let dec = codec::Decoder::new(&bytes)?;
        let len = dec.remaining_records();
        for r in dec {
            r?;
        }
        Ok(TraceArtifact {
            key,
            seed,
            len,
            bytes,
        })
    }

    /// The content key this artifact was frozen under (see
    /// [`artifact_key`]).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The trace seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of frozen records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the artifact holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The encoded payload, suitable for persisting verbatim; a clone of
    /// the returned buffer shares storage with the artifact.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// A zero-allocation replay cursor over the frozen records.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            buf: &self.bytes[HEADER_BYTES..],
        }
    }
}

/// Zero-allocation iterator decoding [`TraceRecord`]s straight off an
/// artifact's buffer cursor.
///
/// Infallible by construction: every byte of the artifact was validated
/// when the artifact was frozen or rehydrated, so iteration is a straight
/// fixed-stride read with no error path and no heap traffic.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    buf: &'a [u8],
}

impl Iterator for TraceReplay<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let (rec, rest) = self.buf.split_first_chunk::<RECORD_BYTES>()?;
        self.buf = rest;
        Some(TraceRecord {
            core: rec[0],
            // Validated at freeze/rehydrate time: only 0 or 1 occur.
            kind: if rec[1] == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
            pc: u64::from_le_bytes(rec[2..10].try_into().expect("8-byte pc field")),
            addr: u64::from_le_bytes(rec[10..18].try_into().expect("8-byte addr field")),
            igap: u32::from_le_bytes(rec[18..22].try_into().expect("4-byte igap field")),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.buf.len() / RECORD_BYTES;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceReplay<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn quick_spec() -> WorkloadSpec {
        workloads::data_serving().scaled(64)
    }

    #[test]
    fn replay_equals_live_generation() {
        let spec = quick_spec();
        let artifact = TraceArtifact::freeze(&spec, 42, 5_000);
        assert_eq!(artifact.len(), 5_000);
        let live: Vec<_> = WorkloadGen::new(spec, 42).take(5_000).collect();
        let replayed: Vec<_> = artifact.replay().collect();
        assert_eq!(replayed, live);
    }

    #[test]
    fn longer_freeze_is_a_prefix_extension() {
        let spec = quick_spec();
        let short = TraceArtifact::freeze(&spec, 9, 500);
        let long = TraceArtifact::freeze(&spec, 9, 2_000);
        let short_recs: Vec<_> = short.replay().collect();
        let long_prefix: Vec<_> = long.replay().take(500).collect();
        assert_eq!(short_recs, long_prefix);
    }

    #[test]
    fn key_depends_on_spec_seed_and_version_only() {
        let spec = quick_spec();
        assert_eq!(artifact_key(&spec, 1), artifact_key(&spec, 1));
        assert_ne!(artifact_key(&spec, 1), artifact_key(&spec, 2));
        let other = workloads::data_serving().scaled(32); // same name, new params
        assert_ne!(artifact_key(&spec, 1), artifact_key(&other, 1));
        let a = TraceArtifact::freeze(&spec, 1, 10);
        let b = TraceArtifact::freeze(&spec, 1, 999);
        assert_eq!(a.key(), b.key(), "length must not change the key");
    }

    #[test]
    fn from_bytes_round_trips() {
        let spec = quick_spec();
        let a = TraceArtifact::freeze(&spec, 3, 1_000);
        let b = TraceArtifact::from_bytes(a.key(), 3, a.bytes().clone()).expect("valid payload");
        assert_eq!(b.len(), 1_000);
        assert_eq!(b.seed(), 3);
        assert!(
            a.bytes().shares_storage_with(b.bytes()),
            "rehydration must not copy the payload"
        );
        assert_eq!(
            a.replay().collect::<Vec<_>>(),
            b.replay().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let spec = quick_spec();
        let a = TraceArtifact::freeze(&spec, 3, 10);
        let good = a.bytes().to_vec();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            TraceArtifact::from_bytes(a.key(), 3, bad_magic.into()).err(),
            Some(DecodeError::BadMagic)
        );

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert_eq!(
            TraceArtifact::from_bytes(a.key(), 3, bad_version.into()).err(),
            Some(DecodeError::BadVersion(99))
        );

        let truncated = good[..good.len() - 5].to_vec();
        assert_eq!(
            TraceArtifact::from_bytes(a.key(), 3, truncated.into()).err(),
            Some(DecodeError::Truncated)
        );

        let mut bad_kind = good.clone();
        bad_kind[HEADER_BYTES + 1] = 7;
        assert_eq!(
            TraceArtifact::from_bytes(a.key(), 3, bad_kind.into()).err(),
            Some(DecodeError::BadKind(7)),
            "rehydration must validate every record, not just the header"
        );
    }

    #[test]
    fn replay_is_exact_size_and_clonable() {
        let artifact = TraceArtifact::freeze(&quick_spec(), 5, 100);
        let mut it = artifact.replay();
        assert_eq!(it.len(), 100);
        it.next();
        assert_eq!(it.len(), 99);
        let forked = it.clone();
        assert_eq!(it.collect::<Vec<_>>(), forked.collect::<Vec<_>>());
    }

    #[test]
    fn empty_artifact_is_fine() {
        let artifact = TraceArtifact::freeze(&quick_spec(), 5, 0);
        assert!(artifact.is_empty());
        assert_eq!(artifact.replay().count(), 0);
    }
}
