//! The synthetic trace engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{FunctionProfile, REGION_BLOCKS, REGION_BYTES};
use crate::record::{AccessKind, TraceRecord};
use crate::spec::WorkloadSpec;
use crate::zipf::Zipf;

/// An infinite, deterministic post-L2 trace stream for one workload.
///
/// Construction is cheap (the function library, not the address space, is
/// materialized); records are produced on demand via `Iterator`. The same
/// `(spec, seed)` pair always yields the identical stream.
///
/// # Example
///
/// ```
/// use unison_trace::{workloads, WorkloadGen};
///
/// let gen = WorkloadGen::new(workloads::data_serving(), 7);
/// let records: Vec<_> = gen.take(1000).collect();
/// assert_eq!(records.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: SmallRng,
    region_zipf: Zipf,
    fn_zipf: Zipf,
    functions: Vec<FunctionProfile>,
    /// Multiplier coprime to the region count; scatters popularity ranks
    /// across the physical address space so hot regions don't cluster
    /// into adjacent cache sets.
    perm_mult: u64,
    perm_add: u64,
    stream_cursor: u64,
    cores: Vec<CoreState>,
    rr_next: usize,
}

#[derive(Debug, Clone, Default)]
struct CoreState {
    visit: Option<Visit>,
}

#[derive(Debug, Clone)]
struct Visit {
    region: u64,
    pc: u64,
    /// Blocks still to touch (bit per region block).
    remaining: u64,
    /// The trigger block, emitted first.
    trigger: u8,
    trigger_done: bool,
    /// Further consecutive regions this scan continues into.
    scan_left: u32,
}

impl WorkloadGen {
    /// Creates a generator for `spec`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec for {}: {e}", spec.name);
        }
        let mut lib_rng = SmallRng::seed_from_u64(seed ^ 0xfeed_f00d_dead_beef);
        let functions: Vec<FunctionProfile> = (0..spec.n_functions)
            .map(|i| {
                FunctionProfile::generate(i, &spec.profile_mix, spec.offset_entropy, &mut lib_rng)
            })
            .collect();
        let region_count = spec.region_count();
        let perm_mult = coprime_near(region_count, (region_count as f64 * 0.618) as u64);
        let perm_add = seed % region_count;
        let hot = spec.hot_region_count();
        let cores = vec![CoreState::default(); spec.cores as usize];
        WorkloadGen {
            region_zipf: Zipf::new(hot, spec.zipf_theta),
            fn_zipf: Zipf::new(spec.n_functions as u64, spec.fn_zipf_theta),
            rng: SmallRng::seed_from_u64(seed),
            functions,
            perm_mult,
            perm_add,
            stream_cursor: 0,
            cores,
            rr_next: 0,
            spec,
        }
    }

    /// The workload specification driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The synthetic function library (exposed for tests and analysis).
    pub fn functions(&self) -> &[FunctionProfile] {
        &self.functions
    }

    /// Maps a popularity rank (or streaming index) to a physical region.
    ///
    /// Placement hashes rather than permutes: real allocators scatter hot
    /// data with *binomial* per-set pressure, and it is exactly the lumps
    /// in that distribution that make direct-mapped page caches conflict
    /// (§III-A.5). An affine permutation would spread ranks too evenly
    /// and underrepresent conflicts. Occasional rank collisions (two
    /// ranks sharing a region) are harmless popularity jitter.
    fn place_region(&self, index: u64) -> u64 {
        let n = self.spec.region_count();
        let x = (index % n)
            .wrapping_mul(self.perm_mult)
            .wrapping_add(self.perm_add);
        // SplitMix64 finalizer.
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % n
    }

    fn start_visit(&mut self) -> Visit {
        let spec = &self.spec;
        let hot = spec.hot_region_count();
        let streaming = self.rng.gen::<f64>() < spec.stream_fraction && spec.region_count() > hot;
        let region_index = if streaming {
            // Streaming: march through the cold portion of the space.
            let cold = spec.region_count() - hot;
            let idx = hot + (self.stream_cursor % cold);
            self.stream_cursor += 1;
            idx
        } else {
            self.region_zipf.sample(&mut self.rng)
        };
        let region = self.place_region(region_index);

        // A region is owned by its accessor function: data structures are
        // touched by their own code, which is what makes footprints
        // predictable. A region-seeded RNG keeps the choice deterministic
        // per region while preserving the Zipf popularity of functions.
        // Streaming regions map the popularity rank to the *tail* of the
        // library, so scan code has its own (mostly-missing) PCs — which
        // is what makes Alloy's PC-indexed miss predictor effective.
        let mut region_rng = SmallRng::seed_from_u64(region.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let affine = self.rng.gen::<f64>() < spec.fn_region_affinity;
        let fn_idx = {
            let rank = if affine {
                self.fn_zipf.sample(&mut region_rng)
            } else {
                self.fn_zipf.sample(&mut self.rng)
            };
            if streaming {
                self.functions.len() as u64 - 1 - rank
            } else {
                rank
            }
        };
        let f = &self.functions[fn_idx as usize];
        let offset = if affine {
            f.offsets[region_rng.gen_range(0..f.offsets.len())]
        } else {
            f.offsets[self.rng.gen_range(0..f.offsets.len())]
        };
        let mut mask = f.mask_at(offset);
        // Dense scans continue across consecutive regions.
        let scan_left = if matches!(f.class, crate::profile::PatternClass::Dense { .. })
            && spec.scan_span > 0
        {
            self.rng.gen_range(0..=spec.scan_span)
        } else {
            0
        };

        // Per-visit noise: drop pattern blocks with probability
        // `pattern_noise`, and (rarely) touch a stray block. Additions are
        // kept much rarer than drops because a resident page's observed
        // footprint is the *union* over all its visits — symmetric
        // additions would accumulate into trained footprints across a
        // residency and destroy predictability far in excess of the
        // per-visit noise level. The trigger block is never dropped.
        let noise = spec.pattern_noise;
        if noise > 0.0 {
            let density = f64::from(mask.count_ones()) / f64::from(REGION_BLOCKS);
            let add_p = noise * density * 0.2;
            for b in 0..REGION_BLOCKS {
                let bit = 1u64 << b;
                if b == u32::from(offset) {
                    continue;
                }
                if mask & bit != 0 {
                    if self.rng.gen::<f64>() < noise {
                        mask &= !bit;
                    }
                } else if self.rng.gen::<f64>() < add_p {
                    mask |= bit;
                }
            }
        }

        Visit {
            region,
            pc: f.pc,
            remaining: mask,
            trigger: offset,
            trigger_done: false,
            scan_left,
        }
    }

    fn emit(&mut self, core: usize) -> TraceRecord {
        // Take (or refresh) the core's active visit.
        if self.cores[core].visit.is_none() {
            let v = self.start_visit();
            self.cores[core].visit = Some(v);
        }
        let spec_write = self.spec.write_fraction;
        let mean_igap = f64::from(self.spec.mean_igap);
        let u: f64 = self.rng.gen();
        let igap = (1.0 - u).ln().mul_add(-mean_igap, 1.0) as u32;
        let is_write = self.rng.gen::<f64>() < spec_write;

        let visit = self.cores[core].visit.as_mut().expect("visit just ensured");
        let block = if !visit.trigger_done {
            visit.trigger_done = true;
            visit.remaining &= !(1u64 << visit.trigger);
            u32::from(visit.trigger)
        } else {
            let b = visit.remaining.trailing_zeros();
            visit.remaining &= !(1u64 << b);
            b
        };
        let addr = visit.region * REGION_BYTES + u64::from(block) * crate::record::BLOCK_BYTES;
        let rec = TraceRecord {
            core: core as u8,
            kind: if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            pc: visit.pc,
            addr,
            igap: igap.max(1),
        };
        if visit.remaining == 0 {
            if visit.scan_left > 0 {
                // The scan rolls into the physically next region, covering
                // it densely from block 0.
                let next = (visit.region + 1) % self.spec.region_count();
                let scan_left = visit.scan_left - 1;
                let pc = visit.pc;
                self.cores[core].visit = Some(Visit {
                    region: next,
                    pc,
                    remaining: u64::MAX,
                    trigger: 0,
                    trigger_done: false,
                    scan_left,
                });
            } else {
                self.cores[core].visit = None;
            }
        }
        rec
    }
}

impl Iterator for WorkloadGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Rotate through cores with random skips so per-core streams stay
        // ordered but globally interleave irregularly.
        let n = self.cores.len();
        let hop = self.rng.gen_range(1..=3usize);
        self.rr_next = (self.rr_next + hop) % n;
        Some(self.emit(self.rr_next))
    }
}

/// Finds a multiplier near `start` that is coprime to `n`.
fn coprime_near(n: u64, start: u64) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    if n <= 1 {
        return 1;
    }
    let mut c = start.max(1) | 1; // odd candidates first
    loop {
        if gcd(c % n, n) == 1 && !c.is_multiple_of(n) {
            return c % n;
        }
        c += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use std::collections::HashMap;

    #[test]
    fn coprime_near_finds_coprime() {
        for n in [10u64, 12, 17, 1024, 999_983, 50_331_648] {
            let c = coprime_near(n, (n as f64 * 0.618) as u64);
            let mut a = n;
            let mut b = c;
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            assert_eq!(a, 1, "gcd({n}, {c}) != 1");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = WorkloadGen::new(workloads::tpch(), 9).take(5000).collect();
        let b: Vec<_> = WorkloadGen::new(workloads::tpch(), 9).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = WorkloadGen::new(workloads::web_search(), 1)
            .take(100)
            .collect();
        let b: Vec<_> = WorkloadGen::new(workloads::web_search(), 2)
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn addresses_stay_inside_footprint() {
        let spec = workloads::data_serving();
        let limit = spec.mem_footprint_bytes;
        for r in WorkloadGen::new(spec, 3).take(20_000) {
            assert!(r.addr < limit);
        }
    }

    #[test]
    fn all_cores_participate() {
        let spec = workloads::web_serving();
        let cores = spec.cores;
        let mut seen = vec![false; cores as usize];
        for r in WorkloadGen::new(spec, 4).take(5_000) {
            seen[r.core as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some cores never issued: {seen:?}");
    }

    #[test]
    fn per_core_visits_touch_their_region_contiguously() {
        // Each core's consecutive records should frequently share a region
        // (spatial locality): group by core and count region runs.
        let spec = workloads::web_search();
        let mut last_region: HashMap<u8, u64> = HashMap::new();
        let mut same = 0u64;
        let mut total = 0u64;
        for r in WorkloadGen::new(spec, 5).take(50_000) {
            let region = r.addr / REGION_BYTES;
            if let Some(&prev) = last_region.get(&r.core) {
                total += 1;
                if prev == region {
                    same += 1;
                }
            }
            last_region.insert(r.core, region);
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.5, "expected spatial runs, got {frac:.2}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = workloads::data_serving();
        let want = spec.write_fraction;
        let n = 100_000;
        let writes = WorkloadGen::new(spec, 6)
            .take(n)
            .filter(|r| r.kind.is_write())
            .count();
        let got = writes as f64 / n as f64;
        assert!((got - want).abs() < 0.02, "write fraction {got} vs {want}");
    }

    #[test]
    fn igap_mean_is_respected() {
        let spec = workloads::tpch();
        let want = f64::from(spec.mean_igap);
        let n = 100_000;
        let sum: u64 = WorkloadGen::new(spec, 8)
            .take(n)
            .map(|r| u64::from(r.igap))
            .sum();
        let got = sum as f64 / n as f64;
        assert!(
            (got - want).abs() / want < 0.05,
            "igap mean {got} vs {want}"
        );
    }

    #[test]
    fn hot_regions_recur() {
        // With Zipf reuse, some regions must appear many times.
        let spec = workloads::data_serving();
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for r in WorkloadGen::new(spec, 10).take(100_000) {
            *counts.entry(r.addr / REGION_BYTES).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 50, "expected recurring hot regions, max count {max}");
    }
}
