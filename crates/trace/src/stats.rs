//! Trace-level statistics used to validate generator calibration.

use std::collections::HashMap;

use crate::profile::{REGION_BLOCKS, REGION_BYTES};
use crate::record::TraceRecord;

/// Summary statistics of a trace sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Records analyzed.
    pub records: u64,
    /// Distinct 64 B blocks touched.
    pub unique_blocks: u64,
    /// Distinct 4 KB regions touched.
    pub unique_regions: u64,
    /// Fraction of write accesses.
    pub write_fraction: f64,
    /// Mean instruction gap.
    pub mean_igap: f64,
    /// Mean blocks touched per region (spatial density over the sample).
    pub blocks_per_region: f64,
    /// Fraction of regions with exactly one touched block (singletons).
    pub singleton_region_fraction: f64,
    /// Fraction of accesses going to the top 10% most-touched regions
    /// (reuse skew).
    pub top_decile_access_share: f64,
}

/// Computes [`TraceStats`] over an iterator of records.
///
/// # Example
///
/// ```
/// use unison_trace::{stats, workloads, WorkloadGen};
///
/// let gen = WorkloadGen::new(workloads::web_search(), 1).take(20_000);
/// let s = stats::analyze(gen);
/// assert!(s.blocks_per_region > 4.0); // web search is spatially dense
/// ```
pub fn analyze<I: IntoIterator<Item = TraceRecord>>(records: I) -> TraceStats {
    let mut n = 0u64;
    let mut writes = 0u64;
    let mut igap_sum = 0u64;
    let mut region_touch: HashMap<u64, (u64, u64)> = HashMap::new(); // region -> (block mask, access count)
    for r in records {
        n += 1;
        if r.kind.is_write() {
            writes += 1;
        }
        igap_sum += u64::from(r.igap);
        let region = r.addr / REGION_BYTES;
        let block = ((r.addr % REGION_BYTES) / crate::record::BLOCK_BYTES) as u32;
        let e = region_touch.entry(region).or_insert((0, 0));
        e.0 |= 1u64 << block.min(REGION_BLOCKS - 1);
        e.1 += 1;
    }
    let unique_regions = region_touch.len() as u64;
    let unique_blocks: u64 = region_touch
        .values()
        .map(|(m, _)| u64::from(m.count_ones()))
        .sum();
    let singletons = region_touch
        .values()
        .filter(|(m, _)| m.count_ones() == 1)
        .count() as u64;

    let mut access_counts: Vec<u64> = region_touch.values().map(|(_, c)| *c).collect();
    access_counts.sort_unstable_by(|a, b| b.cmp(a));
    let decile = (access_counts.len() / 10).max(1);
    let top: u64 = access_counts.iter().take(decile).sum();

    TraceStats {
        records: n,
        unique_blocks,
        unique_regions,
        write_fraction: if n > 0 { writes as f64 / n as f64 } else { 0.0 },
        mean_igap: if n > 0 {
            igap_sum as f64 / n as f64
        } else {
            0.0
        },
        blocks_per_region: if unique_regions > 0 {
            unique_blocks as f64 / unique_regions as f64
        } else {
            0.0
        },
        singleton_region_fraction: if unique_regions > 0 {
            singletons as f64 / unique_regions as f64
        } else {
            0.0
        },
        top_decile_access_share: if n > 0 { top as f64 / n as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use crate::WorkloadGen;

    fn sample(spec: crate::WorkloadSpec) -> TraceStats {
        analyze(WorkloadGen::new(spec, 42).take(60_000))
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = analyze(std::iter::empty());
        assert_eq!(s.records, 0);
        assert_eq!(s.unique_blocks, 0);
        assert_eq!(s.write_fraction, 0.0);
    }

    #[test]
    fn web_search_denser_than_data_analytics() {
        let ws = sample(workloads::web_search());
        let da = sample(workloads::data_analytics());
        assert!(
            ws.blocks_per_region > da.blocks_per_region,
            "web search {:.2} should out-dense data analytics {:.2}",
            ws.blocks_per_region,
            da.blocks_per_region
        );
    }

    #[test]
    fn data_analytics_has_more_singletons() {
        let ws = sample(workloads::web_search());
        let da = sample(workloads::data_analytics());
        assert!(da.singleton_region_fraction > ws.singleton_region_fraction);
    }

    #[test]
    fn data_serving_reuse_is_skewed() {
        let ds = sample(workloads::data_serving());
        assert!(
            ds.top_decile_access_share > 0.3,
            "zipf reuse should concentrate accesses, got {:.2}",
            ds.top_decile_access_share
        );
    }

    #[test]
    fn tpch_streams_more_unique_data_than_data_serving() {
        // TPC-H's scan-heavy profile touches more distinct memory per
        // access than the reuse-heavy key-value workload.
        let t = sample(workloads::tpch());
        let ds = sample(workloads::data_serving());
        assert!(
            t.unique_blocks > ds.unique_blocks,
            "tpch {} vs data serving {}",
            t.unique_blocks,
            ds.unique_blocks
        );
        assert!(t.top_decile_access_share < ds.top_decile_access_share);
    }
}
