//! Workload specification: every knob of the synthetic trace engine.

use serde::{Deserialize, Serialize};

use crate::profile::ProfileMix;

/// Full parameterization of one synthetic workload.
///
/// The six presets in [`crate::workloads`] fill these fields to mimic the
/// CloudSuite/TPC-H behaviours the paper reports; see DESIGN.md §4 for the
/// calibration targets each knob serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name (matches the paper's workload names).
    pub name: &'static str,
    /// Total bytes of distinct memory the workload can touch.
    pub mem_footprint_bytes: u64,
    /// Fraction of regions belonging to the recurring ("hot") set; the
    /// rest are touched by the streaming component.
    pub hot_fraction: f64,
    /// Zipf skew over the hot regions (0 = uniform).
    pub zipf_theta: f64,
    /// Probability that a visit targets a fresh streaming region instead
    /// of a hot one. Streaming visits defeat any cache and set the miss
    /// ratio floor.
    pub stream_fraction: f64,
    /// Number of synthetic functions (distinct PCs) in the library.
    pub n_functions: usize,
    /// Zipf skew over functions (a few functions dominate, as in real
    /// server software).
    pub fn_zipf_theta: f64,
    /// Pattern-class weights for the function library.
    pub profile_mix: ProfileMix,
    /// Probability that a visit to a hot region uses the region's *own*
    /// accessor function (and alignment) rather than a random one. Real
    /// data structures are touched by their accessor code, which is what
    /// makes per-page footprints stable enough to predict; the remainder
    /// models shared/OS code touching arbitrary data.
    pub fn_region_affinity: f64,
    /// Probability that any given block of a visit's pattern is
    /// perturbed (dropped, or an extra block added). This is the direct
    /// knob for footprint-predictor accuracy (Table V).
    pub pattern_noise: f64,
    /// Distinct start-offset alignments per function.
    pub offset_entropy: u32,
    /// Maximum number of *additional* consecutive regions a dense-scan
    /// visit continues into (uniformly drawn per visit). Real scans run
    /// for megabytes, which is why page-based caches see so many fully
    /// covered pages; 0 confines every visit to one region.
    pub scan_span: u32,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Mean instructions between post-L2 accesses, per core (memory
    /// intensity; lower = more memory-bound).
    pub mean_igap: u32,
    /// Number of cores issuing the trace (16 in the paper).
    pub cores: u32,
}

impl WorkloadSpec {
    /// Number of 4 KB regions in the address space.
    pub fn region_count(&self) -> u64 {
        (self.mem_footprint_bytes / crate::profile::REGION_BYTES).max(1)
    }

    /// Number of regions in the hot set.
    pub fn hot_region_count(&self) -> u64 {
        ((self.region_count() as f64 * self.hot_fraction) as u64).max(1)
    }

    /// Scales the workload's address-space footprint down by `factor`,
    /// keeping every ratio knob unchanged. Used together with equally
    /// scaled cache sizes for fast bench runs: miss-ratio *shapes* are
    /// preserved because both the cache and the working set shrink.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        self.mem_footprint_bytes =
            (self.mem_footprint_bytes / factor).max(crate::profile::REGION_BYTES * 64);
        self
    }

    /// Validates knob ranges, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any probability knob is outside `[0, 1]`, the
    /// core count is zero, or the function library is empty.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("hot_fraction", self.hot_fraction),
            ("stream_fraction", self.stream_fraction),
            ("pattern_noise", self.pattern_noise),
            ("write_fraction", self.write_fraction),
            ("fn_region_affinity", self.fn_region_affinity),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        if self.n_functions == 0 {
            return Err("n_functions must be positive".into());
        }
        if self.mean_igap == 0 {
            return Err("mean_igap must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::workloads;

    #[test]
    fn presets_validate() {
        for w in workloads::all() {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn region_count_matches_footprint() {
        let w = workloads::web_search();
        assert_eq!(
            w.region_count(),
            w.mem_footprint_bytes / crate::profile::REGION_BYTES
        );
    }

    #[test]
    fn scaled_shrinks_footprint_only() {
        let w = workloads::tpch();
        let s = w.clone().scaled(8);
        assert_eq!(s.mem_footprint_bytes, w.mem_footprint_bytes / 8);
        assert_eq!(s.zipf_theta, w.zipf_theta);
        assert_eq!(s.cores, w.cores);
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut w = workloads::web_serving();
        w.write_fraction = 1.5;
        assert!(w.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_zero_panics() {
        let _ = workloads::tpch().scaled(0);
    }
}
