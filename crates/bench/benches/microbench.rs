//! Criterion microbenchmarks for the hot paths of the simulator stack:
//! predictor operations, the DRAM timing engine, each cache design's
//! access path, and trace generation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use unison_core::meta::reference::NaiveStore;
use unison_core::{
    AlloyCache, AlloyConfig, DramCacheModel, FootprintCache, FootprintConfig, MemPorts, MetaStore,
    PageMeta, Replacement, Request, UnisonCache, UnisonConfig,
};
use unison_dram::{DramConfig, DramModel, Location, Op, RouteMap, RowCol};
use unison_predictors::{Footprint, FootprintTable, MissPredictor, WayPredictor};
use unison_trace::{workloads, TraceArtifact, WorkloadGen};

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.bench_function("footprint_table_predict", |b| {
        let mut t = FootprintTable::paper_default(15);
        for i in 0..1000u64 {
            t.train(i, (i % 15) as u32, Footprint::from_mask(i, 15));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(t.predict(i % 1000, (i % 15) as u32))
        });
    });
    g.bench_function("footprint_table_train", |b| {
        let mut t = FootprintTable::paper_default(15);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.train(i % 4096, (i % 15) as u32, Footprint::from_mask(i, 15));
        });
    });
    g.bench_function("way_predictor", |b| {
        let mut wp = WayPredictor::new(12, 4);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let w = wp.predict(i % 10_000);
            wp.update(i % 10_000, (i % 4) as u32);
            black_box(w)
        });
    });
    g.bench_function("miss_predictor", |b| {
        let mut mp = MissPredictor::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let p = mp.predict((i % 16) as u32, i % 997);
            mp.update((i % 16) as u32, i % 997, i.is_multiple_of(3));
            black_box(p)
        });
    });
    g.finish();
}

/// Sets/ways geometry of the metadata-walk benchmarks: a 1 GB Unison
/// cache's worth of sets at the paper's 4-way associativity.
const META_SETS: u64 = 1 << 18;
const META_WAYS: u32 = 4;

fn fill_meta_stores() -> (MetaStore, NaiveStore) {
    let mut soa = MetaStore::paged(META_SETS, META_WAYS, Replacement::AgingLru);
    let mut naive = NaiveStore::paged(META_SETS, META_WAYS, Replacement::AgingLru);
    for set in 0..META_SETS {
        for w in 0..META_WAYS {
            let meta = PageMeta {
                tag: u64::from(w) * 3 + (set % 5),
                present: 0x7ff,
                demanded: 0x0f1,
                dirty: 0x011,
                predicted: 0x7ff,
                pc: 0x400 + set,
                offset: (set % 15) as u8,
            };
            soa.install(set, w, meta);
            naive.install(set, w, meta);
            soa.touch(set, w, 0);
            naive.touch(set, w, 0);
        }
    }
    (soa, naive)
}

/// A stride that visits sets in cache-hostile pseudo-random order — the
/// set-index stream a real trace produces is similarly scattered.
fn meta_walk_set(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % META_SETS
}

/// The SoA probe/touch path against the pre-refactor nested-Vec walk:
/// the per-access hot loop of every simulation. Compare the two
/// `probe_touch` lines directly; the SoA line must not be slower (the
/// equivalence suite's `--include-ignored` perf test asserts this).
fn bench_meta(c: &mut Criterion) {
    let mut g = c.benchmark_group("meta");
    g.throughput(Throughput::Elements(1));
    let (mut soa, mut naive) = fill_meta_stores();
    g.bench_function("probe_touch_soa", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let set = meta_walk_set(i);
            let found = soa.probe_set(set, i % 16);
            if let Some(w) = found {
                soa.touch(set, w, 0);
            }
            black_box(found)
        });
    });
    g.bench_function("probe_touch_naive", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let set = meta_walk_set(i);
            let found = naive.probe_set(set, i % 16);
            if let Some(w) = found {
                naive.touch(set, w, 0);
            }
            black_box(found)
        });
    });
    g.bench_function("victim_scan_soa", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(soa.evict_victim(meta_walk_set(i)))
        });
    });
    g.bench_function("victim_scan_naive", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(naive.evict_victim(meta_walk_set(i)))
        });
    });
    g.finish();
}

/// A [`MetaStore`] with every way of every set installed — the
/// steady-state geometry the SIMD kernels scan.
fn filled_store(sets: u64, ways: u32) -> MetaStore {
    let mut store = MetaStore::paged(sets, ways, Replacement::AgingLru);
    for set in 0..sets {
        for w in 0..ways {
            store.install(
                set,
                w,
                PageMeta {
                    tag: u64::from(w) * 3 + (set % 5),
                    present: 0x7ff,
                    ..PageMeta::default()
                },
            );
            store.touch(set, w, 0);
        }
    }
    store
}

/// The vectorized (lane-parallel SWAR) metadata kernels against their
/// retained scalar references, at the paper-default 4-way geometry and
/// a wide 32-way one where lane parallelism matters most. The scalar
/// lines are the pre-vectorization loops kept as `*_scalar`; the
/// equivalence suite's nightly ratio assertion
/// (`vectorized_probe_beats_scalar_reference`) pins the win.
fn bench_meta_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("meta_simd");
    g.throughput(Throughput::Elements(1));
    for (ways, sets) in [(META_WAYS, META_SETS), (32u32, 1u64 << 14)] {
        let walk = move |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % sets;
        g.bench_function(&format!("probe_vectorized_{ways}way"), |b| {
            let store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(store.probe_set(walk(i), i % 64))
            });
        });
        g.bench_function(&format!("probe_scalar_{ways}way"), |b| {
            let store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(store.probe_set_scalar(walk(i), i % 64))
            });
        });
        g.bench_function(&format!("touch_vectorized_{ways}way"), |b| {
            let mut store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                store.touch(walk(i), (i % u64::from(ways)) as u32, 0);
            });
        });
        g.bench_function(&format!("touch_scalar_{ways}way"), |b| {
            let mut store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                store.touch_scalar(walk(i), (i % u64::from(ways)) as u32, 0);
            });
        });
        g.bench_function(&format!("victim_vectorized_{ways}way"), |b| {
            let store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(store.evict_victim(walk(i)))
            });
        });
        g.bench_function(&format!("victim_scalar_{ways}way"), |b| {
            let store = filled_store(sets, ways);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(store.evict_victim_scalar(walk(i)))
            });
        });
    }
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("stacked_access", |b| {
        let mut d = DramModel::new(DramConfig::stacked());
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            now += 1000;
            black_box(d.access(
                now,
                Op::Read,
                RowCol::new(i % 4096, ((i * 64) % 8128) as u32),
                64,
            ))
        });
    });
    g.finish();
}

/// The table-driven DRAM access fast path against the retained
/// div/mod + multiply reference, on the routing walk alone and on full
/// accesses in the two regimes that matter: pure row hits (the campaign
/// common case the tables optimize for) and a row-conflict mix (the
/// ACT/PRE slow path). The nightly equivalence assertion
/// (`fast_access_beats_reference_on_row_hits` in
/// `crates/dram/tests/model_properties.rs`) pins the row-hit win ≥1.15×.
fn bench_dram_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_access");
    g.throughput(Throughput::Elements(1));

    // Routing alone: shift/mask RouteMap vs div/mod Location::route.
    // black_box the config so the reference's divisors stay runtime
    // values, as they are in campaign use.
    let cfg = black_box(DramConfig::stacked());
    let map = RouteMap::try_new(&cfg).expect("stacked geometry is pow2");
    g.bench_function("route_fast", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(map.flat(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20))
        });
    });
    g.bench_function("route_reference", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let loc = Location::route(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20, &cfg);
            black_box((
                loc.channel as usize,
                loc.flat_rank(&cfg),
                loc.flat_bank(&cfg),
            ))
        });
    });

    // Full accesses. Stacked has 32 banks total: cycling 32 rows keeps
    // every row open (pure hits); cycling 64 rows makes every bank
    // alternate between two rows (pure conflicts).
    let banks = u64::from(cfg.total_banks());
    for (label, rows) in [("row_hit", banks), ("conflict", banks * 2)] {
        g.bench_function(&format!("access_{label}_fast"), |b| {
            let mut d = DramModel::new(cfg.clone());
            let (mut now, mut i) = (0u64, 0u64);
            b.iter(|| {
                i = i.wrapping_add(1);
                now += 2_500;
                black_box(d.access(
                    now,
                    Op::Read,
                    RowCol::new(i % rows, ((i * 64) % 8192) as u32),
                    64,
                ))
            });
        });
        g.bench_function(&format!("access_{label}_reference"), |b| {
            let mut d = DramModel::new(cfg.clone());
            let (mut now, mut i) = (0u64, 0u64);
            b.iter(|| {
                i = i.wrapping_add(1);
                now += 2_500;
                black_box(d.access_reference(
                    now,
                    Op::Read,
                    RowCol::new(i % rows, ((i * 64) % 8192) as u32),
                    64,
                ))
            });
        });
    }
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    g.throughput(Throughput::Elements(1));
    let trace: Vec<Request> = WorkloadGen::new(workloads::web_serving().scaled(64), 1)
        .take(100_000)
        .map(|r| Request {
            core: r.core,
            pc: r.pc,
            addr: r.addr,
            is_write: r.kind.is_write(),
        })
        .collect();

    g.bench_function("unison", |b| {
        let mut cache = UnisonCache::new(UnisonConfig::new(64 << 20));
        let mut mem = MemPorts::paper_default();
        let mut now = 0u64;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % trace.len();
            now += 2000;
            black_box(cache.access(now, &trace[i], &mut mem))
        });
    });
    g.bench_function("alloy", |b| {
        let mut cache = AlloyCache::new(AlloyConfig::new(64 << 20));
        let mut mem = MemPorts::paper_default();
        let mut now = 0u64;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % trace.len();
            now += 2000;
            black_box(cache.access(now, &trace[i], &mut mem))
        });
    });
    g.bench_function("footprint", |b| {
        let mut cache = FootprintCache::new(FootprintConfig::new(64 << 20));
        let mut mem = MemPorts::paper_default();
        let mut now = 0u64;
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % trace.len();
            now += 2000;
            black_box(cache.access(now, &trace[i], &mut mem))
        });
    });
    g.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    // Generate vs replay, per record: the ratio is the headroom the
    // campaign trace store exploits by freezing each stream once.
    g.bench_function("workload_gen_next", |b| {
        let mut gen = WorkloadGen::new(workloads::tpch().scaled(8), 3);
        b.iter(|| black_box(gen.next()));
    });
    g.bench_function("artifact_replay_next", |b| {
        let artifact = TraceArtifact::freeze(&workloads::tpch().scaled(8), 3, 1_000_000);
        let mut replay = artifact.replay();
        b.iter(|| match replay.next() {
            Some(r) => black_box(Some(r)),
            None => {
                replay = artifact.replay(); // wrap around, stay zero-alloc
                black_box(replay.next())
            }
        });
    });
    g.bench_function("artifact_freeze_100k", |b| {
        let spec = workloads::tpch().scaled(8);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(TraceArtifact::freeze(&spec, seed, 100_000))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_meta, bench_meta_simd, bench_predictors, bench_dram, bench_dram_access, bench_caches, bench_tracegen
}
criterion_main!(benches);
