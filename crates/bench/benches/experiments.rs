//! `cargo bench` entry point that exercises every paper experiment at
//! smoke scale (scale 1/64, short traces). The real numbers for
//! EXPERIMENTS.md come from the dedicated binaries run with `--scale 8`;
//! this target exists so `cargo bench --workspace` touches the entire
//! table/figure harness and prints a one-screen digest.

use unison_sim::{run_experiment, Design, SimConfig};
use unison_trace::workloads;

fn main() {
    let cfg = SimConfig::quick_test();
    println!("== experiment smoke suite (scale 1/{}, {} accesses/run) ==", cfg.scale, cfg.accesses);
    println!("(full-scale rows: cargo run --release -p unison-bench --bin <table2|table4|table5|fig5|fig6|fig7|fig8|energy|ablation_*>)\n");

    // Figure 6/7/8 digest: one size per workload, all designs.
    println!(
        "{:<18} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", "design->", "Alloy", "Footpr", "Unison", "Ideal", "NoCache"
    );
    for w in workloads::all() {
        let size: u64 = if w.name == "TPC-H" { 8 << 30 } else { 1 << 30 };
        let base = run_experiment(Design::NoCache, 0, &w, &cfg);
        let mut miss = Vec::new();
        let mut speed = Vec::new();
        for d in [Design::Alloy, Design::Footprint, Design::Unison, Design::Ideal] {
            let r = run_experiment(d, size, &w, &cfg);
            miss.push(r.cache.miss_ratio() * 100.0);
            speed.push(r.uipc / base.uipc);
        }
        println!(
            "{:<18} {:>9} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7}",
            w.name, "miss", miss[0], miss[1], miss[2], miss[3], "100.0%"
        );
        println!(
            "{:<18} {:>9} {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x",
            "", "speedup", speed[0], speed[1], speed[2], speed[3], 1.0
        );
    }

    // Figure 5 digest: associativity sweep on one workload.
    let w = workloads::web_serving();
    print!("\nfig5 digest ({} @1GB): UC miss by assoc ", w.name);
    for assoc in [1u32, 4, 32] {
        let r = run_experiment(Design::UnisonAssoc(assoc), 1 << 30, &w, &cfg);
        print!(" {}way={:.1}%", assoc, r.cache.miss_ratio() * 100.0);
    }
    println!();
    println!("\nsmoke suite complete.");
}
