//! `cargo bench` entry point that exercises every paper experiment at
//! smoke scale (scale 1/64, short traces). The real numbers for
//! EXPERIMENTS.md come from the dedicated binaries run with `--scale 8`;
//! this target exists so `cargo bench --workspace` touches the entire
//! table/figure harness and prints a one-screen digest.
//!
//! The digest grids run through `unison_harness` exactly like the
//! binaries do, so this also smoke-tests the campaign engine end to end
//! (parallel workers, memoized baselines).

use unison_harness::{Campaign, ScenarioGrid};
use unison_sim::{Design, SimConfig};
use unison_trace::workloads;

fn main() {
    let cfg = SimConfig::quick_test();
    println!(
        "== experiment smoke suite (scale 1/{}, {} accesses/run) ==",
        cfg.scale, cfg.accesses
    );
    println!("(full-scale rows: cargo run --release -p unison-bench --bin <table2|table4|table5|fig5|fig6|fig7|fig8|energy|sweep|ablation_*>)\n");

    let campaign = Campaign::new(cfg);
    let designs = [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Ideal,
    ];

    // Figure 6/7/8 digest: one size per workload, all designs.
    let grid = unison_bench::table5_grid(designs);
    let results = campaign.run_speedups(&grid);

    println!(
        "{:<18} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", "design->", "Alloy", "Footpr", "Unison", "Ideal", "NoCache"
    );
    for w in workloads::all() {
        let size = unison_bench::table5_size(w.name);
        let cell = |d: Design| results.get(w.name, &d.name(), size).expect("digest cell");
        let miss: Vec<f64> = designs
            .iter()
            .map(|&d| cell(d).run.cache.miss_ratio() * 100.0)
            .collect();
        let speed: Vec<f64> = designs
            .iter()
            .map(|&d| cell(d).speedup.expect("speedup campaign"))
            .collect();
        println!(
            "{:<18} {:>9} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>7}",
            w.name, "miss", miss[0], miss[1], miss[2], miss[3], "100.0%"
        );
        println!(
            "{:<18} {:>9} {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x",
            "", "speedup", speed[0], speed[1], speed[2], speed[3], 1.0
        );
    }
    println!(
        "(baselines: {} simulated for {} cells, {} memo hits)",
        results.baseline_runs,
        results.cells().len(),
        results.baseline_hits
    );

    // Figure 5 digest: associativity sweep on one workload.
    let w = workloads::web_serving();
    let assoc_grid = ScenarioGrid::new()
        .designs([1u32, 4, 32].map(Design::UnisonAssoc))
        .workload(w.clone())
        .sizes([1 << 30]);
    let assoc = campaign.run(&assoc_grid);
    print!("\nfig5 digest ({} @1GB): UC miss by assoc ", w.name);
    for a in [1u32, 4, 32] {
        let r = assoc
            .get(w.name, &Design::UnisonAssoc(a).name(), 1 << 30)
            .expect("assoc cell");
        print!(" {}way={:.1}%", a, r.run.cache.miss_ratio() * 100.0);
    }
    println!();
    println!("\nsmoke suite complete.");
}
