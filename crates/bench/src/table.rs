//! Plain-text table rendering for paper-style output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut s = String::new();
            for (i, &w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:<w$}"));
            }
            s.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a speedup with two decimals.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a byte count as a human-readable cache size label.
pub fn size_label(bytes: u64) -> String {
    const GB: u64 = 1 << 30;
    const MB: u64 = 1 << 20;
    if bytes >= GB {
        format!("{}GB", bytes / GB)
    } else {
        format!("{}MB", bytes / MB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["x"]);
        t.row(["1", "2", "3"]);
        assert!(t.render().contains("3"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(128 << 20), "128MB");
        assert_eq!(size_label(8 << 30), "8GB");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.937), "93.7");
        assert_eq!(speedup(1.234), "1.23");
    }
}
