//! Figure 5: Unison Cache miss ratio as a function of associativity
//! (1-way / 4-way / 32-way), at a small and a large cache size per
//! workload (128 MB and 1 GB; 1 GB and 8 GB for TPC-H).

use serde::Serialize;
use unison_bench::table::{pct, size_label};
use unison_bench::{BenchOpts, Table};
use unison_sim::{run_experiment, Design};
use unison_trace::workloads;

#[derive(Serialize)]
struct Point {
    workload: String,
    cache_bytes: u64,
    assoc: u32,
    miss_ratio: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 5: Unison Cache miss ratio vs associativity (960B pages)");

    let mut points = Vec::new();
    let mut t = Table::new(["Workload", "Size", "1-way", "4-way", "32-way", "4-way gain"]);
    for w in workloads::all() {
        let sizes: [u64; 2] = if w.name == "TPC-H" {
            [1 << 30, 8 << 30]
        } else {
            [128 << 20, 1 << 30]
        };
        for size in sizes {
            let mut ratios = Vec::new();
            for assoc in [1u32, 4, 32] {
                let r = run_experiment(Design::UnisonAssoc(assoc), size, &w, &opts.cfg);
                ratios.push(r.cache.miss_ratio());
                points.push(Point {
                    workload: w.name.to_string(),
                    cache_bytes: size,
                    assoc,
                    miss_ratio: r.cache.miss_ratio(),
                });
            }
            t.row([
                w.name.to_string(),
                size_label(size),
                pct(ratios[0]),
                pct(ratios[1]),
                pct(ratios[2]),
                format!("{:.2}x", ratios[0] / ratios[1].max(1e-9)),
            ]);
            eprintln!("  ({} {} done)", w.name, size_label(size));
        }
    }
    t.print();
    println!("\npaper shape: 4-way cuts the direct-mapped miss ratio substantially (up to >2x);");
    println!("             32-way adds little beyond 4-way (paper: 'no significant reduction').");

    opts.maybe_dump_json(&points);
}
