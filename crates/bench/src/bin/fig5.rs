//! Figure 5: Unison Cache miss ratio as a function of associativity
//! (1-way / 4-way / 32-way), at a small and a large cache size per
//! workload (128 MB and 1 GB; 1 GB and 8 GB for TPC-H).

use serde::Serialize;
use unison_bench::table::{pct, size_label};
use unison_bench::{BenchOpts, Table};
use unison_harness::ScenarioGrid;
use unison_sim::Design;
use unison_trace::workloads;

const ASSOCS: [u32; 3] = [1, 4, 32];

#[derive(Serialize)]
struct Point {
    workload: String,
    cache_bytes: u64,
    assoc: u32,
    miss_ratio: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 5: Unison Cache miss ratio vs associativity (960B pages)");

    let grid = ScenarioGrid::new()
        .designs(ASSOCS.map(Design::UnisonAssoc))
        .workloads(workloads::all())
        .sizes([128 << 20, 1 << 30])
        .sizes_for("TPC-H", [1 << 30, 8u64 << 30]);
    let results = opts.campaign().run(&grid);

    let mut points = Vec::new();
    let mut t = Table::new(["Workload", "Size", "1-way", "4-way", "32-way", "4-way gain"]);
    for w in workloads::all() {
        for &size in grid.sizes_of(w.name) {
            let ratios: Vec<f64> = ASSOCS
                .iter()
                .map(|&assoc| {
                    let cell = results
                        .get(w.name, &Design::UnisonAssoc(assoc).name(), size)
                        .expect("grid cell present");
                    let miss = cell.run.cache.miss_ratio();
                    points.push(Point {
                        workload: w.name.to_string(),
                        cache_bytes: size,
                        assoc,
                        miss_ratio: miss,
                    });
                    miss
                })
                .collect();
            t.row([
                w.name.to_string(),
                size_label(size),
                pct(ratios[0]),
                pct(ratios[1]),
                pct(ratios[2]),
                format!("{:.2}x", ratios[0] / ratios[1].max(1e-9)),
            ]);
        }
    }
    t.print();
    println!("\npaper shape: 4-way cuts the direct-mapped miss ratio substantially (up to >2x);");
    println!("             32-way adds little beyond 4-way (paper: 'no significant reduction').");

    opts.maybe_dump_json(&points);
    opts.maybe_dump_csv(&results);
}
