//! Ablation (§IV-C.1, Table V context): Unison Cache page size —
//! 960 B (15 blocks) vs 1984 B (31 blocks).
//!
//! The paper finds 960 B pages give better footprint accuracy on average
//! (and Footprint Cache cannot afford that granularity because its SRAM
//! tag array would double — Unison's in-DRAM tags make it free).

use serde::Serialize;
use unison_bench::table::{pct, speedup};
use unison_bench::{table5_grid, table5_size, BenchOpts, Table};
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Row {
    workload: String,
    miss_960: f64,
    miss_1984: f64,
    fp_acc_960: f64,
    fp_acc_1984: f64,
    speedup_960: f64,
    speedup_1984: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Ablation: Unison Cache page size, 960B vs 1984B");

    let grid = table5_grid([Design::Unison, Design::Unison1984]);
    let results = opts.campaign().run_speedups(&grid);

    let mut rows = Vec::new();
    let mut t = Table::new([
        "Workload",
        "miss% 960B",
        "miss% 1984B",
        "FP acc% 960B",
        "FP acc% 1984B",
        "speedup 960B",
        "speedup 1984B",
    ]);
    for w in workloads::all() {
        let size = table5_size(w.name);
        let a = results
            .get(w.name, &Design::Unison.name(), size)
            .expect("grid cell present");
        let b = results
            .get(w.name, &Design::Unison1984.name(), size)
            .expect("grid cell present");
        let (sa, sb) = (a.speedup.expect("speedup"), b.speedup.expect("speedup"));
        t.row([
            w.name.to_string(),
            pct(a.run.cache.miss_ratio()),
            pct(b.run.cache.miss_ratio()),
            pct(a.run.cache.fp_accuracy()),
            pct(b.run.cache.fp_accuracy()),
            speedup(sa),
            speedup(sb),
        ]);
        rows.push(Row {
            workload: w.name.to_string(),
            miss_960: a.run.cache.miss_ratio(),
            miss_1984: b.run.cache.miss_ratio(),
            fp_acc_960: a.run.cache.fp_accuracy(),
            fp_acc_1984: b.run.cache.fp_accuracy(),
            speedup_960: sa,
            speedup_1984: sb,
        });
    }
    t.print();
    println!("\npaper shape: 960B pages predict footprints better on average; the gap is");
    println!("             largest on low-spatial-locality workloads (Data Analytics).");
    opts.maybe_dump_json(&rows);
    opts.maybe_dump_csv(&results);
}
