//! Ablation (§IV-C.1, Table V context): Unison Cache page size —
//! 960 B (15 blocks) vs 1984 B (31 blocks).
//!
//! The paper finds 960 B pages give better footprint accuracy on average
//! (and Footprint Cache cannot afford that granularity because its SRAM
//! tag array would double — Unison's in-DRAM tags make it free).

use serde::Serialize;
use unison_bench::table::{pct, speedup};
use unison_bench::{table5_size, BenchOpts, Table};
use unison_sim::{run_experiment, Design};
use unison_trace::workloads;

#[derive(Serialize)]
struct Row {
    workload: String,
    miss_960: f64,
    miss_1984: f64,
    fp_acc_960: f64,
    fp_acc_1984: f64,
    speedup_960: f64,
    speedup_1984: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Ablation: Unison Cache page size, 960B vs 1984B");

    let mut rows = Vec::new();
    let mut t = Table::new([
        "Workload",
        "miss% 960B",
        "miss% 1984B",
        "FP acc% 960B",
        "FP acc% 1984B",
        "speedup 960B",
        "speedup 1984B",
    ]);
    for w in workloads::all() {
        let size = table5_size(w.name);
        let base = run_experiment(Design::NoCache, 0, &w, &opts.cfg);
        let a = run_experiment(Design::Unison, size, &w, &opts.cfg);
        let b = run_experiment(Design::Unison1984, size, &w, &opts.cfg);
        t.row([
            w.name.to_string(),
            pct(a.cache.miss_ratio()),
            pct(b.cache.miss_ratio()),
            pct(a.cache.fp_accuracy()),
            pct(b.cache.fp_accuracy()),
            speedup(a.uipc / base.uipc),
            speedup(b.uipc / base.uipc),
        ]);
        rows.push(Row {
            workload: w.name.to_string(),
            miss_960: a.cache.miss_ratio(),
            miss_1984: b.cache.miss_ratio(),
            fp_acc_960: a.cache.fp_accuracy(),
            fp_acc_1984: b.cache.fp_accuracy(),
            speedup_960: a.uipc / base.uipc,
            speedup_1984: b.uipc / base.uipc,
        });
        eprintln!("  ({} done)", w.name);
    }
    t.print();
    println!("\npaper shape: 960B pages predict footprints better on average; the gap is");
    println!("             largest on low-spatial-locality workloads (Data Analytics).");
    opts.maybe_dump_json(&rows);
}
