//! Ablation (§III-A.5/6, §V.B): what way prediction buys Unison Cache.
//!
//! Compares the paper's predicted-way design against the two rejected
//! alternatives — fetching all ways in parallel (bandwidth) and
//! serializing tags before data (latency). The paper quantifies the win
//! as ~12 cycles of hit latency (20%) and a 4x reduction in hit traffic.

use serde::Serialize;
use unison_bench::{BenchOpts, Table};
use unison_core::unison::WayPolicy;
use unison_core::{DramCacheModel, MemPorts, UnisonCache, UnisonConfig};
use unison_sim::System;
use unison_trace::{workloads, WorkloadGen};

#[derive(Serialize)]
struct Row {
    policy: String,
    workload: String,
    mean_latency_cycles: f64,
    stacked_read_bytes_per_access: f64,
    uipc: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Ablation: Unison Cache way-location policy (1GB, 960B pages, 4-way)");

    let policies = [
        (WayPolicy::Predict, "Predict (paper)"),
        (WayPolicy::ParallelFetch, "Fetch all ways"),
        (WayPolicy::SerialTagData, "Serialize tag->data"),
    ];
    let mut rows = Vec::new();
    for w in [workloads::web_search(), workloads::data_serving()] {
        println!("-- {} --", w.name);
        let mut t = Table::new(["Policy", "mean latency (cy)", "stacked rd B/access", "UIPC"]);
        for (policy, label) in policies {
            let scaled_cache = opts.cfg.scaled_cache_bytes(1 << 30);
            let cache = UnisonCache::new(
                UnisonConfig::new(scaled_cache)
                    .with_way_policy(policy)
                    .with_nominal(1 << 30),
            );
            let mut sys = System::new(16, cache, MemPorts::paper_default(), opts.cfg.core);
            let mut trace = WorkloadGen::new(w.clone().scaled(opts.cfg.scale), opts.cfg.seed);
            let total = opts.cfg.accesses_for(scaled_cache);
            let warm = (total as f64 * opts.cfg.warmup_fraction) as u64;
            sys.run(&mut trace, warm);
            let before = sys.progress();
            sys.reset_measurement();
            sys.run(&mut trace, total - warm);
            let after = sys.progress();
            let stats = *sys.cache().stats();
            let lat_cy = stats.mean_latency_ps() * 3.0 / 1000.0;
            let rd_per_acc = stats.stacked_read_bytes as f64 / stats.accesses.max(1) as f64;
            let instr = after.instructions - before.instructions;
            let cyc = (after.elapsed_ps - before.elapsed_ps).max(1) as f64 * 3.0 / 1000.0;
            let uipc = instr as f64 / cyc;
            t.row([
                label.to_string(),
                format!("{lat_cy:.1}"),
                format!("{rd_per_acc:.1}"),
                format!("{uipc:.2}"),
            ]);
            rows.push(Row {
                policy: label.to_string(),
                workload: w.name.to_string(),
                mean_latency_cycles: lat_cy,
                stacked_read_bytes_per_access: rd_per_acc,
                uipc,
            });
        }
        t.print();
        println!();
    }
    println!("paper claims: prediction avoids ~12 cycles (serialization) and ~4x hit traffic");
    println!("              (parallel fetch of all four ways).");
    opts.maybe_dump_json(&rows);
}
