//! Ablation (§III-A.5/6, §V.B): what way prediction buys Unison Cache.
//!
//! Compares the paper's predicted-way design against the two rejected
//! alternatives — fetching all ways in parallel (bandwidth) and
//! serializing tags before data (latency). The paper quantifies the win
//! as ~12 cycles of hit latency (20%) and a 4x reduction in hit traffic.
//!
//! The cells are custom (a `WayPolicy` is not a [`unison_sim::Design`]),
//! so they run through the harness's generic parallel map rather than an
//! [`ScenarioGrid`]: declared up front, executed concurrently, rendered
//! in declaration order.

use serde::Serialize;
use unison_bench::{BenchOpts, Table};
use unison_core::unison::WayPolicy;
use unison_core::{DramCacheModel, UnisonCache, UnisonConfig};
use unison_sim::System;
use unison_trace::{workloads, WorkloadGen, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    policy: String,
    workload: String,
    mean_latency_cycles: f64,
    stacked_read_bytes_per_access: f64,
    uipc: f64,
}

const POLICIES: [(WayPolicy, &str); 3] = [
    (WayPolicy::Predict, "Predict (paper)"),
    (WayPolicy::ParallelFetch, "Fetch all ways"),
    (WayPolicy::SerialTagData, "Serialize tag->data"),
];

fn run_cell(opts: &BenchOpts, w: &WorkloadSpec, policy: WayPolicy, label: &str) -> Row {
    let scaled_cache = opts.cfg.scaled_cache_bytes(1 << 30);
    let cache = UnisonCache::new(
        UnisonConfig::new(scaled_cache)
            .with_way_policy(policy)
            .with_nominal(1 << 30),
    );
    let sys_spec = opts.cfg.system;
    let mut sys = System::new(
        sys_spec.resolved_cores(w) as usize,
        cache,
        sys_spec.mem_ports(),
        sys_spec.core,
    );
    let mut trace = WorkloadGen::new(
        sys_spec.effective_workload(w).scaled(opts.cfg.scale),
        opts.cfg.seed,
    );
    let total = opts.cfg.accesses_for(scaled_cache);
    let warm = (total as f64 * opts.cfg.warmup_fraction) as u64;
    sys.run(&mut trace, warm);
    let before = sys.progress();
    sys.reset_measurement();
    sys.run(&mut trace, total - warm);
    let after = sys.progress();
    let stats = *sys.cache().stats();
    let lat_cy = stats.mean_latency_ps() * 3.0 / 1000.0;
    let rd_per_acc = stats.stacked_read_bytes as f64 / stats.accesses.max(1) as f64;
    let instr = after.instructions - before.instructions;
    let cyc = (after.elapsed_ps - before.elapsed_ps).max(1) as f64 * 3.0 / 1000.0;
    Row {
        policy: label.to_string(),
        workload: w.name.to_string(),
        mean_latency_cycles: lat_cy,
        stacked_read_bytes_per_access: rd_per_acc,
        uipc: instr as f64 / cyc,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Ablation: Unison Cache way-location policy (1GB, 960B pages, 4-way)");

    // Declare the (workload x policy) cells, then execute in parallel.
    let specs = [workloads::web_search(), workloads::data_serving()];
    let cells: Vec<(WorkloadSpec, WayPolicy, &str)> = specs
        .iter()
        .flat_map(|w| POLICIES.map(|(p, label)| (w.clone(), p, label)))
        .collect();
    let rows = opts.campaign().map(&cells, |(w, policy, label)| {
        run_cell(&opts, w, *policy, label)
    });

    for w in &specs {
        println!("-- {} --", w.name);
        let mut t = Table::new(["Policy", "mean latency (cy)", "stacked rd B/access", "UIPC"]);
        for r in rows.iter().filter(|r| r.workload == w.name) {
            t.row([
                r.policy.clone(),
                format!("{:.1}", r.mean_latency_cycles),
                format!("{:.1}", r.stacked_read_bytes_per_access),
                format!("{:.2}", r.uipc),
            ]);
        }
        t.print();
        println!();
    }
    println!("paper claims: prediction avoids ~12 cycles (serialization) and ~4x hit traffic");
    println!("              (parallel fetch of all four ways).");
    opts.maybe_dump_json(&rows);
}
