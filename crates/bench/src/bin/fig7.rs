//! Figure 7: performance (speedup over the no-DRAM-cache baseline) of
//! Alloy, Footprint, Unison, and the Ideal cache for the five CloudSuite
//! workloads across 128 MB–1 GB, plus the geometric mean.

use serde::Serialize;
use unison_bench::table::{size_label, speedup};
use unison_bench::{BenchOpts, Table, CLOUD_SIZES};
use unison_sim::{run_experiment, Design};
use unison_trace::workloads;

#[derive(Serialize)]
struct Point {
    workload: String,
    design: String,
    cache_bytes: u64,
    speedup: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 7: speedup over no-DRAM-cache baseline (CloudSuite)");

    let designs = [Design::Alloy, Design::Footprint, Design::Unison, Design::Ideal];
    let mut points: Vec<Point> = Vec::new();

    for w in workloads::cloudsuite() {
        let base = run_experiment(Design::NoCache, 0, &w, &opts.cfg);
        let mut t = Table::new(["Design", "128MB", "256MB", "512MB", "1024MB"]);
        println!("-- {} --", w.name);
        for d in designs {
            let mut cells = vec![d.name()];
            for &size in &CLOUD_SIZES {
                let r = run_experiment(d, size, &w, &opts.cfg);
                let s = r.uipc / base.uipc;
                cells.push(speedup(s));
                points.push(Point {
                    workload: w.name.to_string(),
                    design: d.name(),
                    cache_bytes: size,
                    speedup: s,
                });
            }
            t.row(cells);
        }
        t.print();
        println!();
    }

    // Geometric mean across workloads, per design and size.
    println!("-- Geometric Mean --");
    let mut t = Table::new(["Design", "128MB", "256MB", "512MB", "1024MB"]);
    for d in designs {
        let mut cells = vec![d.name()];
        for &size in &CLOUD_SIZES {
            let vals: Vec<f64> = points
                .iter()
                .filter(|p| p.design == d.name() && p.cache_bytes == size)
                .map(|p| p.speedup)
                .collect();
            let gm = vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64;
            cells.push(speedup(gm.exp()));
        }
        t.row(cells);
    }
    t.print();
    println!("\n(sizes: {})", CLOUD_SIZES.iter().map(|&s| size_label(s)).collect::<Vec<_>>().join(", "));
    println!("paper shape: Footprint leads at small sizes; Unison catches up and overtakes as");
    println!("             size grows (FC tag latency); all below Ideal; Data Serving largest.");

    opts.maybe_dump_json(&points);
}
