//! Figure 7: performance (speedup over the no-DRAM-cache baseline) of
//! Alloy, Footprint, Unison, and the Ideal cache for the five CloudSuite
//! workloads across 128 MB–1 GB, plus the geometric mean.
//!
//! The grid is declared once and executed by the harness: independent
//! cells run in parallel and the NoCache baseline is simulated exactly
//! once per workload (not once per design×size as the old serial loop
//! risked).

use serde::Serialize;
use unison_bench::table::{size_label, speedup};
use unison_bench::{BenchOpts, Table, CLOUD_SIZES};
use unison_harness::ScenarioGrid;
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Point {
    workload: String,
    design: String,
    cache_bytes: u64,
    speedup: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 7: speedup over no-DRAM-cache baseline (CloudSuite)");

    let designs = [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Ideal,
    ];
    let grid = ScenarioGrid::new()
        .designs(designs)
        .workloads(workloads::cloudsuite())
        .sizes(CLOUD_SIZES);
    let results = opts.campaign().run_speedups(&grid);

    let mut points: Vec<Point> = Vec::new();
    for w in workloads::cloudsuite() {
        let mut t = Table::new(["Design", "128MB", "256MB", "512MB", "1024MB"]);
        println!("-- {} --", w.name);
        for d in designs {
            let mut cells = vec![d.name()];
            for &size in &CLOUD_SIZES {
                let cell = results
                    .get(w.name, &d.name(), size)
                    .expect("grid cell present");
                let s = cell.speedup.expect("speedup campaign");
                cells.push(speedup(s));
                points.push(Point {
                    workload: w.name.to_string(),
                    design: d.name(),
                    cache_bytes: size,
                    speedup: s,
                });
            }
            t.row(cells);
        }
        t.print();
        println!();
    }

    // Geometric mean across workloads, per design and size.
    println!("-- Geometric Mean --");
    let mut t = Table::new(["Design", "128MB", "256MB", "512MB", "1024MB"]);
    for d in designs {
        let mut cells = vec![d.name()];
        for &size in &CLOUD_SIZES {
            let gm = results
                .geomean_speedup(&d.name(), size)
                .expect("non-empty speedup set");
            cells.push(speedup(gm));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\n(sizes: {})",
        CLOUD_SIZES
            .iter()
            .map(|&s| size_label(s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "(baselines: {} simulated, {} served from the memo cache)",
        results.baseline_runs, results.baseline_hits
    );
    println!("paper shape: Footprint leads at small sizes; Unison catches up and overtakes as");
    println!("             size grows (FC tag latency); all below Ideal; Data Serving largest.");

    opts.maybe_dump_json(&points);
    opts.maybe_dump_csv(&results);
}
