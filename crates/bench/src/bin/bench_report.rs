//! `bench-report`: roll the repo's performance story into one
//! machine-readable JSON artifact.
//!
//! ```sh
//! cargo run --release -p unison-bench --bin bench-report -- \
//!     --label v6 --scale 16 --threads 8
//! ```
//!
//! The report combines two views of the same codebase:
//!
//! * **Microbenchmarks** — wall-clock nanoseconds per operation for the
//!   hot paths the criterion suite tracks interactively: the SoA
//!   metadata probe/touch walk, trace-artifact replay, and raw workload
//!   generation. These are quick inline loops (not criterion), sized to
//!   settle in well under a second each.
//! * **Campaign timing** — a small headline campaign (four designs, two
//!   workloads, 512 MB) run under the harness telemetry layer: phase
//!   breakdown, per-design mean cell time and throughput, and the
//!   geomean speedups the cells produced (so a perf regression that
//!   changes *results* is visible next to one that changes *speed*).
//!
//! The campaign runs under cost-model LPT scheduling (longest cells
//! first, ordered by the structural prior) and the report's
//! `scheduling` block compares the blind `key % N` shard split against
//! the cost-balanced partition on the measured cell times.
//!
//! The output lands in `BENCH_<label>.json` (override with `--out`).
//! Checked-in snapshots of this file form the repo's perf trajectory:
//! compare two snapshots field-by-field to see what a change cost —
//! the report prints headline deltas against the previous snapshot
//! (the existing `--out` file, or `BENCH_v<n-1>.json` for `v<n>`
//! labels) when one is present. Timings are wall-clock and
//! machine-dependent — compare snapshots from the same machine class,
//! or lean on the dimensionless ratios.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Serialize, Value};
use unison_bench::{BenchOpts, Table};
use unison_core::{MetaStore, PageMeta, Replacement};
use unison_harness::costs::{bin_loads, imbalance_ratio};
use unison_harness::telemetry::fmt_ns;
use unison_harness::{stats, CostModel, ScenarioGrid, TaskPlan};
use unison_sim::Design;
use unison_trace::{workloads, TraceArtifact, WorkloadGen};

/// Bumped when the report layout changes shape (fields added are not a
/// bump; fields renamed or reinterpreted are). v2: campaign
/// `cells_per_sec` switched denominators from end-to-end wall time to
/// the cells phase alone (making it comparable with the per-design
/// rates, which were already cell-time-based); the old end-to-end view
/// moved to the new `cells_per_sec_end_to_end`. v3: campaign timings
/// are now measured under cost-model LPT scheduling (structural prior,
/// longest cells first) instead of grid order — timing fields are not
/// comparable with v2 snapshots — and the new `campaign.scheduling`
/// block records how the measured cell costs would split across shard
/// workers (blind key-hash vs balanced LPT partition). v4: new
/// `microbench.calibration_ns` machine-speed reference (a fixed-work
/// integer loop, independent of any simulator code); snapshots whose
/// calibrations differ by more than ~10% ran on differently-clocked
/// machines and their wall-clock deltas are not comparable.
const SCHEMA_VERSION: u32 = 4;

/// The complete report document (`BENCH_<label>.json`).
#[derive(Debug, Serialize)]
struct BenchReport {
    schema_version: u32,
    label: String,
    config: ReportConfig,
    microbench: Microbench,
    campaign: CampaignReport,
}

/// The knobs that shaped this snapshot — two reports are only
/// comparable when these match.
#[derive(Debug, Serialize)]
struct ReportConfig {
    scale: u64,
    accesses: u64,
    seed: u64,
    threads: usize,
    quick: bool,
}

/// Nanoseconds per operation for the hot inner loops.
#[derive(Debug, Serialize)]
struct Microbench {
    /// SoA metadata probe + touch (the per-access walk of every design).
    probe_ns_per_op: f64,
    /// Replaying one record from a frozen trace artifact.
    replay_ns_per_record: f64,
    /// Generating one record from scratch (what replay amortizes away).
    generate_ns_per_record: f64,
    /// Machine-speed calibration: wall time of a fixed-work serial
    /// integer loop that never changes with the codebase. Two snapshots
    /// are speed-comparable only when their calibrations agree (±10%) —
    /// the v8→v9 probe "regression" was a slower machine, and this field
    /// is what tells that apart from a real one.
    calibration_ns: f64,
}

/// The calibration loop: a serial dependent chain of integer ops (mul,
/// rotate, xor) long enough to settle (~10 ms class), run three times
/// taking the best, so one descheduling blip doesn't skew it. The work
/// is fixed forever — changing it invalidates cross-snapshot
/// comparisons and requires a schema bump.
fn bench_calibration() -> f64 {
    const ITERS: u64 = 16_000_000;
    let mut best = f64::INFINITY;
    for round in 0..3u64 {
        let start = Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_add(round);
        for i in 0..ITERS {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(23) ^ i;
        }
        black_box(x);
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Telemetry of the headline campaign.
#[derive(Debug, Serialize)]
struct CampaignReport {
    cells: usize,
    /// End-to-end campaign wall time and its phase breakdown.
    wall_ns: u64,
    trace_prefill_ns: u64,
    baseline_ns: u64,
    cells_ns: u64,
    /// Mean per-cell compute time across every cell.
    cell_wall_ns_mean: u64,
    /// Completed cells per second of the **cells phase** (`cells_ns`) —
    /// simulation throughput across the pool, the denominator the
    /// per-design rates also use, so the numbers are comparable.
    cells_per_sec: f64,
    /// Completed cells per second of **end-to-end** campaign wall time
    /// (`wall_ns`, including trace-prefill and baseline phases) — what
    /// a user actually waits for. Always ≤ `cells_per_sec`.
    cells_per_sec_end_to_end: f64,
    scheduling: SchedulingReport,
    designs: Vec<DesignReport>,
}

/// Cost-model scheduling telemetry: how this campaign's *measured*
/// per-cell wall times would split across shard workers under the two
/// partition strategies `sweep` offers, plus how well the structural
/// prior (what a first-ever run schedules on) predicted those times.
#[derive(Debug, Serialize)]
struct SchedulingReport {
    /// Simulated shard-worker count: the report's thread count, floored
    /// at 2 so the comparison is never vacuous.
    workers: u32,
    /// Max/mean worker busy time under the blind `key % N` partition.
    imbalance_blind: f64,
    /// Max/mean worker busy time under cost-model LPT bin-packing (the
    /// `sweep --partition balanced` split, here fed the costs learned
    /// from this very run), on the same measured wall times.
    imbalance_balanced: f64,
    /// Mean relative error of the structural prior vs measured wall
    /// time, over all cells: `mean(|prior - actual| / actual)`.
    prior_cost_error: f64,
}

/// One design's slice of the campaign.
#[derive(Debug, Serialize)]
struct DesignReport {
    design: String,
    cells: usize,
    mean_cell_ns: u64,
    /// Single-thread throughput implied by the mean cell time (cell
    /// compute time only, the same denominator family as the campaign
    /// `cells_per_sec`).
    cells_per_sec: f64,
    /// Geomean speedup over NoCache across the campaign's workloads —
    /// the *result* the timing paid for.
    geomean_speedup: Option<f64>,
}

/// Times `iters` repetitions of `op` and returns nanoseconds per call.
fn ns_per_op<T>(iters: u64, mut op: impl FnMut(u64) -> T) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        black_box(op(i));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The SoA probe/touch walk, mirroring the criterion `meta` group but
/// sized to finish fast: the geometry is smaller, the scattered set
/// stride is the same.
fn bench_probe(quick: bool) -> f64 {
    let sets: u64 = if quick { 1 << 12 } else { 1 << 16 };
    let ways: u32 = 4;
    let mut store = MetaStore::paged(sets, ways, Replacement::AgingLru);
    for set in 0..sets {
        for w in 0..ways {
            store.install(
                set,
                w,
                PageMeta {
                    tag: u64::from(w) * 3 + (set % 5),
                    present: 0x7ff,
                    demanded: 0x0f1,
                    dirty: 0x011,
                    predicted: 0x7ff,
                    pc: 0x400 + set,
                    offset: (set % 15) as u8,
                },
            );
            store.touch(set, w, 0);
        }
    }
    let iters = if quick { 200_000 } else { 2_000_000 };
    ns_per_op(iters, |i| {
        let set = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % sets;
        let found = store.probe_set(set, i % 16);
        if let Some(w) = found {
            store.touch(set, w, 0);
        }
        found
    })
}

/// Replay throughput of a frozen artifact (wrap-around, zero-alloc).
fn bench_replay(quick: bool) -> f64 {
    let len: u64 = if quick { 100_000 } else { 1_000_000 };
    let artifact = TraceArtifact::freeze(&workloads::tpch().scaled(8), 3, len);
    let mut replay = artifact.replay();
    ns_per_op(2 * len, |_| match replay.next() {
        Some(r) => Some(r),
        None => {
            replay = artifact.replay();
            replay.next()
        }
    })
}

/// Generation throughput of the same stream replay freezes.
fn bench_generate(quick: bool) -> f64 {
    let iters = if quick { 100_000 } else { 1_000_000 };
    let mut gen = WorkloadGen::new(workloads::tpch().scaled(8), 3);
    ns_per_op(iters, |_| gen.next())
}

/// The headline campaign: the four figure-7 designs on two contrasting
/// workloads at the paper's default 512 MB point.
fn run_campaign(opts: &BenchOpts) -> CampaignReport {
    let grid_workloads = [workloads::web_search(), workloads::tpch()];
    let designs = [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Ideal,
    ];
    let size = 512u64 << 20;
    let grid = ScenarioGrid::new()
        .designs(designs)
        .workloads(grid_workloads.clone())
        .sizes([size]);
    // An empty model schedules on the structural prior, so the campaign
    // runs its long cells (Unison) first — the same longest-first order
    // a first-ever `sweep --costs` run uses.
    let results = opts.campaign().costs(CostModel::new()).run_speedups(&grid);
    let summary = results.summary();

    let mut per_design = Vec::new();
    for d in designs {
        let name = d.name();
        let cells: Vec<_> = results
            .cells()
            .iter()
            .filter(|c| c.design() == name)
            .collect();
        let wall: Vec<f64> = cells.iter().map(|c| c.wall_ns as f64).collect();
        let mean = stats::mean(&wall).unwrap_or(0.0);
        per_design.push(DesignReport {
            design: name.clone(),
            cells: cells.len(),
            mean_cell_ns: mean as u64,
            cells_per_sec: if mean > 0.0 { 1e9 / mean } else { 0.0 },
            geomean_speedup: results.geomean_speedup_in_scenario("default", &name, size),
        });
    }

    // Partition comparison on this run's measured wall times: cells are
    // in plan order, so `measured[i]` is the cost of plan cell `i`.
    let plan = TaskPlan::lower(&opts.cfg, &grid, true);
    let measured: Vec<u64> = results.cells().iter().map(|c| c.wall_ns).collect();
    let workers = opts.threads.max(2) as u32;
    let blind: Vec<Vec<usize>> = {
        let mut bins = vec![Vec::new(); workers as usize];
        for pc in &plan.cells {
            bins[pc.key.shard_of(workers) as usize].push(pc.index);
        }
        bins
    };
    let mut learned = CostModel::new();
    for c in results.cells() {
        learned.observe(c);
    }
    let balanced = learned.partition(&plan, opts.cfg.accesses, workers);
    let prior = CostModel::new();
    let errs: Vec<f64> = plan
        .cells
        .iter()
        .zip(&measured)
        .filter(|(_, &w)| w > 0)
        .map(|(pc, &w)| {
            let p = prior.predict(&pc.cell, opts.cfg.accesses) as f64;
            (p - w as f64).abs() / w as f64
        })
        .collect();
    let scheduling = SchedulingReport {
        workers,
        imbalance_blind: imbalance_ratio(&bin_loads(&measured, &blind)),
        imbalance_balanced: imbalance_ratio(&bin_loads(&measured, &balanced)),
        prior_cost_error: stats::mean(&errs).unwrap_or(0.0),
    };

    let rate = |ns: u64| {
        let secs = ns as f64 / 1e9;
        if secs > 0.0 {
            results.cells().len() as f64 / secs
        } else {
            0.0
        }
    };
    CampaignReport {
        cells: results.cells().len(),
        wall_ns: results.timing.total_ns,
        trace_prefill_ns: results.timing.trace_prefill_ns,
        baseline_ns: results.timing.baseline_ns,
        cells_ns: results.timing.cells_ns,
        cell_wall_ns_mean: summary.cell_wall_ns_mean,
        cells_per_sec: rate(results.timing.cells_ns),
        cells_per_sec_end_to_end: rate(results.timing.total_ns),
        scheduling,
        designs: per_design,
    }
}

/// Finds the snapshot to diff against: the file already at the output
/// path, else the previous `BENCH_v<n-1>.json` next to it for `v<n>`
/// labels. Parsed as a raw value tree so any schema version loads.
fn previous_snapshot(out: &Path, label: &str) -> Option<(PathBuf, Value)> {
    let mut candidates = vec![out.to_path_buf()];
    if let Some(n) = label.strip_prefix('v').and_then(|s| s.parse::<u64>().ok()) {
        if n > 0 {
            let sibling = format!("BENCH_v{}.json", n - 1);
            candidates.push(match out.parent() {
                Some(p) if !p.as_os_str().is_empty() => p.join(sibling),
                _ => PathBuf::from(sibling),
            });
        }
    }
    candidates.into_iter().find_map(|p| {
        let text = std::fs::read_to_string(&p).ok()?;
        let v = serde_json::parse(&text).ok()?;
        Some((p, v))
    })
}

/// Walks `path` through a parsed JSON tree and coerces the leaf number.
fn num(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    match *cur {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

/// One `old -> new` delta line (skipped when the previous snapshot
/// lacks the field or holds a degenerate value).
fn print_delta(name: &str, old: Option<f64>, new: f64) {
    let Some(old) = old else { return };
    if old <= 0.0 {
        return;
    }
    let pct = (new - old) / old * 100.0;
    println!("  {name:<24} {old:>10.2} -> {new:>10.2}  ({pct:+.1}%)");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench-report [--label NAME] [--out PATH] [shared bench flags]\n\
         \x20 --label NAME  snapshot label (default: local); names BENCH_<label>.json\n\
         \x20 --out PATH    output path (default: BENCH_<label>.json)"
    );
    std::process::exit(2);
}

fn main() {
    let (opts, extra) = BenchOpts::parse_known(std::env::args().skip(1));
    let mut label = String::from("local");
    let mut out: Option<PathBuf> = None;
    let mut it = extra.into_iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--label" => label = grab(),
            "--out" => out = Some(PathBuf::from(grab())),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let out = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));

    opts.print_header("Bench report: perf trajectory snapshot");

    println!("microbenchmarks:");
    let micro = Microbench {
        probe_ns_per_op: bench_probe(opts.quick),
        replay_ns_per_record: bench_replay(opts.quick),
        generate_ns_per_record: bench_generate(opts.quick),
        calibration_ns: bench_calibration(),
    };
    println!("  meta probe+touch   {:>10.1} ns/op", micro.probe_ns_per_op);
    println!(
        "  artifact replay    {:>10.1} ns/record",
        micro.replay_ns_per_record
    );
    println!(
        "  workload generate  {:>10.1} ns/record ({:.1}x replay)",
        micro.generate_ns_per_record,
        micro.generate_ns_per_record / micro.replay_ns_per_record.max(1e-9)
    );
    println!(
        "  machine calibration{:>10.1} ms (fixed-work loop)",
        micro.calibration_ns / 1e6
    );
    println!();

    println!("headline campaign (4 designs x 2 workloads, 512M):");
    let campaign = run_campaign(&opts);
    let mut t = Table::new(
        ["Design", "Cells", "Mean cell", "Cells/s", "Geomean speedup"]
            .iter()
            .map(|s| s.to_string()),
    );
    for d in &campaign.designs {
        t.row(vec![
            d.design.clone(),
            d.cells.to_string(),
            fmt_ns(d.mean_cell_ns),
            format!("{:.2}", d.cells_per_sec),
            d.geomean_speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    t.print();
    println!(
        "campaign wall time {} ({} trace prefill, {} baselines, {} cells); \
         {:.2} cells/s in the cells phase, {:.2} cells/s end-to-end",
        fmt_ns(campaign.wall_ns),
        fmt_ns(campaign.trace_prefill_ns),
        fmt_ns(campaign.baseline_ns),
        fmt_ns(campaign.cells_ns),
        campaign.cells_per_sec,
        campaign.cells_per_sec_end_to_end,
    );
    let s = &campaign.scheduling;
    println!(
        "scheduling ({} simulated shard workers): imbalance {:.3}x blind -> {:.3}x balanced; \
         prior cost error {:.0}%",
        s.workers,
        s.imbalance_blind,
        s.imbalance_balanced,
        s.prior_cost_error * 100.0,
    );

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        label,
        config: ReportConfig {
            scale: opts.cfg.scale,
            accesses: opts.cfg.accesses,
            seed: opts.cfg.seed,
            threads: opts.threads,
            quick: opts.quick,
        },
        microbench: micro,
        campaign,
    };
    // Diff against the previous snapshot before overwriting anything.
    if let Some((prev_path, prev)) = previous_snapshot(&out, &report.label) {
        println!();
        println!("deltas vs {}:", prev_path.display());
        // Machine-speed guard: when the fixed-work calibrations disagree
        // by more than 10%, the wall-clock deltas below mostly measure
        // the machine, not the code.
        match num(&prev, &["microbench", "calibration_ns"]) {
            Some(prev_cal) if prev_cal > 0.0 => {
                let drift = (report.microbench.calibration_ns - prev_cal) / prev_cal;
                if drift.abs() > 0.10 {
                    println!(
                        "  WARNING: machine calibration drifted {:+.1}% vs the previous \
                         snapshot ({:.1} ms -> {:.1} ms); wall-clock deltas below reflect \
                         machine speed, not code changes",
                        drift * 100.0,
                        prev_cal / 1e6,
                        report.microbench.calibration_ns / 1e6,
                    );
                }
            }
            // Pre-v4 snapshots carry no calibration; nothing to compare.
            _ => println!("  (previous snapshot has no machine calibration; treat deltas as same-machine only if known)"),
        }
        print_delta(
            "meta probe ns/op",
            num(&prev, &["microbench", "probe_ns_per_op"]),
            report.microbench.probe_ns_per_op,
        );
        print_delta(
            "replay ns/record",
            num(&prev, &["microbench", "replay_ns_per_record"]),
            report.microbench.replay_ns_per_record,
        );
        print_delta(
            "cells/s (cells phase)",
            num(&prev, &["campaign", "cells_per_sec"]),
            report.campaign.cells_per_sec,
        );
        print_delta(
            "cells/s end-to-end",
            num(&prev, &["campaign", "cells_per_sec_end_to_end"]),
            report.campaign.cells_per_sec_end_to_end,
        );
    }

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("\n(wrote {})", out.display());
}
