//! Figure 6: miss ratio comparison of Alloy, Footprint, and Unison
//! Caches across cache sizes (128 MB–1 GB CloudSuite; 1–8 GB TPC-H).

use serde::Serialize;
use unison_bench::table::{pct, size_label};
use unison_bench::{BenchOpts, Table, CLOUD_SIZES, TPCH_SIZES};
use unison_harness::ScenarioGrid;
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Point {
    workload: String,
    design: String,
    cache_bytes: u64,
    miss_ratio: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 6: DRAM cache miss ratio, Alloy vs Footprint vs Unison");

    let designs = [Design::Alloy, Design::Footprint, Design::Unison];
    let grid = ScenarioGrid::new()
        .designs(designs)
        .workloads(workloads::all())
        .sizes(CLOUD_SIZES)
        .sizes_for("TPC-H", TPCH_SIZES);
    let results = opts.campaign().run(&grid);

    let mut points = Vec::new();
    for w in workloads::all() {
        let sizes = grid.sizes_of(w.name);
        let mut t = Table::new(["Design", "128MB/1GB", "256MB/2GB", "512MB/4GB", "1GB/8GB"]);
        println!("-- {} --", w.name);
        for d in designs {
            let mut cells = vec![d.name()];
            for &size in sizes {
                let cell = results
                    .get(w.name, &d.name(), size)
                    .expect("grid cell present");
                let miss = cell.run.cache.miss_ratio();
                cells.push(pct(miss));
                points.push(Point {
                    workload: w.name.to_string(),
                    design: d.name(),
                    cache_bytes: size,
                    miss_ratio: miss,
                });
            }
            t.row(cells);
        }
        t.print();
        println!(
            "  (sizes: {})\n",
            sizes
                .iter()
                .map(|&s| size_label(s))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("paper shape: Alloy far above Footprint/Unison everywhere (smallest gap on Data");
    println!("             Analytics); Footprint and Unison close; all fall with cache size;");
    println!("             TPC-H needs multi-GB caches before Alloy sees real hit rates.");

    opts.maybe_dump_json(&points);
    opts.maybe_dump_csv(&results);
}
