//! Table IV: Footprint Cache SRAM tag-array size and lookup latency as a
//! function of cache size — the scalability wall Unison Cache removes.

use unison_bench::table::size_label;
use unison_bench::Table;
use unison_core::layout::FcTagModel;

fn main() {
    println!("== Table IV: Footprint Cache tag parameters ==\n");
    const MB: u64 = 1 << 20;
    let sizes = [
        128 * MB,
        256 * MB,
        512 * MB,
        1024 * MB,
        2048 * MB,
        4096 * MB,
        8192 * MB,
    ];
    let mut t = Table::new(["Cache size", "Tags (MB)", "Latency (cycles)"]);
    for s in sizes {
        let m = FcTagModel::for_cache_size(s);
        t.row([
            size_label(s),
            format!("{:.2}", m.tag_mb),
            m.latency_cycles.to_string(),
        ]);
    }
    t.print();
    println!("\npaper row:    0.8  1.58  3.12  6.2  12.5  25  50   (MB)");
    println!("paper row:    6    9     11    16   25    36  48   (cycles)");
}
