//! Table V: accuracy of all predictors — Alloy's miss predictor (MP),
//! the footprint predictor (FP) in Footprint and Unison Cache, and
//! Unison's way predictor (WP) — per workload, at 1 GB (8 GB for TPC-H).

use serde::Serialize;
use unison_bench::table::pct;
use unison_bench::{table5_grid, table5_size, BenchOpts, Table};
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Row {
    workload: String,
    mp_accuracy: f64,
    mp_overfetch: f64,
    fc_fp_accuracy: f64,
    fc_fp_overfetch: f64,
    uc960_fp_accuracy: f64,
    uc960_fp_overfetch: f64,
    uc960_wp_accuracy: f64,
    uc1984_fp_accuracy: f64,
    uc1984_fp_overfetch: f64,
    uc1984_wp_accuracy: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Table V: predictor accuracy @ 1GB (8GB for TPC-H)");

    let grid = table5_grid([
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Unison1984,
    ]);
    let results = opts.campaign().run(&grid);

    let mut rows = Vec::new();
    for w in workloads::all() {
        let size = table5_size(w.name);
        let stats = |design: Design| {
            results
                .get(w.name, &design.name(), size)
                .expect("grid cell present")
                .run
                .cache
        };
        let ac = stats(Design::Alloy);
        let fc = stats(Design::Footprint);
        let uc = stats(Design::Unison);
        let uc2 = stats(Design::Unison1984);
        rows.push(Row {
            workload: w.name.to_string(),
            mp_accuracy: ac.mp_accuracy(),
            mp_overfetch: ac.mp_overfetch(),
            fc_fp_accuracy: fc.fp_accuracy(),
            fc_fp_overfetch: fc.fp_overfetch(),
            uc960_fp_accuracy: uc.fp_accuracy(),
            uc960_fp_overfetch: uc.fp_overfetch(),
            uc960_wp_accuracy: uc.wp_accuracy(),
            uc1984_fp_accuracy: uc2.fp_accuracy(),
            uc1984_fp_overfetch: uc2.fp_overfetch(),
            uc1984_wp_accuracy: uc2.wp_accuracy(),
        });
    }

    let avg = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;

    let mut t = Table::new([
        "Predictor",
        "Data Analytics",
        "Data Serving",
        "Software Testing",
        "Web Search",
        "Web Serving",
        "TPC-H",
        "Average",
    ]);
    let metric = |label: &str, f: fn(&Row) -> f64, t: &mut Table, avg_v: f64| {
        let mut cells = vec![label.to_string()];
        cells.extend(rows.iter().map(|r| pct(f(r))));
        cells.push(pct(avg_v));
        t.row(cells);
    };
    metric(
        "Alloy MP Accuracy (%)",
        |r| r.mp_accuracy,
        &mut t,
        avg(|r| r.mp_accuracy),
    );
    metric(
        "Alloy MP Overfetch (%)",
        |r| r.mp_overfetch,
        &mut t,
        avg(|r| r.mp_overfetch),
    );
    metric(
        "FC FP Accuracy (%)",
        |r| r.fc_fp_accuracy,
        &mut t,
        avg(|r| r.fc_fp_accuracy),
    );
    metric(
        "FC FP Overfetch (%)",
        |r| r.fc_fp_overfetch,
        &mut t,
        avg(|r| r.fc_fp_overfetch),
    );
    metric(
        "UC-960B FP Accuracy (%)",
        |r| r.uc960_fp_accuracy,
        &mut t,
        avg(|r| r.uc960_fp_accuracy),
    );
    metric(
        "UC-960B FP Overfetch (%)",
        |r| r.uc960_fp_overfetch,
        &mut t,
        avg(|r| r.uc960_fp_overfetch),
    );
    metric(
        "UC-960B WP Accuracy (%)",
        |r| r.uc960_wp_accuracy,
        &mut t,
        avg(|r| r.uc960_wp_accuracy),
    );
    metric(
        "UC-1984B FP Accuracy (%)",
        |r| r.uc1984_fp_accuracy,
        &mut t,
        avg(|r| r.uc1984_fp_accuracy),
    );
    metric(
        "UC-1984B FP Overfetch (%)",
        |r| r.uc1984_fp_overfetch,
        &mut t,
        avg(|r| r.uc1984_fp_overfetch),
    );
    metric(
        "UC-1984B WP Accuracy (%)",
        |r| r.uc1984_wp_accuracy,
        &mut t,
        avg(|r| r.uc1984_wp_accuracy),
    );
    t.print();

    opts.maybe_dump_json(&rows);
    opts.maybe_dump_csv(&results);
}
