//! Figure 8: performance comparison for TPC-H queries with 1–8 GB
//! caches — the realistic multi-gigabyte scenario where Footprint
//! Cache's SRAM tag array stops being buildable and its latency erases
//! its hit-ratio advantage.

use serde::Serialize;
use unison_bench::table::speedup;
use unison_bench::{BenchOpts, Table, TPCH_SIZES};
use unison_harness::ScenarioGrid;
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Point {
    design: String,
    cache_bytes: u64,
    speedup: f64,
    miss_ratio: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Figure 8: speedup over no-DRAM-cache baseline (TPC-H, 1-8GB)");

    let designs = [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::Ideal,
    ];
    let grid = ScenarioGrid::new()
        .designs(designs)
        .workload(workloads::tpch())
        .sizes(TPCH_SIZES);
    let results = opts.campaign().run_speedups(&grid);

    let mut points = Vec::new();
    let mut t = Table::new(["Design", "1GB", "2GB", "4GB", "8GB"]);
    for d in designs {
        let mut cells = vec![d.name()];
        for &size in &TPCH_SIZES {
            let cell = results
                .get("TPC-H", &d.name(), size)
                .expect("grid cell present");
            let s = cell.speedup.expect("speedup campaign");
            cells.push(speedup(s));
            points.push(Point {
                design: d.name(),
                cache_bytes: size,
                speedup: s,
                miss_ratio: cell.run.cache.miss_ratio(),
            });
        }
        t.row(cells);
    }
    t.print();
    println!("\npaper shape: Unison above Footprint at every size (FC's 25-48-cycle tag");
    println!("             latency); Alloy improves steadily but stays capped by hit ratio;");
    println!("             note FC above 256-512MB is hypothetical (50MB SRAM tags @8GB).");

    opts.maybe_dump_json(&points);
    opts.maybe_dump_csv(&results);
}
