//! Section V.D energy analysis: row activations and dynamic DRAM energy.
//!
//! The paper's argument: row activations are the most energy-demanding
//! DRAM operations, and because Footprint/Unison transfer data at
//! footprint granularity (many blocks per activated row) while Alloy
//! moves isolated blocks, the page-based designs cut activations per
//! useful block by roughly an order of magnitude on the off-chip side.

use serde::Serialize;
use unison_bench::table::{pct, size_label};
use unison_bench::{table5_grid, table5_size, BenchOpts, Table};
use unison_dram::EnergyParams;
use unison_sim::Design;
use unison_trace::workloads;

#[derive(Serialize)]
struct Row {
    workload: String,
    design: String,
    cache_bytes: u64,
    offchip_acts_per_ki: f64,
    stacked_acts_per_ki: f64,
    offchip_blocks_per_act: f64,
    dyn_energy_mj: f64,
    offchip_row_hit_rate: f64,
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Section V.D: DRAM row activations and dynamic energy");

    let designs = [
        Design::Alloy,
        Design::Footprint,
        Design::Unison,
        Design::NoCache,
    ];
    let grid = table5_grid(designs);
    let results = opts.campaign().run(&grid);

    let mut rows = Vec::new();
    for w in workloads::all() {
        let size = table5_size(w.name);
        println!("-- {} @ {} --", w.name, size_label(size));
        let mut t = Table::new([
            "Design",
            "offchip ACT/KI",
            "stacked ACT/KI",
            "offchip blocks/ACT",
            "offchip row-hit %",
            "dyn energy (mJ)",
        ]);
        for d in designs {
            let r = &results
                .get(w.name, &d.name(), size)
                .expect("grid cell present")
                .run;
            let ki = r.instructions as f64 / 1000.0;
            let off_acts = r.offchip_energy.activations as f64;
            let st_acts = r.stacked_energy.activations as f64;
            let off_blocks =
                (r.offchip_energy.bytes_read + r.offchip_energy.bytes_written) as f64 / 64.0;
            let dyn_mj = r.offchip_energy.breakdown(&EnergyParams::ddr3()).total_mj()
                + r.stacked_energy
                    .breakdown(&EnergyParams::stacked())
                    .total_mj();
            let off_row_hits = r.offchip.row_hits as f64
                / (r.offchip.row_hits + r.offchip.row_empty + r.offchip.row_conflicts).max(1)
                    as f64;
            t.row([
                d.name(),
                format!("{:.2}", off_acts / ki),
                format!("{:.2}", st_acts / ki),
                format!("{:.1}", off_blocks / off_acts.max(1.0)),
                pct(off_row_hits),
                format!("{dyn_mj:.2}"),
            ]);
            rows.push(Row {
                workload: w.name.to_string(),
                design: d.name(),
                cache_bytes: size,
                offchip_acts_per_ki: off_acts / ki,
                stacked_acts_per_ki: st_acts / ki,
                offchip_blocks_per_act: off_blocks / off_acts.max(1.0),
                dyn_energy_mj: dyn_mj,
                offchip_row_hit_rate: off_row_hits,
            });
        }
        t.print();
        println!();
    }
    println!("paper shape: Footprint/Unison move ~a footprint (~10 blocks) per off-chip row");
    println!("             activation where Alloy moves ~1, cutting activation energy; both");
    println!("             also cut total off-chip traffic vs the uncached baseline.");

    opts.maybe_dump_json(&rows);
    opts.maybe_dump_csv(&results);
}
