//! `sweep`: run an arbitrary user-specified experiment grid in one
//! command.
//!
//! ```sh
//! cargo run --release -p unison-bench --bin sweep -- \
//!     --designs unison,alloy,footprint,ideal \
//!     --workloads "Web Search,TPC-H" \
//!     --sizes 256M,1G --seeds 42,43 \
//!     --threads 8 --csv sweep.csv --json sweep.json
//! ```
//!
//! Defaults: the four headline designs, every workload, 512 MB, speedup
//! mode (memoized NoCache baselines). `--metric miss` switches the table
//! to miss ratios and skips the baselines entirely. All shared bench
//! flags (`--scale`, `--seed`, `--threads`, `--quick`, sinks) apply.

use unison_bench::table::{pct, size_label, speedup};
use unison_bench::{BenchOpts, Table};
use unison_harness::ExperimentGrid;
use unison_sim::Design;
use unison_trace::{workloads, WorkloadSpec};

struct SweepArgs {
    designs: Vec<Design>,
    workloads: Vec<WorkloadSpec>,
    sizes: Vec<u64>,
    seeds: Vec<u64>,
    metric: Metric,
}

#[derive(PartialEq, Clone, Copy)]
enum Metric {
    Speedup,
    Miss,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sweep [--designs a,b,..] [--workloads \"W1,W2,..\"] [--sizes 128M,1G,..] \
         [--seeds s1,s2,..] [--metric speedup|miss] [shared bench flags]"
    );
    eprintln!("  designs: alloy, footprint, unison, unison1984, unison-<N>way, ideal, nocache");
    eprintln!(
        "  workloads: {}",
        workloads::all()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_size(s: &str) -> u64 {
    let t = s.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(n) = t.strip_suffix("GB").or_else(|| t.strip_suffix('G')) {
        (n, 1u64 << 30)
    } else if let Some(n) = t.strip_suffix("MB").or_else(|| t.strip_suffix('M')) {
        (n, 1u64 << 20)
    } else if let Some(n) = t.strip_suffix("KB").or_else(|| t.strip_suffix('K')) {
        (n, 1u64 << 10)
    } else if let Some(n) = t.strip_suffix('B') {
        // Raw bytes must be explicit ("134217728B"); a bare number like
        // "512" is almost always a forgotten unit, so reject it rather
        // than silently sweeping a 512-byte cache.
        (n, 1u64)
    } else {
        fail(&format!(
            "size {s:?} needs a unit suffix (K/M/G, e.g. 512M, or B for raw bytes)"
        ))
    };
    num.parse::<u64>()
        .unwrap_or_else(|_| fail(&format!("bad size {s:?}")))
        .checked_mul(mult)
        .unwrap_or_else(|| fail(&format!("size {s:?} overflows")))
}

fn parse_sweep_args(extra: Vec<String>) -> SweepArgs {
    let mut args = SweepArgs {
        designs: vec![
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Ideal,
        ],
        workloads: workloads::all(),
        sizes: vec![512 << 20],
        seeds: Vec::new(),
        metric: Metric::Speedup,
    };
    let mut it = extra.into_iter();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--designs" => {
                args.designs = grab()
                    .split(',')
                    .map(|d| {
                        Design::from_name(d)
                            .unwrap_or_else(|| fail(&format!("unknown design {d:?}")))
                    })
                    .collect();
            }
            "--workloads" => {
                args.workloads = grab()
                    .split(',')
                    .map(|w| {
                        workloads::by_name(w.trim())
                            .unwrap_or_else(|| fail(&format!("unknown workload {w:?}")))
                    })
                    .collect();
            }
            "--sizes" => args.sizes = grab().split(',').map(parse_size).collect(),
            "--seeds" => {
                args.seeds = grab()
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("bad seed {s:?}")))
                    })
                    .collect();
            }
            "--metric" => {
                args.metric = match grab().as_str() {
                    "speedup" => Metric::Speedup,
                    "miss" => Metric::Miss,
                    m => fail(&format!("unknown metric {m:?} (speedup|miss)")),
                };
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if args.designs.is_empty() || args.workloads.is_empty() || args.sizes.is_empty() {
        fail("designs, workloads, and sizes must all be non-empty");
    }
    args
}

fn main() {
    let (opts, extra) = BenchOpts::parse_known(std::env::args().skip(1));
    let sweep = parse_sweep_args(extra);
    opts.print_header("Sweep: user-specified experiment grid");

    let mut grid = ExperimentGrid::new()
        .designs(sweep.designs.clone())
        .workloads(sweep.workloads.clone())
        .sizes(sweep.sizes.clone());
    if !sweep.seeds.is_empty() {
        grid = grid.seeds(sweep.seeds.clone());
    }
    let campaign = opts.campaign();
    let results = match sweep.metric {
        Metric::Speedup => campaign.run_speedups(&grid),
        Metric::Miss => campaign.run(&grid),
    };

    let size_labels: Vec<String> = sweep.sizes.iter().map(|&s| size_label(s)).collect();
    let headers: Vec<String> = std::iter::once("Design".to_string())
        .chain(size_labels.clone())
        .collect();
    let seeds_shown: Vec<u64> = if sweep.seeds.is_empty() {
        vec![opts.cfg.seed]
    } else {
        sweep.seeds.clone()
    };

    for w in &sweep.workloads {
        println!(
            "-- {} ({}) --",
            w.name,
            match sweep.metric {
                Metric::Speedup => "speedup over NoCache",
                Metric::Miss => "miss ratio %",
            }
        );
        let mut t = Table::new(headers.clone());
        for d in &sweep.designs {
            let mut cells = vec![d.name()];
            for &size in &sweep.sizes {
                // Average over seeds so multi-seed sweeps stay one table.
                let vals: Vec<f64> = seeds_shown
                    .iter()
                    .filter_map(|&seed| results.get_seeded(w.name, &d.name(), size, seed))
                    .map(|c| match sweep.metric {
                        Metric::Speedup => c.speedup.unwrap_or(f64::NAN),
                        Metric::Miss => c.run.cache.miss_ratio(),
                    })
                    .collect();
                let v = unison_harness::stats::mean(&vals).unwrap_or(f64::NAN);
                cells.push(match sweep.metric {
                    Metric::Speedup => speedup(v),
                    Metric::Miss => pct(v),
                });
            }
            t.row(cells);
        }
        t.print();
        println!();
    }

    if sweep.metric == Metric::Speedup && sweep.workloads.len() > 1 {
        println!("-- Geometric Mean across workloads --");
        let mut t = Table::new(headers);
        for d in &sweep.designs {
            let mut cells = vec![d.name()];
            for &size in &sweep.sizes {
                cells.push(
                    results
                        .geomean_speedup(&d.name(), size)
                        .map(speedup)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            t.row(cells);
        }
        t.print();
        println!();
    }

    println!(
        "{} cells on {} thread(s); baselines: {} simulated, {} memo hits",
        results.cells().len(),
        opts.threads,
        results.baseline_runs,
        results.baseline_hits
    );

    opts.maybe_dump_json(&results.cells);
    opts.maybe_dump_csv(&results);
}
