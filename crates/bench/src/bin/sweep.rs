//! `sweep`: run an arbitrary user-specified experiment grid in one
//! command.
//!
//! ```sh
//! cargo run --release -p unison-bench --bin sweep -- \
//!     --designs unison,alloy,footprint,ideal \
//!     --workloads "Web Search,TPC-H" \
//!     --sizes 256M,1G --seeds 42,43 \
//!     --cores 4,16 --dram-preset stacked,stacked-2x --way-policy predict,serial \
//!     --threads 8 --csv sweep.csv --json sweep.json
//! ```
//!
//! Defaults: the four headline designs, every workload, 512 MB, the
//! paper's Table III machine, speedup mode (memoized NoCache baselines).
//!
//! **Scenario axes.** `--cores`, `--dram-preset` (stacked device),
//! `--offchip-preset`, `--page-bytes`, `--ways`, and `--way-policy` each
//! take a comma list; their cross product forms the scenario axis.
//! `--scenario FILE.json` appends scenarios from a spec file (one object
//! or an array; fields omitted in the file keep their defaults), and
//! `--dump-scenario` prints the fully resolved scenario axis as JSON and
//! exits — pipe it to a file to seed a spec file.
//!
//! `--metric miss` switches the table to miss ratios and skips the
//! baselines entirely. All shared bench flags (`--scale`, `--seed`,
//! `--threads`, `--quick`, `--journal`/`--resume`, sinks) apply.
//!
//! **Sharding.** `--shard I/N` (1-based) runs only the cells whose
//! stable `CellKey` lands in shard `I` of a deterministic `N`-way
//! partition and writes a shard-output file to `--json` (required).
//! `--merge shard-*.json` re-lowers the same grid, verifies every shard
//! file against the plan (fingerprint + complete, disjoint coverage),
//! and renders the merged campaign exactly as an unsharded run would —
//! bit-identically. `--list` prints every valid design, DRAM preset,
//! way policy, and workload name in one place.
//!
//! **Orchestration.** `--orchestrate N` supervises the whole sharded
//! pipeline in one command: N child `sweep --shard i/N` worker
//! processes, each journaled, restarted from their journals on crash
//! under bounded exponential backoff (`--max-restarts`, default 3),
//! with cells that kill a worker twice in a row quarantined via
//! `--skip-cells`. On success the shard outputs are merged and rendered
//! exactly as an unsharded run; on degradation the run finishes with a
//! partial result, a manifest naming every missing cell
//! (`manifest.json` in `--orchestrate-dir`), and exit status 1.
//!
//! **Adaptive scheduling.** `--costs FILE` loads a per-cell cost model
//! (learned wall times with a structural prior for never-seen cells)
//! that orders cells longest-first inside a run and, with
//! `--partition balanced`, replaces the blind `key % N` worker split
//! with deterministic LPT bin-packing so every shard finishes at about
//! the same time. Scheduling never changes output: canonical results
//! stay byte-identical. A complete run folds its measured wall times
//! back into the file; `--orchestrate` snapshots the model into its
//! scratch dir so parent and workers always agree on the partition.

use std::path::{Path, PathBuf};
use std::process::Command;

use unison_bench::table::{pct, size_label, speedup};
use unison_bench::{BenchOpts, Table};
use unison_core::WayPolicy;
use unison_dram::DramPreset;
use unison_harness::telemetry::fmt_ns;
use unison_harness::{
    merge_shards, orchestrator, BalancedExecutor, CampaignResult, CellKey, CostModel,
    OrchestrateOutcome, OrchestratorConfig, ScenarioGrid, ShardOutput, ShardSpec, TaskPlan,
    WorkerLaunch,
};
use unison_sim::{scenarios_from_json, Design, Scenario, SystemSpec};
use unison_trace::{workloads, WorkloadSpec};

struct SweepArgs {
    designs: Vec<Design>,
    workloads: Vec<WorkloadSpec>,
    sizes: Vec<u64>,
    seeds: Vec<u64>,
    scenarios: Vec<Scenario>,
    dump_scenario: bool,
    metric: Metric,
    shard: Option<ShardSpec>,
    merge: Vec<String>,
    orchestrate: Option<u32>,
    orchestrate_dir: Option<PathBuf>,
    max_restarts: u32,
    skip_cells: Vec<CellKey>,
    partition: Partition,
    costs: Option<PathBuf>,
    list: bool,
    canonical: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Metric {
    Speedup,
    Miss,
}

/// How cells are assigned to shard workers.
#[derive(PartialEq, Clone, Copy)]
enum Partition {
    /// The historical blind split: `key % N`.
    Hash,
    /// Deterministic LPT bin-packing under the cost model: the parent
    /// and every worker compute the same assignment from the same
    /// `costs.json`, so no side channel is needed.
    Balanced,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sweep [--designs a,b,..] [--workloads \"W1,W2,..\"] [--sizes 128M,1G,..] \
         [--seeds s1,s2,..] [--cores n1,n2,..] [--dram-preset p1,p2,..] \
         [--offchip-preset p1,p2,..] [--page-bytes b1,b2,..] [--ways w1,w2,..] \
         [--way-policy p1,p2,..] [--scenario FILE.json] [--dump-scenario] \
         [--metric speedup|miss] [--shard I/N] [--merge FILE..] [--orchestrate N] \
         [--orchestrate-dir DIR] [--max-restarts K] [--skip-cells k1,k2,..] \
         [--partition hash|balanced] [--costs FILE] [--list] \
         [--canonical] [shared bench flags]"
    );
    eprintln!("  --shard I/N   run only shard I (1-based) of a deterministic N-way cell");
    eprintln!("                partition; writes a shard-output file to --json (required)");
    eprintln!("  --merge F..   verify + merge shard-output files from the same grid flags");
    eprintln!("  --orchestrate N       supervise N journaled shard worker processes: restart");
    eprintln!("                        crashed workers from their journals, quarantine cells");
    eprintln!("                        that kill a worker twice in a row, merge on completion");
    eprintln!("  --orchestrate-dir DIR scratch dir for worker journals/outputs/logs and the");
    eprintln!("                        manifest (default .unison-orchestrate-<fingerprint>)");
    eprintln!("  --max-restarts K      restarts allowed per worker before giving up (default 3)");
    eprintln!("  --skip-cells k1,..    with --shard: skip these cell keys (quarantine hand-off)");
    eprintln!("  --partition hash|balanced  how cells map to shard workers: the blind key-hash");
    eprintln!("                        split (default) or cost-model LPT bin-packing, which");
    eprintln!("                        evens out shard wall times without changing any output");
    eprintln!("  --costs FILE  per-cell cost model (costs.json): schedules cells longest-first");
    eprintln!("                and shapes balanced partitions; created on first use and updated");
    eprintln!("                with fresh wall times after a complete run");
    eprintln!("  --list        print every valid design, preset, policy, and workload");
    eprintln!("  --canonical   write --json as the timing-stripped cells array (byte-identical");
    eprintln!("                across reruns/shardings/resumes) instead of the summary document");
    eprintln!("  designs:      {}", Design::VALID_NAMES);
    eprintln!("  dram presets: {}", DramPreset::valid_names());
    eprintln!("  way policies: {}", WayPolicy::valid_names());
    eprintln!(
        "  workloads:    {}",
        workloads::all()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_size(s: &str) -> u64 {
    let t = s.trim().to_ascii_uppercase();
    let (num, mult) = if let Some(n) = t.strip_suffix("GB").or_else(|| t.strip_suffix('G')) {
        (n, 1u64 << 30)
    } else if let Some(n) = t.strip_suffix("MB").or_else(|| t.strip_suffix('M')) {
        (n, 1u64 << 20)
    } else if let Some(n) = t.strip_suffix("KB").or_else(|| t.strip_suffix('K')) {
        (n, 1u64 << 10)
    } else if let Some(n) = t.strip_suffix('B') {
        // Raw bytes must be explicit ("134217728B"); a bare number like
        // "512" is almost always a forgotten unit, so reject it rather
        // than silently sweeping a 512-byte cache.
        (n, 1u64)
    } else {
        fail(&format!(
            "size {s:?} needs a unit suffix (K/M/G, e.g. 512M, or B for raw bytes)"
        ))
    };
    num.parse::<u64>()
        .unwrap_or_else(|_| fail(&format!("bad size {s:?}")))
        .checked_mul(mult)
        .unwrap_or_else(|| fail(&format!("size {s:?} overflows")))
}

/// The per-flag value lists that cross-multiply into the scenario axis.
#[derive(Default)]
struct AxisFlags {
    cores: Vec<u32>,
    stacked: Vec<DramPreset>,
    offchip: Vec<DramPreset>,
    page_bytes: Vec<u32>,
    ways: Vec<u32>,
    way_policies: Vec<WayPolicy>,
}

impl AxisFlags {
    fn any(&self) -> bool {
        !(self.cores.is_empty()
            && self.stacked.is_empty()
            && self.offchip.is_empty()
            && self.page_bytes.is_empty()
            && self.ways.is_empty()
            && self.way_policies.is_empty())
    }

    /// The cross product of every given axis over the default spec, each
    /// point validated and named after its non-default knobs.
    fn cross_product(&self) -> Vec<Scenario> {
        fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().copied().map(Some).collect()
            }
        }
        let d = SystemSpec::default();
        let mut out = Vec::new();
        for &cores in &axis(&self.cores) {
            for &stacked in &axis(&self.stacked) {
                for &offchip in &axis(&self.offchip) {
                    for &page_bytes in &axis(&self.page_bytes) {
                        for &ways in &axis(&self.ways) {
                            for &way_policy in &axis(&self.way_policies) {
                                let spec = SystemSpec {
                                    cores,
                                    page_bytes,
                                    ways,
                                    way_policy,
                                    stacked: stacked.unwrap_or(d.stacked),
                                    offchip: offchip.unwrap_or(d.offchip),
                                    ..d
                                };
                                spec.validate().unwrap_or_else(|e| fail(&e));
                                out.push(Scenario::from_spec(spec));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn parse_list<T>(flag: &str, raw: &str, parse: impl Fn(&str) -> Result<T, String>) -> Vec<T> {
    raw.split(',')
        .map(|item| parse(item.trim()).unwrap_or_else(|e| fail(&format!("{flag}: {e}"))))
        .collect()
}

fn parse_sweep_args(extra: Vec<String>) -> SweepArgs {
    let mut args = SweepArgs {
        designs: vec![
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Ideal,
        ],
        workloads: workloads::all(),
        sizes: vec![512 << 20],
        seeds: Vec::new(),
        scenarios: Vec::new(),
        dump_scenario: false,
        metric: Metric::Speedup,
        shard: None,
        merge: Vec::new(),
        orchestrate: None,
        orchestrate_dir: None,
        max_restarts: 3,
        skip_cells: Vec::new(),
        partition: Partition::Hash,
        costs: None,
        list: false,
        canonical: false,
    };
    let mut axes = AxisFlags::default();
    let mut scenario_files: Vec<String> = Vec::new();
    let mut it = extra.into_iter().peekable();
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--designs" => {
                args.designs = parse_list("--designs", &grab(), Design::parse);
            }
            "--workloads" => {
                args.workloads = parse_list("--workloads", &grab(), |w| {
                    workloads::by_name(w).ok_or_else(|| {
                        format!(
                            "unknown workload {w:?} (valid workloads: {})",
                            workloads::all()
                                .iter()
                                .map(|w| w.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
                });
            }
            "--sizes" => args.sizes = grab().split(',').map(parse_size).collect(),
            "--seeds" => {
                args.seeds = parse_list("--seeds", &grab(), |s| {
                    s.parse().map_err(|_| format!("bad seed {s:?}"))
                });
            }
            "--cores" => {
                axes.cores = parse_list("--cores", &grab(), |c| {
                    c.parse().map_err(|_| format!("bad core count {c:?}"))
                });
            }
            "--dram-preset" => {
                axes.stacked = parse_list("--dram-preset", &grab(), DramPreset::parse);
            }
            "--offchip-preset" => {
                axes.offchip = parse_list("--offchip-preset", &grab(), DramPreset::parse);
            }
            "--page-bytes" => {
                axes.page_bytes = parse_list("--page-bytes", &grab(), |b| {
                    b.parse().map_err(|_| format!("bad page size {b:?}"))
                });
            }
            "--ways" => {
                axes.ways = parse_list("--ways", &grab(), |w| {
                    w.parse().map_err(|_| format!("bad way count {w:?}"))
                });
            }
            "--way-policy" => {
                axes.way_policies = parse_list("--way-policy", &grab(), WayPolicy::parse);
            }
            "--scenario" => scenario_files.push(grab()),
            "--dump-scenario" => args.dump_scenario = true,
            "--shard" => {
                args.shard = Some(
                    ShardSpec::parse(&grab()).unwrap_or_else(|e| fail(&format!("--shard: {e}"))),
                );
            }
            "--merge" => {
                // Greedy: `--merge shard-*.json` shell-expands to many
                // paths; consume values until the next flag.
                let first = grab();
                if first.starts_with("--") {
                    fail(&format!(
                        "--merge needs at least one shard-output file (got flag {first})"
                    ));
                }
                args.merge.push(first);
                while let Some(path) = it.next_if(|a| !a.starts_with("--")) {
                    args.merge.push(path);
                }
            }
            "--orchestrate" => {
                let n = grab();
                args.orchestrate = Some(
                    n.parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| fail(&format!("bad --orchestrate worker count {n:?}"))),
                );
            }
            "--orchestrate-dir" => args.orchestrate_dir = Some(PathBuf::from(grab())),
            "--max-restarts" => {
                let k = grab();
                args.max_restarts = k
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --max-restarts {k:?}")));
            }
            "--skip-cells" => {
                args.skip_cells = parse_list("--skip-cells", &grab(), CellKey::from_hex);
            }
            "--partition" => {
                args.partition = match grab().as_str() {
                    "hash" => Partition::Hash,
                    "balanced" => Partition::Balanced,
                    p => fail(&format!("unknown partition {p:?} (hash|balanced)")),
                };
            }
            "--costs" => args.costs = Some(PathBuf::from(grab())),
            "--list" => args.list = true,
            "--canonical" => args.canonical = true,
            "--metric" => {
                args.metric = match grab().as_str() {
                    "speedup" => Metric::Speedup,
                    "miss" => Metric::Miss,
                    m => fail(&format!("unknown metric {m:?} (speedup|miss)")),
                };
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if axes.any() {
        args.scenarios.extend(axes.cross_product());
    }
    for file in &scenario_files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("cannot read scenario file {file}: {e}")));
        let loaded = scenarios_from_json(&text).unwrap_or_else(|e| fail(&format!("{file}: {e}")));
        args.scenarios.extend(loaded);
    }
    let mut names: Vec<&str> = Vec::new();
    for s in &args.scenarios {
        if names.contains(&s.name.as_str()) {
            fail(&format!(
                "duplicate scenario name {:?} across axis flags and scenario files",
                s.name
            ));
        }
        names.push(&s.name);
    }
    if args.designs.is_empty() || args.workloads.is_empty() || args.sizes.is_empty() {
        fail("designs, workloads, and sizes must all be non-empty");
    }
    if args.shard.is_some() && !args.merge.is_empty() {
        fail("--shard and --merge are mutually exclusive");
    }
    if args.orchestrate.is_some() && (args.shard.is_some() || !args.merge.is_empty()) {
        fail(
            "--orchestrate supervises its own shard workers and merges their outputs; \
             it cannot combine with --shard or --merge",
        );
    }
    if !args.skip_cells.is_empty() && args.shard.is_none() {
        fail(
            "--skip-cells applies to --shard worker processes \
             (the orchestrator passes it when quarantining a cell)",
        );
    }
    if args.partition == Partition::Balanced && args.shard.is_none() && args.orchestrate.is_none() {
        fail(
            "--partition balanced shapes the split across shard workers; it needs \
             --shard I/N or --orchestrate N (in-process runs schedule with --costs alone)",
        );
    }
    args
}

/// Loads a cost model from `path`, or starts from the structural prior
/// when the file does not exist yet (the first run creates it).
fn load_costs(path: &Path) -> CostModel {
    if path.exists() {
        CostModel::load(path).unwrap_or_else(|e| fail(&e))
    } else {
        CostModel::new()
    }
}

/// Prints every valid spelling the grid flags accept, in one place.
fn print_lists() {
    println!("valid sweep axis values");
    println!();
    println!("designs (--designs):");
    println!("  {}", Design::VALID_NAMES);
    println!("dram presets (--dram-preset / --offchip-preset):");
    println!("  {}", DramPreset::valid_names());
    println!("way policies (--way-policy):");
    println!("  {}", WayPolicy::valid_names());
    println!("workloads (--workloads):");
    for w in workloads::all() {
        println!(
            "  {:<16} ({} cores, {} MB footprint)",
            w.name,
            w.cores,
            w.mem_footprint_bytes >> 20
        );
    }
    println!("sizes (--sizes): K/M/G suffixed (512M, 1G) or raw bytes with B");
    println!("shards (--shard): I/N with 1-based I (1/2 and 2/2 halve a campaign)");
}

/// Runs one shard of the partition and writes the shard-output file.
fn run_shard(opts: &BenchOpts, sweep: &SweepArgs, grid: &ScenarioGrid, shard: ShardSpec) {
    let Some(json) = &opts.json else {
        fail("--shard needs --json PATH (the shard-output file --merge will read)");
    };
    if opts.csv.is_some() {
        fail("--csv is unavailable with --shard (partial grid); render it from --merge");
    }
    let mut campaign = opts.campaign();
    if !sweep.skip_cells.is_empty() {
        campaign = campaign.exclude(sweep.skip_cells.iter().copied());
    }
    let model = sweep.costs.as_ref().map(|p| load_costs(p));
    if let Some(m) = &model {
        // Longest-first ordering inside the shard; workers never write
        // the shared costs file (the parent folds timings in post-merge).
        campaign = campaign.costs(m.clone());
    }
    let out = match sweep.partition {
        Partition::Hash => match sweep.metric {
            Metric::Speedup => campaign.run_shard_speedups(grid, shard),
            Metric::Miss => campaign.run_shard(grid, shard),
        },
        Partition::Balanced => {
            // Recompute the same deterministic LPT partition the parent
            // computed: same costs file + same plan → same bins, so the
            // explicit assignment needs no side channel.
            let speedups = sweep.metric == Metric::Speedup;
            let plan = TaskPlan::lower(&opts.cfg, grid, speedups);
            let bins = model
                .unwrap_or_default()
                .partition(&plan, opts.cfg.accesses, shard.count);
            let bin = bins.get(shard.index as usize).cloned().unwrap_or_default();
            campaign.run_plan(grid, speedups, &BalancedExecutor::new(shard, bin))
        }
    };
    let executed = out.cells.len() - out.resumed_cells;
    println!(
        "shard {}: {} of {} cells ({} executed, {} restored from journal); \
         plan fingerprint {}",
        shard.display(),
        out.cells.len(),
        out.total_cells,
        executed,
        out.resumed_cells,
        out.fingerprint,
    );
    orchestrator::write_shard_output(json, &out).unwrap_or_else(|e| fail(&e));
    println!("(wrote {})", json.display());
}

/// Reads shard-output files, verifies each against the plan this
/// process's own grid flags lower to, and reassembles the full result.
fn merge_outputs(opts: &BenchOpts, sweep: &SweepArgs, grid: &ScenarioGrid) -> CampaignResult {
    let plan = TaskPlan::lower(&opts.cfg, grid, sweep.metric == Metric::Speedup);
    let mut outputs = Vec::new();
    for file in &sweep.merge {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("cannot read shard output {file}: {e}")));
        let out: ShardOutput = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("{file}: not a shard output ({e})")));
        if out.fingerprint != plan.fingerprint() {
            fail(&format!(
                "{file}: shard fingerprint {} does not match this invocation's plan {} — \
                 --merge must be given the same grid and config flags the shards ran with",
                out.fingerprint,
                plan.fingerprint()
            ));
        }
        for cell in &out.cells {
            let expect = plan.cells.get(cell.index).unwrap_or_else(|| {
                fail(&format!("{file}: cell index {} out of range", cell.index))
            });
            if expect.key.hex() != cell.key {
                fail(&format!(
                    "{file}: cell {} has key {} but the plan expects {}",
                    cell.index,
                    cell.key,
                    expect.key.hex()
                ));
            }
        }
        outputs.push(out);
    }
    merge_shards(outputs).unwrap_or_else(|e| fail(&e))
}

/// Reconstructs this invocation's argv for a shard worker process:
/// everything the user passed, minus the flags the orchestrator owns
/// (`--orchestrate*`, `--max-restarts`), re-injects per worker
/// (`--shard`, `--json`, `--journal`, `--resume`, `--threads`,
/// `--skip-cells`) or per run (`--costs` pointing at the parent's
/// snapshot, `--partition`), or that only makes sense in the parent
/// (sinks, `--canonical`, progress streams — workers log per-cell
/// lines to their own log files instead).
fn worker_argv(worker_threads: usize) -> Vec<String> {
    const DROP_WITH_VALUE: &[&str] = &[
        "--orchestrate",
        "--orchestrate-dir",
        "--max-restarts",
        "--json",
        "--csv",
        "--journal",
        "--threads",
        "--skip-cells",
        "--shard",
        "--costs",
        "--partition",
    ];
    const DROP_FLAG: &[&str] = &["--resume", "--canonical", "--list", "--dump-scenario"];
    let mut out = Vec::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        if DROP_WITH_VALUE.contains(&arg.as_str()) {
            it.next();
            continue;
        }
        if DROP_FLAG.contains(&arg.as_str()) || arg.starts_with("--progress") {
            continue;
        }
        if arg == "--merge" {
            while it.next_if(|a| !a.starts_with("--")).is_some() {}
            continue;
        }
        out.push(arg);
    }
    out.push("--threads".to_string());
    out.push(worker_threads.to_string());
    out
}

/// Runs the campaign as `workers` supervised shard worker processes and
/// returns the (possibly partial) outcome.
fn run_orchestrated(
    opts: &BenchOpts,
    sweep: &SweepArgs,
    grid: &ScenarioGrid,
    workers: u32,
) -> OrchestrateOutcome {
    if opts.journal.is_some() || opts.resume {
        fail(
            "--orchestrate manages a journal per worker (always resumed); \
             --journal/--resume do not apply to the supervisor",
        );
    }
    let plan = TaskPlan::lower(&opts.cfg, grid, sweep.metric == Metric::Speedup);
    let dir = sweep
        .orchestrate_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!(".unison-orchestrate-{}", plan.fingerprint())));
    let mut cfg = OrchestratorConfig::new(workers, dir.clone());
    cfg.max_restarts = sweep.max_restarts;
    cfg.quiet = !opts.progress_config().enabled();

    // Resolve the cost model: an explicit --costs file, else one left in
    // the orchestrate dir by a previous run, else the structural prior.
    // Journals a crashed or interrupted run left behind are free data.
    let costs_path = dir.join("costs.json");
    let mut model = load_costs(sweep.costs.as_deref().unwrap_or(&costs_path));
    for w in 0..workers {
        let journal = dir.join(format!("worker-{w}.journal.jsonl"));
        if journal.exists() {
            let _ = model.learn_journal(&journal);
        }
    }
    // Snapshot the resolved model where every worker will read it, so
    // parent and workers compute identical balanced partitions even if
    // the source file changes mid-run.
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
    model.save(&costs_path).unwrap_or_else(|e| fail(&e));
    if sweep.partition == Partition::Balanced {
        cfg.assignments = Some(model.partition(&plan, opts.cfg.accesses, workers));
    }

    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate the sweep executable: {e}")));
    // Split the pool across workers so N workers don't oversubscribe the
    // machine N-fold.
    let worker_threads = opts.threads.div_ceil(workers.max(1) as usize).max(1);
    let base_args = worker_argv(worker_threads);
    let balanced = sweep.partition == Partition::Balanced;
    let snapshot = costs_path.clone();
    let launch = move |l: &WorkerLaunch<'_>| {
        let mut cmd = Command::new(&exe);
        cmd.args(&base_args)
            .arg("--shard")
            .arg(l.shard.display())
            .arg("--json")
            .arg(&l.paths.output)
            .arg("--journal")
            .arg(&l.paths.journal)
            .arg("--resume")
            .arg("--costs")
            .arg(&snapshot);
        if balanced {
            cmd.arg("--partition").arg("balanced");
        }
        if !l.skip.is_empty() {
            cmd.arg("--skip-cells").arg(l.skip.join(","));
        }
        cmd
    };
    let outcome = orchestrator::run(&plan, &cfg, &launch).unwrap_or_else(|e| fail(&e));

    // Fold the fresh wall times back in so the next run partitions on
    // measured costs, not the prior; mirror to the user's file if named.
    for cell in outcome.result.cells() {
        model.observe(cell);
    }
    model.save(&costs_path).unwrap_or_else(|e| fail(&e));
    if let Some(user) = &sweep.costs {
        model.save(user).unwrap_or_else(|e| fail(&e));
    }
    outcome
}

fn main() {
    let (opts, extra) = BenchOpts::parse_known(std::env::args().skip(1));
    let sweep = parse_sweep_args(extra);
    if sweep.list {
        print_lists();
        return;
    }

    // The effective scenario axis (what an empty axis means), for the
    // dump and the result tables.
    let scenarios: Vec<Scenario> = if sweep.scenarios.is_empty() {
        vec![Scenario::default()]
    } else {
        sweep.scenarios.clone()
    };
    if sweep.dump_scenario {
        println!(
            "{}",
            serde_json::to_string_pretty(&scenarios).expect("scenarios serialize")
        );
        return;
    }

    let mut grid = ScenarioGrid::new()
        .designs(sweep.designs.clone())
        .workloads(sweep.workloads.clone())
        .sizes(sweep.sizes.clone());
    if !sweep.scenarios.is_empty() {
        grid = grid.scenarios(sweep.scenarios.clone());
    }
    if !sweep.seeds.is_empty() {
        grid = grid.seeds(sweep.seeds.clone());
    }

    if let Some(shard) = sweep.shard {
        run_shard(&opts, &sweep, &grid, shard);
        return;
    }

    opts.print_header(if sweep.orchestrate.is_some() {
        "Sweep: orchestrated campaign"
    } else if sweep.merge.is_empty() {
        "Sweep: user-specified experiment grid"
    } else {
        "Sweep: merged shard outputs"
    });
    if scenarios.len() > 1 || scenarios[0] != Scenario::default() {
        println!(
            "scenarios: {}",
            scenarios
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }

    let mut orchestrated: Option<OrchestrateOutcome> = None;
    let results = if let Some(workers) = sweep.orchestrate {
        let outcome = run_orchestrated(&opts, &sweep, &grid, workers);
        println!(
            "orchestrated: {} worker(s), {} restart(s); manifest {}",
            workers,
            outcome.manifest.total_restarts,
            outcome.manifest_path.display()
        );
        println!();
        let result = outcome.result.clone();
        orchestrated = Some(outcome);
        result
    } else if sweep.merge.is_empty() {
        let mut campaign = opts.campaign();
        let model = sweep.costs.as_ref().map(|p| load_costs(p));
        if let Some(m) = &model {
            campaign = campaign.costs(m.clone());
        }
        let results = match sweep.metric {
            Metric::Speedup => campaign.run_speedups(&grid),
            Metric::Miss => campaign.run(&grid),
        };
        // Fold measured wall times back into the costs file so the next
        // invocation schedules on data instead of the structural prior.
        if let (Some(path), Some(mut m)) = (&sweep.costs, model) {
            for cell in results.cells() {
                m.observe(cell);
            }
            m.save(path).unwrap_or_else(|e| fail(&e));
        }
        results
    } else {
        merge_outputs(&opts, &sweep, &grid)
    };

    let size_labels: Vec<String> = sweep.sizes.iter().map(|&s| size_label(s)).collect();
    let headers: Vec<String> = std::iter::once("Design".to_string())
        .chain(size_labels.clone())
        .collect();
    let seeds_shown: Vec<u64> = if sweep.seeds.is_empty() {
        vec![opts.cfg.seed]
    } else {
        sweep.seeds.clone()
    };

    for scenario in &scenarios {
        let scope = if scenarios.len() > 1 {
            format!(" [{}]", scenario.name)
        } else {
            String::new()
        };
        for w in &sweep.workloads {
            println!(
                "-- {}{} ({}) --",
                w.name,
                scope,
                match sweep.metric {
                    Metric::Speedup => "speedup over NoCache",
                    Metric::Miss => "miss ratio %",
                }
            );
            let mut t = Table::new(headers.clone());
            for d in &sweep.designs {
                let mut cells = vec![d.name()];
                for &size in &sweep.sizes {
                    // Average over seeds so multi-seed sweeps stay one table.
                    let vals: Vec<f64> = seeds_shown
                        .iter()
                        .filter_map(|&seed| {
                            results.get_in_scenario(&scenario.name, w.name, &d.name(), size, seed)
                        })
                        .map(|c| match sweep.metric {
                            Metric::Speedup => c.speedup.unwrap_or(f64::NAN),
                            Metric::Miss => c.run.cache.miss_ratio(),
                        })
                        .collect();
                    let v = unison_harness::stats::mean(&vals).unwrap_or(f64::NAN);
                    cells.push(match sweep.metric {
                        Metric::Speedup => speedup(v),
                        Metric::Miss => pct(v),
                    });
                }
                t.row(cells);
            }
            t.print();
            println!();
        }

        if sweep.metric == Metric::Speedup && sweep.workloads.len() > 1 {
            println!("-- Geometric Mean across workloads{scope} --");
            let mut t = Table::new(headers.clone());
            for d in &sweep.designs {
                let mut cells = vec![d.name()];
                for &size in &sweep.sizes {
                    cells.push(
                        results
                            .geomean_speedup_in_scenario(&scenario.name, &d.name(), size)
                            .map(speedup)
                            .unwrap_or_else(|| "-".to_string()),
                    );
                }
                t.row(cells);
            }
            t.print();
            println!();
        }
    }

    let restored = if results.resumed_cells > 0 {
        format!(" ({} restored from journal)", results.resumed_cells)
    } else {
        String::new()
    };
    println!(
        "{} cells on {} thread(s){restored}; baselines: {} simulated, {} memo hits; \
         traces: {} generated, {} memo hits, {} disk hits",
        results.cells().len(),
        opts.threads,
        results.baseline_runs,
        results.baseline_hits,
        results.trace_generated,
        results.trace_memo_hits,
        results.trace_disk_hits,
    );
    let summary = results.summary();
    if !results.timing.is_zero() {
        println!(
            "wall time: {} ({} trace prefill, {} baselines, {} cells); \
             mean cell {} ({} aggregate compute)",
            fmt_ns(results.timing.total_ns),
            fmt_ns(results.timing.trace_prefill_ns),
            fmt_ns(results.timing.baseline_ns),
            fmt_ns(results.timing.cells_ns),
            fmt_ns(summary.cell_wall_ns_mean),
            fmt_ns(summary.cell_wall_ns_total),
        );
    }

    if sweep.canonical {
        // The byte-identity artifact: timing stripped, cells only — what
        // the CI shard-merge smoke byte-compares across reruns.
        opts.maybe_dump_json(&results.canonical_cells());
    } else {
        opts.maybe_dump_campaign_json(&results);
    }
    opts.maybe_dump_csv(&results);

    // An orchestrated campaign that degraded still rendered everything
    // recoverable above; now say exactly what is missing and exit
    // nonzero so scripts cannot mistake a partial sweep for a full one.
    if let Some(outcome) = &orchestrated {
        if !outcome.is_complete() {
            let m = &outcome.manifest;
            eprintln!();
            eprintln!(
                "error: orchestrated campaign is PARTIAL: {} of {} cells completed, \
                 {} quarantined",
                m.completed_cells,
                m.total_cells,
                m.quarantined.len()
            );
            for q in &m.quarantined {
                eprintln!(
                    "  cell {} key={} (worker {}): {}{}",
                    q.index,
                    q.key,
                    q.worker,
                    q.cell,
                    q.error
                        .as_ref()
                        .map(|e| format!(" — {e}"))
                        .unwrap_or_default()
                );
            }
            eprintln!("  manifest: {}", outcome.manifest_path.display());
            std::process::exit(1);
        }
    }
}
