//! Table II: comparison of key characteristics of the three DRAM cache
//! schemes (computed from the layout models, not hard-coded).
//!
//! Pass `--features` to also print the qualitative Table I matrix.

use unison_bench::table::size_label;
use unison_bench::Table;
use unison_core::layout::{AlloyRowLayout, FcTagModel, UnisonRowLayout};
use unison_predictors::{FootprintTable, MissPredictor, SingletonTable, WayPredictor};

fn main() {
    let features = std::env::args().any(|a| a == "--features");
    println!("== Table II: key characteristics @ 8GB stacked DRAM ==\n");

    const GB8: u64 = 8 << 30;
    let alloy = AlloyRowLayout::paper();
    let uc960 = UnisonRowLayout::new(15, 4);
    let uc1984 = UnisonRowLayout::new(31, 4);
    let fc = FcTagModel::for_cache_size(GB8);

    let mp = MissPredictor::paper_default();
    let wp_small = WayPredictor::for_cache_size(1 << 30, 4);
    let wp_large = WayPredictor::for_cache_size(GB8, 4);
    let ft = FootprintTable::paper_default(15);
    let st = SingletonTable::paper_default();

    let mut t = Table::new([
        "Characteristic",
        "Alloy Cache",
        "Footprint Cache",
        "Unison Cache",
    ]);
    t.row([
        "Associativity".to_string(),
        "direct-mapped".to_string(),
        "32-way".to_string(),
        "4-way".to_string(),
    ]);
    t.row([
        "64B blocks per 8KB row".to_string(),
        alloy.tads_per_row.to_string(),
        "128".to_string(),
        format!("{}-{}", uc960.blocks_per_row, uc1984.blocks_per_row),
    ]);
    t.row([
        "SRAM tag array @ 8GB".to_string(),
        "-".to_string(),
        format!("~{:.0}MB", fc.tag_mb),
        "-".to_string(),
    ]);
    let a_tags = alloy.in_dram_tag_bytes(GB8);
    let u_tags_lo = uc1984.in_dram_tag_bytes(GB8);
    let u_tags_hi = uc960.in_dram_tag_bytes(GB8);
    t.row([
        "In-DRAM tag size @ 8GB".to_string(),
        format!(
            "{} ({:.1}% of DRAM)",
            size_label(a_tags),
            a_tags as f64 / GB8 as f64 * 100.0
        ),
        "-".to_string(),
        format!(
            "{}-{}MB ({:.1}-{:.1}%)",
            u_tags_lo >> 20,
            u_tags_hi >> 20,
            u_tags_lo as f64 / GB8 as f64 * 100.0,
            u_tags_hi as f64 / GB8 as f64 * 100.0
        ),
    ]);
    t.row([
        "Miss-predictor size".to_string(),
        format!(
            "{}B total ({}B/core x16)",
            mp.storage_bytes(),
            mp.storage_bytes() / 16
        ),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.row([
        "Way predictor".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!(
            "{}-{}KB",
            wp_small.storage_bytes() / 1024,
            wp_large.storage_bytes() / 1024
        ),
    ]);
    t.row([
        "Footprint history table".to_string(),
        "-".to_string(),
        format!("{}KB", ft.storage_bytes() / 1024),
        format!("{}KB", ft.storage_bytes() / 1024),
    ]);
    t.row([
        "Singleton table".to_string(),
        "-".to_string(),
        format!("{}KB", st.storage_bytes() / 1024),
        format!("{}KB", st.storage_bytes() / 1024),
    ]);
    t.row([
        "Hit latency".to_string(),
        "predictor + DRAM TAD read".to_string(),
        format!("SRAM tag ({} cy @8GB) + DRAM read", fc.latency_cycles),
        "overlapped DRAM tag + data reads".to_string(),
    ]);
    t.row([
        "Miss latency".to_string(),
        "predictor lookup".to_string(),
        "SRAM tag lookup".to_string(),
        "DRAM tag lookup".to_string(),
    ]);
    t.print();

    if features {
        println!("\n== Table I: qualitative comparison ==\n");
        let mut f = Table::new(["Property", "AC", "FC", "UC"]);
        f.row(["No SRAM tag overhead", "yes", "no", "yes"]);
        f.row(["Low hit latency", "yes", "no", "yes"]);
        f.row(["High hit rate", "no", "yes", "yes"]);
        f.row(["High effective capacity", "no", "no", "yes"]);
        f.row(["Scalability", "yes", "no", "yes"]);
        f.print();
    }
}
