//! Ablation (§III-A): "a static 'always-hit' prediction would achieve
//! accuracy similar to a dynamic hit prediction" for Unison Cache.
//!
//! Runs a MAP-I shadow predictor over Unison Cache's hit/miss stream and
//! compares its accuracy against the static always-hit policy (whose
//! accuracy equals the hit ratio). If the two are close, Alloy's miss
//! predictor buys nothing at Unison's hit rates — the paper's argument
//! for dropping it.
//!
//! The shadow-predictor cells are custom, so they run through the
//! harness's generic parallel map (one cell per workload).

use serde::Serialize;
use unison_bench::shadow::ShadowMissPredictor;
use unison_bench::table::pct;
use unison_bench::{table5_size, BenchOpts, Table};
use unison_core::{DramCacheModel, UnisonCache, UnisonConfig};
use unison_sim::System;
use unison_trace::{workloads, WorkloadGen, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    workload: String,
    hit_ratio: f64,
    static_always_hit_accuracy: f64,
    dynamic_map_i_accuracy: f64,
}

fn run_cell(opts: &BenchOpts, w: &WorkloadSpec) -> Row {
    let nominal = table5_size(w.name);
    let scaled_cache = opts.cfg.scaled_cache_bytes(nominal);
    let cache = ShadowMissPredictor::new(UnisonCache::new(
        UnisonConfig::new(scaled_cache).with_nominal(nominal),
    ));
    let sys_spec = opts.cfg.system;
    let mut sys = System::new(
        sys_spec.resolved_cores(w) as usize,
        cache,
        sys_spec.mem_ports(),
        sys_spec.core,
    );
    let mut trace = WorkloadGen::new(
        sys_spec.effective_workload(w).scaled(opts.cfg.scale),
        opts.cfg.seed,
    );
    let total = opts.cfg.accesses_for(scaled_cache);
    let warm = (total as f64 * opts.cfg.warmup_fraction) as u64;
    sys.run(&mut trace, warm);
    sys.reset_measurement();
    sys.run(&mut trace, total - warm);
    let hit_ratio = 1.0 - sys.cache().stats().miss_ratio();
    let (cache, _) = sys.into_parts();
    Row {
        workload: w.name.to_string(),
        hit_ratio,
        static_always_hit_accuracy: hit_ratio,
        dynamic_map_i_accuracy: cache.shadow_accuracy(),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.print_header("Ablation: static always-hit vs dynamic MAP-I prediction on Unison Cache");

    let cells: Vec<WorkloadSpec> = workloads::all().into_iter().collect();
    let rows = opts.campaign().map(&cells, |w| run_cell(&opts, w));

    let mut t = Table::new([
        "Workload",
        "UC hit ratio",
        "static accuracy",
        "dynamic MAP-I accuracy",
    ]);
    for r in &rows {
        t.row([
            r.workload.clone(),
            pct(r.hit_ratio),
            pct(r.static_always_hit_accuracy),
            pct(r.dynamic_map_i_accuracy),
        ]);
    }
    t.print();
    println!("\npaper claim: with ~90%+ hit ratios the static policy matches the dynamic");
    println!("             predictor, so Unison Cache needs no miss predictor.");
    opts.maybe_dump_json(&rows);
}
