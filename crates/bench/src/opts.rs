//! Minimal command-line handling shared by the experiment binaries.

use std::path::PathBuf;

use unison_sim::SimConfig;

/// Parsed options for one experiment binary.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Simulation configuration (scale, accesses, seed, core model).
    pub cfg: SimConfig,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Quick mode: heavily scaled-down smoke run.
    pub quick: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            cfg: SimConfig::bench_default(),
            json: None,
            quick: false,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`Self::from_args`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = BenchOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| -> String {
                it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--scale" => opts.cfg.scale = grab("--scale").parse().unwrap_or_else(|_| usage("bad --scale")),
                "--accesses" => {
                    opts.cfg.accesses = grab("--accesses").parse().unwrap_or_else(|_| usage("bad --accesses"))
                }
                "--seed" => opts.cfg.seed = grab("--seed").parse().unwrap_or_else(|_| usage("bad --seed")),
                "--json" => opts.json = Some(PathBuf::from(grab("--json"))),
                "--quick" => {
                    opts.quick = true;
                    opts.cfg = SimConfig::quick_test();
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if opts.cfg.scale == 0 {
            usage("--scale must be positive");
        }
        opts
    }

    /// Prints the standard experiment header (system configuration per
    /// Table III plus run-scale disclosure).
    pub fn print_header(&self, what: &str) {
        println!("== {what} ==");
        println!(
            "system: 16-core pod @3GHz | stacked DRAM 4ch x 128-bit @1.6GHz | off-chip DDR3-1600 (Table III)"
        );
        println!(
            "run: scale 1/{} (cache sizes and workload footprints divided together), >= {} accesses/run, seed {}",
            self.cfg.scale, self.cfg.accesses, self.cfg.seed
        );
        println!();
    }

    /// Writes `value` as pretty JSON if `--json` was given.
    pub fn maybe_dump_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = serde_json::to_string_pretty(value).expect("serialize results");
            std::fs::write(path, s).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("\n(wrote {})", path.display());
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale N] [--accesses N] [--seed N] [--json PATH] [--quick]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bench_defaults() {
        let o = BenchOpts::parse(Vec::<String>::new());
        assert_eq!(o.cfg.scale, SimConfig::bench_default().scale);
        assert!(o.json.is_none());
    }

    #[test]
    fn parses_flags() {
        let o = BenchOpts::parse(
            ["--scale", "16", "--seed", "7", "--json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.cfg.scale, 16);
        assert_eq!(o.cfg.seed, 7);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
    }

    #[test]
    fn quick_switches_config() {
        let o = BenchOpts::parse(["--quick".to_string()]);
        assert!(o.quick);
        assert_eq!(o.cfg.scale, SimConfig::quick_test().scale);
    }
}
