//! Minimal command-line handling shared by the experiment binaries.

use std::path::PathBuf;

use unison_harness::{sink, Campaign, CampaignResult, ProgressConfig, TracePolicy};
use unison_sim::SimConfig;

/// Environment variable naming the on-disk trace-artifact cache
/// directory; `--trace-cache PATH` overrides it, `--no-trace-cache`
/// disables artifact sharing altogether.
pub const TRACE_CACHE_ENV: &str = "UNISON_TRACE_CACHE";

/// Parsed options for one experiment binary.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Simulation configuration (scale, accesses, seed, core model).
    pub cfg: SimConfig,
    /// Worker threads for the experiment campaign (`1` = serial).
    pub threads: usize,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Optional CSV output path (flat per-cell campaign results).
    pub csv: Option<PathBuf>,
    /// Quick mode: heavily scaled-down smoke run.
    pub quick: bool,
    /// On-disk trace-artifact cache directory (`--trace-cache`, falling
    /// back to [`TRACE_CACHE_ENV`]).
    pub trace_cache: Option<PathBuf>,
    /// Disables trace-artifact sharing entirely (`--no-trace-cache`):
    /// every cell regenerates its stream, the pre-artifact behaviour.
    pub no_trace_cache: bool,
    /// Checkpoint-journal path (`--journal`): completed cells append to
    /// this JSONL file as they finish. Grid campaigns only —
    /// [`Campaign::map`]-based custom cells do not checkpoint.
    pub journal: Option<PathBuf>,
    /// Resume from the journal (`--resume`): cells already recorded
    /// there are restored instead of re-simulated.
    pub resume: bool,
    /// Explicit progress stream (`--progress[=SECS]` for human-readable
    /// stderr lines, `--progress-json[=SECS]` for JSONL events). `None`
    /// keeps the historical default: per-cell lines unless `--quick`.
    pub progress: Option<ProgressConfig>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            cfg: SimConfig::bench_default(),
            threads: unison_harness::pool::default_threads(),
            json: None,
            csv: None,
            quick: false,
            trace_cache: None,
            no_trace_cache: false,
            journal: None,
            resume: false,
            progress: None,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`Self::from_args`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let (opts, leftover) = Self::parse_known(args);
        if let Some(flag) = leftover.first() {
            usage(&format!("unknown flag {flag}"));
        }
        opts
    }

    /// Parses the shared flags, returning unrecognized arguments to the
    /// caller (used by binaries like `sweep` that add their own flags).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed shared-flag values.
    pub fn parse_known<I: IntoIterator<Item = String>>(args: I) -> (Self, Vec<String>) {
        Self::parse_known_with_env(args, std::env::var(TRACE_CACHE_ENV).ok())
    }

    /// [`Self::parse_known`] with the [`TRACE_CACHE_ENV`] value passed
    /// explicitly (the testable core — tests must not mutate process
    /// environment shared with concurrently running tests).
    pub fn parse_known_with_env<I: IntoIterator<Item = String>>(
        args: I,
        env_trace_cache: Option<String>,
    ) -> (Self, Vec<String>) {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = BenchOpts::default();
        // Apply --quick's base config *before* the flag loop so explicit
        // flags win regardless of argument order (`--seed 7 --quick`
        // must honor seed 7 just like `--quick --seed 7`).
        if args.iter().any(|a| a == "--quick") {
            opts.quick = true;
            opts.cfg = SimConfig::quick_test();
        }
        let mut leftover = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--scale" => {
                    opts.cfg.scale = grab("--scale")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --scale"))
                }
                "--accesses" => {
                    opts.cfg.accesses = grab("--accesses")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --accesses"))
                }
                "--seed" => {
                    opts.cfg.seed = grab("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed"))
                }
                "--threads" => {
                    opts.threads = grab("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --threads"))
                }
                "--json" => opts.json = Some(PathBuf::from(grab("--json"))),
                "--csv" => opts.csv = Some(PathBuf::from(grab("--csv"))),
                "--trace-cache" => {
                    opts.trace_cache = Some(PathBuf::from(grab("--trace-cache")));
                }
                "--no-trace-cache" => opts.no_trace_cache = true,
                "--journal" => opts.journal = Some(PathBuf::from(grab("--journal"))),
                "--resume" => opts.resume = true,
                "--quick" => {} // already applied before the loop
                "--help" | "-h" => usage(""),
                s if s == "--progress-json" || s.starts_with("--progress-json=") => {
                    opts.progress = Some(ProgressConfig::json(parse_interval(s)));
                }
                s if s == "--progress" || s.starts_with("--progress=") => {
                    opts.progress = Some(ProgressConfig::human(parse_interval(s)));
                }
                other => leftover.push(other.to_string()),
            }
        }
        if opts.trace_cache.is_none() && !opts.no_trace_cache {
            opts.trace_cache = env_trace_cache.map(PathBuf::from);
        }
        if opts.cfg.scale == 0 {
            usage("--scale must be positive");
        }
        if opts.threads == 0 {
            usage("--threads must be positive");
        }
        if opts.resume && opts.journal.is_none() {
            usage("--resume needs --journal PATH (the file to restore from)");
        }
        (opts, leftover)
    }

    /// The trace-sourcing policy these options select: disabled, shared
    /// in-memory, or shared + persisted to the cache directory.
    pub fn trace_policy(&self) -> TracePolicy {
        if self.no_trace_cache {
            TracePolicy::Generate
        } else if let Some(dir) = &self.trace_cache {
            TracePolicy::Disk(dir.clone())
        } else {
            TracePolicy::Memoize
        }
    }

    /// The progress configuration these options select: the explicit
    /// `--progress`/`--progress-json` stream when given, otherwise the
    /// historical default (per-cell lines, suppressed in `--quick` smoke
    /// runs to keep bench output clean).
    pub fn progress_config(&self) -> ProgressConfig {
        self.progress.unwrap_or(if self.quick {
            ProgressConfig::off()
        } else {
            ProgressConfig::per_cell()
        })
    }

    /// Builds the experiment [`Campaign`] for these options: the shared
    /// `SimConfig`, the requested pool width, and progress streaming
    /// ([`Self::progress_config`]).
    pub fn campaign(&self) -> Campaign {
        let mut c = Campaign::new(self.cfg)
            .threads(self.threads)
            .progress_config(self.progress_config())
            .traces(self.trace_policy());
        if let Some(path) = &self.journal {
            c = c.journal(path.clone()).resume(self.resume);
        }
        c
    }

    /// Prints the standard experiment header (the configured system —
    /// Table III by default — plus run-scale disclosure).
    pub fn print_header(&self, what: &str) {
        let sys = &self.cfg.system;
        let stacked = sys.stacked.config();
        let cores = match sys.cores {
            Some(c) => format!("{c}-core pod"),
            None => "16-core pod".to_string(),
        };
        println!("== {what} ==");
        println!(
            "system: {cores} @3GHz | stacked DRAM '{}' {}ch x {}-bit @{:.1}GHz | off-chip '{}' (Table III defaults)",
            stacked.name,
            stacked.channels,
            stacked.bus_bits,
            stacked.clock_mhz as f64 / 1000.0,
            sys.offchip.config().name,
        );
        println!(
            "run: scale 1/{} (cache sizes and workload footprints divided together), >= {} accesses/run, seed {}, {} worker thread(s)",
            self.cfg.scale, self.cfg.accesses, self.cfg.seed, self.threads
        );
        println!();
    }

    /// Writes `value` as pretty JSON if `--json` was given.
    ///
    /// A write failure (disk full, bad directory, permissions) reports a
    /// clean one-line `error: cannot write …` and exits 1 — the results
    /// were computed, so a panic with a backtrace helps nobody.
    pub fn maybe_dump_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let s = serde_json::to_string_pretty(value)
                .unwrap_or_else(|e| sink_failed(&format!("results do not serialize: {e}")));
            std::fs::write(path, s).unwrap_or_else(|e| {
                sink_failed(&format!(
                    "cannot write JSON results to {}: {e}",
                    path.display()
                ))
            });
            println!("\n(wrote {})", path.display());
        }
    }

    /// Writes the campaign's full JSON document (counter/timing summary
    /// plus cells, [`sink::to_json`]) if `--json` was given. Reports a
    /// one-line error and exits 1 on write failure.
    pub fn maybe_dump_campaign_json(&self, results: &CampaignResult) {
        if let Some(path) = &self.json {
            sink::write_json(results, path).unwrap_or_else(|e| sink_failed(&e.to_string()));
            println!("\n(wrote {})", path.display());
        }
    }

    /// Writes the campaign's flat CSV if `--csv` was given. Reports a
    /// one-line error and exits 1 on write failure.
    pub fn maybe_dump_csv(&self, results: &CampaignResult) {
        if let Some(path) = &self.csv {
            sink::write_csv(results, path).unwrap_or_else(|e| sink_failed(&e.to_string()));
            println!("\n(wrote {})", path.display());
        }
    }
}

/// A result sink could not be written: one clean line on stderr, exit 1.
fn sink_failed(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Parses the optional `=SECS` suffix of a `--progress[=SECS]` /
/// `--progress-json[=SECS]` flag.
fn parse_interval(flag: &str) -> Option<u64> {
    let (_, secs) = flag.split_once('=')?;
    Some(
        secs.parse()
            .unwrap_or_else(|_| usage(&format!("bad interval in {flag} (want whole seconds)"))),
    )
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale N] [--accesses N] [--seed N] [--threads N] [--json PATH] [--csv PATH] \
         [--trace-cache DIR] [--no-trace-cache] [--journal PATH] [--resume] [--quick] \
         [--progress[=SECS]] [--progress-json[=SECS]]"
    );
    eprintln!(
        "  --trace-cache DIR   persist frozen trace artifacts in DIR (default: $UNISON_TRACE_CACHE)"
    );
    eprintln!("  --no-trace-cache    regenerate traces per cell (no artifact sharing)");
    eprintln!("  --journal PATH      checkpoint completed cells to PATH (JSONL, append-only)");
    eprintln!("  --resume            restore completed cells from --journal instead of re-running");
    eprintln!(
        "  --progress[=SECS]   live status on stderr every SECS (default 2): cells done/total,"
    );
    eprintln!("                      mean cell time, ETA, cache hit rates, per-design throughput");
    eprintln!("  --progress-json[=SECS]  the same stream as machine-readable JSONL events");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bench_defaults() {
        let o = BenchOpts::parse(Vec::<String>::new());
        assert_eq!(o.cfg.scale, SimConfig::bench_default().scale);
        assert!(o.json.is_none());
        assert!(o.csv.is_none());
        assert!(o.threads >= 1);
    }

    #[test]
    fn parses_flags() {
        let o = BenchOpts::parse(
            [
                "--scale",
                "16",
                "--seed",
                "7",
                "--threads",
                "3",
                "--json",
                "/tmp/x.json",
                "--csv",
                "/tmp/x.csv",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(o.cfg.scale, 16);
        assert_eq!(o.cfg.seed, 7);
        assert_eq!(o.threads, 3);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
        assert_eq!(o.csv.as_deref(), Some(std::path::Path::new("/tmp/x.csv")));
    }

    #[test]
    fn quick_switches_config() {
        let o = BenchOpts::parse(["--quick".to_string()]);
        assert!(o.quick);
        assert_eq!(o.cfg.scale, SimConfig::quick_test().scale);
    }

    #[test]
    fn explicit_flags_win_over_quick_in_any_order() {
        for order in [["--seed", "7", "--quick"], ["--quick", "--seed", "7"]] {
            let o = BenchOpts::parse(order.iter().map(|s| s.to_string()));
            assert!(o.quick);
            assert_eq!(o.cfg.seed, 7, "order {order:?} dropped --seed");
            assert_eq!(o.cfg.scale, SimConfig::quick_test().scale);
        }
    }

    #[test]
    fn trace_cache_flag_env_and_opt_out() {
        // Flag wins.
        let (o, _) = BenchOpts::parse_known_with_env(
            ["--trace-cache", "/tmp/tc"].iter().map(|s| s.to_string()),
            Some("/tmp/from-env".to_string()),
        );
        assert_eq!(
            o.trace_cache.as_deref(),
            Some(std::path::Path::new("/tmp/tc"))
        );
        assert_eq!(
            o.trace_policy(),
            TracePolicy::Disk(PathBuf::from("/tmp/tc"))
        );

        // Env fallback.
        let (o, _) = BenchOpts::parse_known_with_env(
            Vec::<String>::new(),
            Some("/tmp/from-env".to_string()),
        );
        assert_eq!(
            o.trace_policy(),
            TracePolicy::Disk(PathBuf::from("/tmp/from-env"))
        );

        // No dir anywhere: in-memory sharing.
        let (o, _) = BenchOpts::parse_known_with_env(Vec::<String>::new(), None);
        assert_eq!(o.trace_policy(), TracePolicy::Memoize);

        // Opt-out beats both flag-less env and an explicit dir.
        let (o, _) = BenchOpts::parse_known_with_env(
            ["--no-trace-cache"].iter().map(|s| s.to_string()),
            Some("/tmp/from-env".to_string()),
        );
        assert!(o.no_trace_cache);
        assert_eq!(o.trace_cache, None);
        assert_eq!(o.trace_policy(), TracePolicy::Generate);
        let (o, _) = BenchOpts::parse_known_with_env(
            ["--no-trace-cache", "--trace-cache", "/tmp/tc"]
                .iter()
                .map(|s| s.to_string()),
            None,
        );
        assert_eq!(o.trace_policy(), TracePolicy::Generate);
    }

    #[test]
    fn journal_and_resume_flags() {
        let o = BenchOpts::parse(
            ["--journal", "/tmp/c.jsonl", "--resume"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(
            o.journal.as_deref(),
            Some(std::path::Path::new("/tmp/c.jsonl"))
        );
        assert!(o.resume);
        let o = BenchOpts::parse(["--journal", "/tmp/c.jsonl"].iter().map(|s| s.to_string()));
        assert!(!o.resume, "--journal alone starts a fresh journal");
    }

    #[test]
    fn progress_flags_select_modes_and_intervals() {
        use unison_harness::ProgressMode;
        // Historical defaults: per-cell lines, off under --quick.
        let o = BenchOpts::parse(Vec::<String>::new());
        assert_eq!(o.progress_config(), ProgressConfig::per_cell());
        let o = BenchOpts::parse(["--quick".to_string()]);
        assert_eq!(o.progress_config(), ProgressConfig::off());

        let o = BenchOpts::parse(["--progress".to_string()]);
        assert_eq!(o.progress_config().mode, ProgressMode::Human);
        assert_eq!(
            o.progress_config().interval_ns,
            ProgressConfig::DEFAULT_INTERVAL_NS
        );

        let o = BenchOpts::parse(["--progress=7".to_string()]);
        assert_eq!(o.progress_config().interval_ns, 7_000_000_000);

        let o = BenchOpts::parse(["--progress-json=1".to_string()]);
        assert_eq!(o.progress_config().mode, ProgressMode::Json);
        assert_eq!(o.progress_config().interval_ns, 1_000_000_000);

        // Explicit stream beats the --quick suppression.
        let o = BenchOpts::parse(["--quick".to_string(), "--progress".to_string()]);
        assert_eq!(o.progress_config().mode, ProgressMode::Human);
    }

    #[test]
    fn parse_known_returns_extras() {
        let (o, rest) = BenchOpts::parse_known(
            ["--threads", "2", "--designs", "unison,alloy"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.threads, 2);
        assert_eq!(
            rest,
            vec!["--designs".to_string(), "unison,alloy".to_string()]
        );
    }
}
