//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index).
//!
//! Each binary prints the paper-style rows and accepts:
//!
//! * `--scale N` — divide cache sizes *and* workload footprints by `N`
//!   (default 8; shapes are preserved, see `unison_sim::SimConfig`);
//! * `--accesses N` — trace-length floor per run;
//! * `--seed N` — workload seed;
//! * `--json PATH` — also dump machine-readable results;
//! * `--quick` — tiny sizes for smoke runs (used by `cargo bench`).
//!
//! Binaries: `table2`, `table4`, `table5`, `fig5`, `fig6`, `fig7`,
//! `fig8`, `energy`, `ablation_waypred`, `ablation_always_hit`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod opts;
pub mod shadow;
pub mod table;

pub use opts::BenchOpts;
pub use table::Table;

/// Nominal cache sizes of the CloudSuite sweeps (Figures 5–7).
pub const CLOUD_SIZES: [u64; 4] = [128 << 20, 256 << 20, 512 << 20, 1024 << 20];

/// Nominal cache sizes of the TPC-H sweeps (Figures 6 and 8).
pub const TPCH_SIZES: [u64; 4] = [1 << 30, 2 << 30, 4 << 30, 8 << 30];

/// The nominal size Table V reports: 1 GB (8 GB for TPC-H).
pub fn table5_size(workload: &str) -> u64 {
    if workload == "TPC-H" {
        8 << 30
    } else {
        1 << 30
    }
}
