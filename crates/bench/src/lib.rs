//! Experiment binaries regenerating every table and figure of the
//! paper's evaluation (see README/DESIGN for the experiment index).
//!
//! Each binary **declares** its experiment grid and renders tables from
//! the results; execution — parallel workers, memoized NoCache
//! baselines, structured sinks — is `unison_harness`'s job. Shared
//! flags:
//!
//! * `--scale N` — divide cache sizes *and* workload footprints by `N`
//!   (default 8; shapes are preserved, see `unison_sim::SimConfig`);
//! * `--accesses N` — trace-length floor per run;
//! * `--seed N` — workload seed;
//! * `--threads N` — worker-pool width (default: all hardware threads;
//!   `1` reproduces the historical serial behaviour);
//! * `--json PATH` — also dump machine-readable results;
//! * `--csv PATH` — also dump the campaign's flat per-cell CSV;
//! * `--journal PATH` — checkpoint completed cells to an append-only
//!   JSONL file; `--resume` restores them instead of re-simulating
//!   (bit-identical to an uninterrupted run). Applies to grid campaigns;
//!   the two `Campaign::map`-based ablations (`ablation_waypred`,
//!   `ablation_always_hit`) run custom cells and do not checkpoint;
//! * `--quick` — tiny sizes for smoke runs (used by `cargo bench`).
//!
//! Binaries: `table2`, `table4`, `table5`, `fig5`, `fig6`, `fig7`,
//! `fig8`, `energy`, `ablation_waypred`, `ablation_always_hit`,
//! `ablation_pagesize`, and `sweep` (run an arbitrary user-specified
//! grid in one command; `--shard I/N` / `--merge` split one campaign
//! across processes, `--list` prints every valid axis spelling).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod opts;
pub mod shadow;
pub mod table;

pub use opts::BenchOpts;
pub use table::Table;

/// Nominal cache sizes of the CloudSuite sweeps (Figures 5–7).
pub const CLOUD_SIZES: [u64; 4] = [128 << 20, 256 << 20, 512 << 20, 1024 << 20];

/// Nominal cache sizes of the TPC-H sweeps (Figures 6 and 8).
pub const TPCH_SIZES: [u64; 4] = [1 << 30, 2 << 30, 4 << 30, 8 << 30];

/// The nominal size Table V reports: 1 GB (8 GB for TPC-H).
pub fn table5_size(workload: &str) -> u64 {
    if workload == "TPC-H" {
        8 << 30
    } else {
        1 << 30
    }
}

/// Grid over all workloads at their Table V size — the shape shared by
/// `table5`, `energy`, `ablation_pagesize`, and the smoke digest. The
/// size axis is driven by [`table5_size`], so declaration and lookup
/// cannot diverge.
pub fn table5_grid(
    designs: impl IntoIterator<Item = unison_sim::Design>,
) -> unison_harness::ScenarioGrid {
    let workloads = unison_trace::workloads::all();
    let mut grid = unison_harness::ScenarioGrid::new()
        .designs(designs)
        .workloads(workloads.clone());
    for w in &workloads {
        grid = grid.sizes_for(w.name, [table5_size(w.name)]);
    }
    grid
}
