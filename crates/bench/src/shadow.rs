//! A shadow miss predictor: evaluates what an Alloy-style MAP-I predictor
//! *would* achieve on another design's hit/miss stream.
//!
//! §III-A argues that with Unison Cache's high hit rates, "a static
//! 'always-hit' prediction would achieve accuracy similar to a dynamic hit
//! prediction", so the miss predictor can be dropped. The
//! `ablation_always_hit` binary verifies that claim by running a MAP-I
//! shadow over Unison Cache's outcome stream and comparing it against the
//! static predictor (whose accuracy is simply the hit ratio).

use unison_core::{CacheAccess, CacheStats, DramCacheModel, MemPorts, Request};
use unison_dram::Ps;
use unison_predictors::MissPredictor;

/// Wraps a cache design and trains a MAP-I predictor on its outcomes
/// without influencing them.
#[derive(Debug)]
pub struct ShadowMissPredictor<C> {
    inner: C,
    shadow: MissPredictor,
}

impl<C: DramCacheModel> ShadowMissPredictor<C> {
    /// Wraps `inner` with a paper-sized (16-core) shadow predictor.
    pub fn new(inner: C) -> Self {
        ShadowMissPredictor {
            inner,
            shadow: MissPredictor::paper_default(),
        }
    }

    /// `(correct, false_miss, false_hit)` counts of the shadow predictor.
    pub fn shadow_stats(&self) -> (u64, u64, u64) {
        self.shadow.outcome_stats()
    }

    /// Accuracy of the dynamic shadow predictor.
    pub fn shadow_accuracy(&self) -> f64 {
        let (c, fm, fh) = self.shadow.outcome_stats();
        let total = c + fm + fh;
        if total == 0 {
            0.0
        } else {
            c as f64 / total as f64
        }
    }

    /// The wrapped design.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: DramCacheModel> DramCacheModel for ShadowMissPredictor<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn access(&mut self, now: Ps, req: &Request, mem: &mut MemPorts) -> CacheAccess {
        // Predict first (so the shadow cannot peek at the outcome), then
        // train with the real result.
        let _ = self.shadow.predict(u32::from(req.core), req.pc);
        let access = self.inner.access(now, req, mem);
        self.shadow
            .update(u32::from(req.core), req.pc, access.hit());
        access
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.shadow.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_core::{UnisonCache, UnisonConfig};

    #[test]
    fn shadow_observes_without_interfering() {
        let mut mem = MemPorts::paper_default();
        let mut shadowed = ShadowMissPredictor::new(UnisonCache::new(UnisonConfig::new(1 << 20)));
        let mut plain = UnisonCache::new(UnisonConfig::new(1 << 20));
        let mut mem2 = MemPorts::paper_default();
        let mut t = 0;
        for i in 0..200u64 {
            let req = Request {
                core: (i % 16) as u8,
                pc: 0x400 + (i % 7) * 64,
                addr: (i % 40) * 960,
                is_write: false,
            };
            let a = shadowed.access(t, &req, &mut mem);
            let b = plain.access(t, &req, &mut mem2);
            assert_eq!(a.outcome, b.outcome, "shadow must not change behaviour");
            t = a.done_ps.max(b.done_ps);
        }
        let (c, fm, fh) = shadowed.shadow_stats();
        assert_eq!(c + fm + fh, 200);
    }
}
