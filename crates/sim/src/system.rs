//! The multicore system driver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use unison_core::{DramCacheModel, MemPorts, Request};
use unison_dram::Ps;
use unison_trace::{AccessKind, TraceRecord};

use crate::core_model::{CoreClock, CoreParams};

/// A 16-core (configurable) pod driving one DRAM cache design over a
/// trace, presenting requests to the memory system in global
/// arrival-time order.
#[derive(Debug)]
pub struct System<C> {
    cache: C,
    mem: MemPorts,
    params: CoreParams,
    cores: Vec<CoreClock>,
}

/// Snapshot of progress counters at a point in time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Progress {
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// The slowest core's local time (the pod's elapsed time).
    pub elapsed_ps: Ps,
    /// Total memory stall time across cores.
    pub stall_ps: Ps,
}

/// Persistent dispatch state for a [`System::run_session`] run that is
/// consumed in record-budget increments instead of one call.
///
/// [`System::run`] historically kept its per-core record buffers and its
/// `(issue time, core)` heap as locals, so a run could only be driven in
/// one call per phase. A `DispatchSession` lifts exactly that state out:
/// stepping a session through N budget increments is **bit-identical** to
/// one `run` call with the summed budget, because the dispatch loop
/// already re-enters selection through the heap at every budget boundary
/// (it pushes the active core's next `(issue, core)` entry back before
/// breaking). Pinned by `session_stepping_matches_single_run`.
///
/// Sessions are deliberately *not* reusable across phases: the
/// warmup/measurement boundary of `drive_cache` drops whatever records
/// are buffered (see [`System::run`] on minimal refill), which a fresh
/// session reproduces and a carried-over one would not.
#[derive(Debug, Default)]
pub struct DispatchSession {
    bufs: CoreSlab,
    heap: BinaryHeap<Reverse<(Ps, usize)>>,
    exhausted: bool,
    primed: bool,
}

impl DispatchSession {
    /// Creates an empty session; per-core state is sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Initial per-core ring capacity, log2 (16 records). The refill policy
/// is *minimal* — it stops as soon as the active core has one record — so
/// buffered depth per core stays near the core-interleave distance of the
/// trace and growth is rare.
const SLAB_INIT_LOG2: u32 = 4;

/// Per-core FIFO record buffers backed by one flat slab.
///
/// The dispatch loop historically kept a `Vec<VecDeque<TraceRecord>>`:
/// one heap-allocated deque per core, each with its own head/tail/cap
/// bookkeeping and grow policy, touched once per trace record. This slab
/// keeps every core's buffer in a single contiguous allocation — core `c`
/// owns the power-of-two window `slab[c << cap_log2 .. (c + 1) << cap_log2]`
/// and rings within it — so a push or pop is one masked index plus a
/// `u32` head/len update against two small parallel arrays that stay
/// cache-resident across the whole run.
///
/// FIFO order per core is preserved exactly (same `push_back`/`pop_front`
/// contract as the deques), so dispatch selection order is untouched:
/// `chunked_dispatch_matches_reference_loop` and
/// `session_stepping_matches_single_run` race it against the verbatim
/// `VecDeque` reference loop below.
#[derive(Debug, Default)]
struct CoreSlab {
    /// All cores' rings, `cores << cap_log2` slots.
    slab: Vec<TraceRecord>,
    /// Per-core ring head, kept masked (`< 1 << cap_log2`).
    head: Vec<u32>,
    /// Per-core live record count, `<= 1 << cap_log2`.
    len: Vec<u32>,
    /// Log2 of each core's ring capacity; uniform so indexing is one
    /// shift + OR with no per-core lookup.
    cap_log2: u32,
}

impl CoreSlab {
    /// Slot filler for unoccupied ring capacity; never dispatched.
    const FILLER: TraceRecord = TraceRecord {
        core: 0,
        kind: AccessKind::Read,
        pc: 0,
        addr: 0,
        igap: 0,
    };

    /// Sizes the slab for `n` cores (no-op once sized).
    fn ensure_cores(&mut self, n: usize) {
        if self.head.len() < n {
            self.head.resize(n, 0);
            self.len.resize(n, 0);
            if self.cap_log2 == 0 {
                self.cap_log2 = SLAB_INIT_LOG2;
            }
            self.slab.resize(n << self.cap_log2, Self::FILLER);
        }
    }

    /// Number of cores the slab is sized for.
    #[inline]
    fn cores(&self) -> usize {
        self.head.len()
    }

    #[inline]
    fn is_empty(&self, core: usize) -> bool {
        self.len[core] == 0
    }

    #[inline]
    fn front(&self, core: usize) -> Option<&TraceRecord> {
        if self.len[core] == 0 {
            return None;
        }
        Some(&self.slab[(core << self.cap_log2) | self.head[core] as usize])
    }

    #[inline]
    fn push_back(&mut self, core: usize, rec: TraceRecord) {
        let mask = (1u32 << self.cap_log2) - 1;
        if self.len[core] > mask {
            self.grow();
        }
        let mask = (1u32 << self.cap_log2) - 1;
        let slot = (self.head[core] + self.len[core]) & mask;
        self.slab[(core << self.cap_log2) | slot as usize] = rec;
        self.len[core] += 1;
    }

    #[inline]
    fn pop_front(&mut self, core: usize) -> Option<TraceRecord> {
        if self.len[core] == 0 {
            return None;
        }
        let mask = (1u32 << self.cap_log2) - 1;
        let rec = self.slab[(core << self.cap_log2) | self.head[core] as usize];
        self.head[core] = (self.head[core] + 1) & mask;
        self.len[core] -= 1;
        Some(rec)
    }

    /// Doubles every core's ring, repacking live records to offset 0.
    /// Capacity is uniform across cores, so one hot core's burst grows
    /// the whole slab — acceptable because depth tracks the trace's core
    /// interleave, which is similar for every core.
    #[cold]
    fn grow(&mut self) {
        let old_log2 = self.cap_log2;
        let new_log2 = old_log2 + 1;
        let mask = (1u32 << old_log2) - 1;
        let n = self.cores();
        let mut slab = vec![Self::FILLER; n << new_log2];
        for core in 0..n {
            let old_base = core << old_log2;
            let new_base = core << new_log2;
            for i in 0..self.len[core] {
                let src = old_base | ((self.head[core] + i) & mask) as usize;
                slab[new_base + i as usize] = self.slab[src];
            }
            self.head[core] = 0;
        }
        self.slab = slab;
        self.cap_log2 = new_log2;
    }
}

impl<C: DramCacheModel> System<C> {
    /// Builds a system of `cores` cores around `cache` and `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, cache: C, mem: MemPorts, params: CoreParams) -> Self {
        assert!(cores > 0, "need at least one core");
        System {
            cache,
            mem,
            params,
            cores: vec![CoreClock::default(); cores],
        }
    }

    /// The cache under test.
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// The shared memory devices.
    pub fn mem(&self) -> &MemPorts {
        &self.mem
    }

    /// Current progress counters.
    pub fn progress(&self) -> Progress {
        Progress {
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            elapsed_ps: self.cores.iter().map(|c| c.time_ps).max().unwrap_or(0),
            stall_ps: self.cores.iter().map(|c| c.stall_ps).sum(),
        }
    }

    /// Clears cache and DRAM statistics (the warmup boundary). Core
    /// clocks keep running — callers snapshot [`Self::progress`] before
    /// and after the measurement region instead.
    pub fn reset_measurement(&mut self) {
        self.cache.reset_stats();
        self.mem.reset_stats();
    }

    /// Runs up to `limit` records from `trace`, interleaving cores by
    /// issue time. Returns the number of records consumed.
    ///
    /// Records are buffered per core (the trace arrives in per-core
    /// program order but arbitrary global order) and dispatched in global
    /// `(issue time, core)` order, so the memory system observes a
    /// globally time-ordered request stream.
    ///
    /// The dispatch loop is **chunked**: after consuming a record on core
    /// `c`, if `c`'s next record still issues no later than every other
    /// core's head-of-line entry (one peek at the heap minimum), the loop
    /// stays on `c` and consumes a whole run of its records without a
    /// heap push + pop per record, and without recomputing the issue time
    /// it already derived for the heap key. Selection uses the exact
    /// `(issue_ps, core)` ordering, so the dispatch sequence is
    /// bit-identical to the historical one-pop-per-record loop (pinned by
    /// `chunked_dispatch_matches_reference_loop` and the golden suite).
    ///
    /// Refill stays *minimal* (pull exactly until the active core's
    /// buffer is non-empty): `run` is called once for warmup and once for
    /// measurement with fresh buffers, so any extra read-ahead would be
    /// dropped at the boundary and shift the measurement stream, breaking
    /// run-to-run reproducibility against the golden fixtures.
    pub fn run<I>(&mut self, trace: &mut I, limit: u64) -> u64
    where
        I: Iterator<Item = TraceRecord>,
    {
        let mut session = DispatchSession::new();
        self.run_session(&mut session, trace, limit)
    }

    /// [`System::run`] against caller-held dispatch state: consumes up to
    /// `limit` further records, leaving `session` ready to continue from
    /// exactly where this call stopped. Driving one session through many
    /// small budgets is bit-identical to one [`System::run`] call with
    /// the summed budget — the stepping primitive batched multi-cell
    /// simulation interleaves cells with.
    pub fn run_session<I>(
        &mut self,
        session: &mut DispatchSession,
        trace: &mut I,
        limit: u64,
    ) -> u64
    where
        I: Iterator<Item = TraceRecord>,
    {
        let n_cores = self.cores.len();
        // `bufs` is the per-core record buffer; `heap` holds
        // Reverse((issue_time, core)) for cores with a computed
        // head-of-line issue time. Invariant (holds between calls too):
        // every core with a non-empty buffer has exactly one entry,
        // except the core currently being consumed inside the inner loop
        // below.
        let DispatchSession {
            bufs,
            heap,
            exhausted,
            primed,
        } = session;
        let exhausted = &mut *exhausted;
        let mut consumed = 0u64;

        // Pulls records until `core`'s buffer is non-empty (or the trace
        // ends), stashing other cores' records in their buffers. The core
        // id is in range for any spec-conformant trace, so the wrap is a
        // predicted-not-taken branch rather than a hardware division.
        fn refill<I: Iterator<Item = TraceRecord>>(
            trace: &mut I,
            bufs: &mut CoreSlab,
            core: usize,
            exhausted: &mut bool,
        ) {
            let n = bufs.cores();
            while bufs.is_empty(core) && !*exhausted {
                match trace.next() {
                    Some(r) => {
                        let c = usize::from(r.core);
                        let c = if c < n { c } else { c % n };
                        bufs.push_back(c, r);
                    }
                    None => *exhausted = true,
                }
            }
        }

        // Prime every core (once per session).
        if !*primed {
            bufs.ensure_cores(n_cores);
            for c in 0..n_cores {
                refill(trace, bufs, c, exhausted);
                if let Some(r) = bufs.front(c) {
                    let issue = self.cores[c].time_ps + self.params.compute_ps(u64::from(r.igap));
                    heap.push(Reverse((issue, c)));
                }
            }
            *primed = true;
        }

        'dispatch: while consumed < limit {
            let Some(Reverse((mut issue, c))) = heap.pop() else {
                break;
            };
            // Consume a chunk of records on core `c` while it remains the
            // globally minimal (issue, core) — no heap churn within the run.
            loop {
                let Some(rec) = bufs.pop_front(c) else {
                    // Unreachable under the invariant (an entry implies a
                    // non-empty buffer); defensive fallthrough.
                    continue 'dispatch;
                };
                // Advance the core's clock through the instruction gap.
                // `issue` was derived from this exact (clock, record) pair
                // when the entry was stored (or by the chunk step below),
                // so the clock advances to it directly.
                self.cores[c].advance_compute_to(issue, u64::from(rec.igap));
                let req = Request {
                    core: rec.core,
                    pc: rec.pc,
                    addr: rec.addr,
                    is_write: rec.kind.is_write(),
                };
                let access = self.cache.access(issue, &req, &mut self.mem);
                if !req.is_write || self.params.stall_on_stores {
                    self.cores[c].apply_load(&self.params, issue, access.critical_ps);
                }
                consumed += 1;

                refill(trace, bufs, c, exhausted);
                let Some(r) = bufs.front(c) else {
                    // Trace exhausted for this core; it leaves the heap.
                    continue 'dispatch;
                };
                let ni = self.cores[c].time_ps + self.params.compute_ps(u64::from(r.igap));
                if consumed >= limit {
                    heap.push(Reverse((ni, c)));
                    break 'dispatch;
                }
                match heap.peek() {
                    // Another core issues strictly earlier (or ties with a
                    // lower index): hand over via the heap, exactly as the
                    // per-record loop would.
                    Some(&Reverse(top)) if top < (ni, c) => {
                        heap.push(Reverse((ni, c)));
                        continue 'dispatch;
                    }
                    // `c` is still the minimum (or the only runnable
                    // core): keep consuming its records directly.
                    _ => issue = ni,
                }
            }
        }
        consumed
    }

    /// Consumes the system, returning its parts (cache, memory).
    pub fn into_parts(self) -> (C, MemPorts) {
        (self.cache, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;

    use super::*;
    use unison_core::{IdealCache, NoCache};
    use unison_trace::{workloads, WorkloadGen};

    #[test]
    fn runs_requested_number_of_records() {
        let mut sys = System::new(
            16,
            NoCache::new(),
            MemPorts::paper_default(),
            CoreParams::default(),
        );
        let mut trace = WorkloadGen::new(workloads::web_serving(), 1);
        let n = sys.run(&mut trace, 10_000);
        assert_eq!(n, 10_000);
        let p = sys.progress();
        assert!(p.instructions > 0);
        assert!(p.elapsed_ps > 0);
        assert_eq!(sys.cache().stats().accesses, 10_000);
    }

    #[test]
    fn finite_trace_ends_cleanly() {
        let mut sys = System::new(
            4,
            NoCache::new(),
            MemPorts::paper_default(),
            CoreParams::default(),
        );
        let recs: Vec<_> = WorkloadGen::new(workloads::web_search(), 2)
            .take(500)
            .collect();
        let mut iter = recs.into_iter();
        let n = sys.run(&mut iter, 1_000_000);
        assert_eq!(n, 500);
    }

    #[test]
    fn ideal_cache_outperforms_no_cache() {
        let spec = workloads::data_serving();
        let run = |cache_is_ideal: bool| -> f64 {
            let mut trace = WorkloadGen::new(spec.clone(), 3);
            let params = CoreParams::default();
            if cache_is_ideal {
                let mut sys = System::new(
                    16,
                    IdealCache::new(1 << 30),
                    MemPorts::paper_default(),
                    params,
                );
                sys.run(&mut trace, 30_000);
                let p = sys.progress();
                p.instructions as f64 / p.elapsed_ps as f64
            } else {
                let mut sys = System::new(16, NoCache::new(), MemPorts::paper_default(), params);
                sys.run(&mut trace, 30_000);
                let p = sys.progress();
                p.instructions as f64 / p.elapsed_ps as f64
            }
        };
        let ideal = run(true);
        let baseline = run(false);
        assert!(
            ideal > baseline * 1.1,
            "ideal {ideal:.6} should clearly beat no-cache {baseline:.6}"
        );
    }

    /// The pre-chunking dispatch loop, verbatim: one heap push + pop per
    /// record. Kept as the reference the chunked loop must match.
    fn run_reference<C: DramCacheModel, I: Iterator<Item = TraceRecord>>(
        sys: &mut System<C>,
        trace: &mut I,
        limit: u64,
    ) -> u64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n_cores = sys.cores.len();
        let mut bufs: Vec<VecDeque<TraceRecord>> = vec![VecDeque::new(); n_cores];
        let mut heap: BinaryHeap<Reverse<(Ps, usize)>> = BinaryHeap::new();
        let mut consumed = 0u64;
        let mut exhausted = false;

        fn refill<I: Iterator<Item = TraceRecord>>(
            trace: &mut I,
            bufs: &mut [VecDeque<TraceRecord>],
            core: usize,
            exhausted: &mut bool,
        ) {
            while bufs[core].is_empty() && !*exhausted {
                match trace.next() {
                    Some(r) => {
                        let c = usize::from(r.core) % bufs.len();
                        bufs[c].push_back(r);
                    }
                    None => *exhausted = true,
                }
            }
        }

        for c in 0..n_cores {
            refill(trace, &mut bufs, c, &mut exhausted);
            if let Some(r) = bufs[c].front() {
                let issue = sys.cores[c].time_ps + sys.params.compute_ps(u64::from(r.igap));
                heap.push(Reverse((issue, c)));
            }
        }

        while consumed < limit {
            let Some(Reverse((_, c))) = heap.pop() else {
                break;
            };
            let Some(rec) = bufs[c].pop_front() else {
                continue;
            };
            let issue = sys.cores[c].advance_compute(&sys.params, u64::from(rec.igap));
            let req = Request {
                core: rec.core,
                pc: rec.pc,
                addr: rec.addr,
                is_write: rec.kind.is_write(),
            };
            let access = sys.cache.access(issue, &req, &mut sys.mem);
            if !req.is_write || sys.params.stall_on_stores {
                sys.cores[c].apply_load(&sys.params, issue, access.critical_ps);
            }
            consumed += 1;

            refill(trace, &mut bufs, c, &mut exhausted);
            if let Some(r) = bufs[c].front() {
                let next_issue = sys.cores[c].time_ps + sys.params.compute_ps(u64::from(r.igap));
                heap.push(Reverse((next_issue, c)));
            }
        }
        consumed
    }

    /// The chunked dispatch loop must be indistinguishable from the
    /// one-pop-per-record reference — same consumed counts, same core
    /// clocks, same cache statistics — including across a warmup-style
    /// split where leftover buffered records are dropped between calls.
    #[test]
    fn chunked_dispatch_matches_reference_loop() {
        for seed in [1u64, 7, 42] {
            let spec = workloads::web_serving();
            let mut fast = System::new(
                16,
                IdealCache::new(1 << 26),
                MemPorts::paper_default(),
                CoreParams::default(),
            );
            let mut slow = System::new(
                16,
                IdealCache::new(1 << 26),
                MemPorts::paper_default(),
                CoreParams::default(),
            );
            let mut trace_a = WorkloadGen::new(spec.clone(), seed);
            let mut trace_b = WorkloadGen::new(spec, seed);

            // Split run, as run_experiment does (warmup then measurement).
            assert_eq!(
                fast.run(&mut trace_a, 7_000),
                run_reference(&mut slow, &mut trace_b, 7_000)
            );
            fast.reset_measurement();
            slow.reset_measurement();
            assert_eq!(
                fast.run(&mut trace_a, 5_000),
                run_reference(&mut slow, &mut trace_b, 5_000)
            );

            let (pa, pb) = (fast.progress(), slow.progress());
            assert_eq!(pa.instructions, pb.instructions, "seed {seed}");
            assert_eq!(pa.elapsed_ps, pb.elapsed_ps, "seed {seed}");
            assert_eq!(pa.stall_ps, pb.stall_ps, "seed {seed}");
            assert_eq!(
                fast.cache().stats().hits,
                slow.cache().stats().hits,
                "seed {seed}"
            );
            assert_eq!(
                fast.cache().stats().accesses,
                slow.cache().stats().accesses,
                "seed {seed}"
            );
        }
    }

    /// Stepping a persistent session through many odd-sized budget
    /// increments must be indistinguishable from one `run` call with the
    /// summed budget — same consumed counts, clocks, and cache stats —
    /// including across a warmup-style boundary where each phase gets a
    /// fresh session (reproducing the buffered-record drop).
    #[test]
    fn session_stepping_matches_single_run() {
        for seed in [1u64, 42] {
            let spec = workloads::web_serving();
            let mut whole = System::new(
                16,
                IdealCache::new(1 << 26),
                MemPorts::paper_default(),
                CoreParams::default(),
            );
            let mut stepped = System::new(
                16,
                IdealCache::new(1 << 26),
                MemPorts::paper_default(),
                CoreParams::default(),
            );
            let mut trace_a = WorkloadGen::new(spec.clone(), seed);
            let mut trace_b = WorkloadGen::new(spec, seed);

            // Warmup phase: 7_000 records in one call vs ragged steps.
            assert_eq!(whole.run(&mut trace_a, 7_000), 7_000);
            let mut session = DispatchSession::new();
            let mut left = 7_000u64;
            for budget in [1u64, 7, 500, 1_234, 9_999] {
                let got = stepped.run_session(&mut session, &mut trace_b, budget.min(left));
                assert_eq!(got, budget.min(left));
                left -= got;
            }
            assert_eq!(left, 0);

            // Phase boundary: fresh sessions on both sides.
            whole.reset_measurement();
            stepped.reset_measurement();
            assert_eq!(whole.run(&mut trace_a, 5_000), 5_000);
            let mut session = DispatchSession::new();
            let mut done = 0u64;
            while done < 5_000 {
                done += stepped.run_session(&mut session, &mut trace_b, 777.min(5_000 - done));
            }

            let (pa, pb) = (whole.progress(), stepped.progress());
            assert_eq!(pa.instructions, pb.instructions, "seed {seed}");
            assert_eq!(pa.elapsed_ps, pb.elapsed_ps, "seed {seed}");
            assert_eq!(pa.stall_ps, pb.stall_ps, "seed {seed}");
            assert_eq!(whole.cache().stats().hits, stepped.cache().stats().hits);
            assert_eq!(
                whole.cache().stats().accesses,
                stepped.cache().stats().accesses
            );
        }
    }

    #[test]
    fn stall_time_accumulates_for_memory_bound_runs() {
        let mut sys = System::new(
            16,
            NoCache::new(),
            MemPorts::paper_default(),
            CoreParams::default(),
        );
        let mut trace = WorkloadGen::new(workloads::data_serving(), 5);
        sys.run(&mut trace, 20_000);
        let p = sys.progress();
        assert!(
            p.stall_ps > p.elapsed_ps / 4,
            "an uncached memory-bound run must be stall-dominated"
        );
    }
}
