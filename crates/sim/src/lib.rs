//! Trace-driven multicore system simulator and experiment runner.
//!
//! This crate stands in for the paper's Flexus + SimFlex full-system
//! methodology (§IV-A). The substitution, documented in DESIGN.md:
//!
//! * **Cores** use an interval model ([`CoreParams`]): instruction gaps
//!   execute at a base IPC; loads stall the core for whatever part of the
//!   DRAM-cache-level latency an out-of-order window can't hide; stores
//!   are fire-and-forget (but still consume bandwidth).
//! * **Critical-block-first**: a trigger miss only stalls its core for the
//!   demanded block's path; the rest of the footprint transfers in the
//!   background and shows up solely as DRAM bus/bank occupancy — which is
//!   how the paper argues footprint fetching is affordable.
//! * **Warmup**: the first fraction of each trace warms the cache with
//!   statistics discarded, mirroring the paper's use of two thirds of
//!   each trace for warmup.
//! * The performance metric is **user instructions per cycle across the
//!   16-core pod** (UIPC), the throughput proxy the paper measures, and
//!   speedups are computed against the [`unison_core::NoCache`] baseline.
//!
//! # Example
//!
//! ```
//! use unison_sim::{Design, SimConfig, run_experiment};
//! use unison_trace::workloads;
//!
//! let cfg = SimConfig::quick_test();
//! let r = run_experiment(Design::Unison, 64 << 20, &workloads::web_search(), &cfg);
//! assert!(r.uipc > 0.0);
//! assert!(r.cache.miss_ratio() < 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cell_sim;
mod core_model;
mod metrics;
mod runner;
pub mod scenario;
mod system;

pub use cell_sim::CellSim;
pub use core_model::CoreParams;
pub use metrics::RunResult;
pub use runner::{
    check_baseline, replay_lookahead, run_baseline, run_experiment,
    run_experiment_timed_with_source, run_experiment_with_source, run_speedup,
    run_speedup_with_baseline, run_speedup_with_baseline_source, Design, SimConfig, SpeedupResult,
    Timed, TracePlan, TraceSource,
};
pub use scenario::{scenarios_from_json, Scenario, SystemSpec};
pub use system::{DispatchSession, System};
