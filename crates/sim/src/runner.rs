//! Experiment runner: (design, size, workload) → [`RunResult`].

use serde::{Deserialize, Serialize};
use unison_core::{
    AlloyCache, AlloyConfig, DramCacheModel, FootprintCache, FootprintConfig, IdealCache, NoCache,
    UnisonCache, UnisonConfig,
};
use unison_trace::{artifact_key, TraceArtifact, TraceRecord, WorkloadGen, WorkloadSpec};

use crate::metrics::RunResult;
use crate::scenario::SystemSpec;
use crate::system::System;

/// The cache designs the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Alloy Cache (block-based baseline).
    Alloy,
    /// Footprint Cache (page-based baseline, SRAM tags).
    Footprint,
    /// Unison Cache, 960 B pages, 4-way (the paper's default).
    Unison,
    /// Unison Cache with 1984 B pages (Table V variant).
    Unison1984,
    /// Unison Cache with explicit associativity (Figure 5).
    UnisonAssoc(u32),
    /// The ideal 100%-hit reference.
    Ideal,
    /// No DRAM cache (speedup baseline).
    NoCache,
}

impl Design {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Design::Alloy => "Alloy".into(),
            Design::Footprint => "Footprint".into(),
            Design::Unison => "Unison".into(),
            Design::Unison1984 => "Unison-1984B".into(),
            Design::UnisonAssoc(w) => format!("Unison-{w}way"),
            Design::Ideal => "Ideal".into(),
            Design::NoCache => "NoCache".into(),
        }
    }

    /// The valid CLI spellings, for error messages.
    pub const VALID_NAMES: &'static str =
        "alloy, footprint, unison, unison1984, unison-<N>way, ideal, nocache";

    /// [`Design::from_name`] with an error that lists the valid names.
    ///
    /// # Errors
    ///
    /// Returns the full valid-name list when `name` matches no design.
    pub fn parse(name: &str) -> Result<Design, String> {
        Self::from_name(name).ok_or_else(|| {
            format!(
                "unknown design {name:?} (valid designs: {})",
                Self::VALID_NAMES
            )
        })
    }

    /// Parses a design from a user-facing name (CLI spelling). Accepts
    /// the display names of [`Design::name`] case-insensitively plus the
    /// shorthands `unison-<N>way` and `unison1984`.
    pub fn from_name(name: &str) -> Option<Design> {
        let lower = name.trim().to_ascii_lowercase();
        match lower.as_str() {
            "alloy" => Some(Design::Alloy),
            "footprint" => Some(Design::Footprint),
            "unison" => Some(Design::Unison),
            "unison1984" | "unison-1984" | "unison-1984b" => Some(Design::Unison1984),
            "ideal" => Some(Design::Ideal),
            "nocache" | "no-cache" | "none" => Some(Design::NoCache),
            _ => {
                let ways = lower.strip_prefix("unison-")?.strip_suffix("way")?;
                // 0 ways would assert deep inside UnisonCache::new; reject
                // it here so CLIs report a clean unknown-design error.
                ways.parse()
                    .ok()
                    .filter(|&w| w >= 1)
                    .map(Design::UnisonAssoc)
            }
        }
    }

    /// Instantiates the design at `cache_bytes` on the default system.
    pub fn build(&self, cache_bytes: u64) -> Box<dyn DramCacheModel> {
        self.build_scaled(cache_bytes, cache_bytes, &SystemSpec::default())
    }

    /// The Unison-family cache geometry this design runs under `system`:
    /// the scenario's overrides fill whatever the design variant does not
    /// itself pin (`Unison1984` keeps its 1984 B pages, `UnisonAssoc`
    /// its way count), and the paper defaults fill the rest. Plain
    /// `Design::Unison` takes all three knobs from the scenario.
    fn unison_config(&self, scaled_bytes: u64, system: &SystemSpec) -> UnisonConfig {
        let base = UnisonConfig::new(scaled_bytes);
        let page_blocks = system
            .page_blocks()
            .unwrap_or(crate::scenario::DEFAULT_PAGE_BYTES / 64);
        let ways = system.ways.unwrap_or(crate::scenario::DEFAULT_WAYS);
        let policy = system.way_policy.unwrap_or(base.way_policy);
        let cfg = base
            .with_page_blocks(page_blocks)
            .with_assoc(ways)
            .with_way_policy(policy);
        match self {
            Design::Unison1984 => cfg.with_page_blocks(31),
            Design::UnisonAssoc(w) => cfg.with_assoc(*w),
            _ => cfg,
        }
    }

    /// The page size (bytes), ways, and way policy this design **actually
    /// runs** under `system` — the design variant's pinned knobs win over
    /// the scenario's overrides, exactly as [`Design::build_scaled`]
    /// resolves them. `None` for designs the geometry knobs do not apply
    /// to (Alloy, Footprint, Ideal, NoCache). Result sinks use this so
    /// their geometry columns describe the simulated cache, not merely
    /// the requested overrides.
    pub fn unison_geometry(
        &self,
        system: &SystemSpec,
    ) -> Option<(u32, u32, unison_core::WayPolicy)> {
        match self {
            Design::Unison | Design::Unison1984 | Design::UnisonAssoc(_) => {
                // The three knobs are capacity-independent; the size fed
                // here never reaches the caller.
                let cfg = self.unison_config(1 << 20, system);
                Some((cfg.page_blocks * 64, cfg.assoc, cfg.way_policy))
            }
            _ => None,
        }
    }

    /// Instantiates the design at the *scaled* capacity while deriving
    /// size-dependent structures (Footprint Cache's SRAM tag latency, the
    /// way-predictor sizing rule) from the *nominal* paper-labeled size —
    /// those latencies are the effect under study and must not shrink
    /// with the fast-run scale factor. Cache-geometry overrides come from
    /// `system` ([`SystemSpec`]); they apply to the Unison family (page
    /// size, ways, way policy) and leave the block-based Alloy and the
    /// SRAM-tag Footprint baselines at their published organizations.
    pub fn build_scaled(
        &self,
        scaled_bytes: u64,
        nominal_bytes: u64,
        system: &SystemSpec,
    ) -> Box<dyn DramCacheModel> {
        match self {
            Design::Alloy => Box::new(AlloyCache::new(AlloyConfig::new(scaled_bytes))),
            Design::Footprint => Box::new(FootprintCache::new(
                FootprintConfig::new(scaled_bytes).with_nominal(nominal_bytes),
            )),
            Design::Unison | Design::Unison1984 | Design::UnisonAssoc(_) => {
                Box::new(UnisonCache::new(
                    self.unison_config(scaled_bytes, system)
                        .with_nominal(nominal_bytes),
                ))
            }
            Design::Ideal => Box::new(IdealCache::new(scaled_bytes)),
            Design::NoCache => Box::new(NoCache::new()),
        }
    }
}

/// Simulation-scale parameters shared by all experiments, plus the
/// [`SystemSpec`] naming the machine the experiment simulates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total trace records per run (warmup + measurement).
    pub accesses: u64,
    /// Fraction of records used for warmup (statistics discarded). The
    /// paper uses two thirds of each trace (§IV-A).
    pub warmup_fraction: f64,
    /// The simulated machine: core count/model, cache geometry
    /// overrides, DRAM device presets. [`SystemSpec::default`] is the
    /// paper's Table III system.
    pub system: SystemSpec,
    /// Trace seed.
    pub seed: u64,
    /// Divide workload footprints *and* cache sizes by this factor to
    /// trade fidelity for runtime; shapes are preserved because cache
    /// and working set shrink together (see DESIGN.md §4).
    pub scale: u64,
}

impl SimConfig {
    /// Full-fidelity defaults (slow; used for final EXPERIMENTS.md runs).
    pub fn full() -> Self {
        SimConfig {
            accesses: 24_000_000,
            warmup_fraction: 2.0 / 3.0,
            system: SystemSpec::default(),
            seed: 42,
            scale: 1,
        }
    }

    /// Bench defaults: ÷8 scale, enough accesses for steady state at the
    /// scaled sizes.
    pub fn bench_default() -> Self {
        SimConfig {
            accesses: 6_000_000,
            warmup_fraction: 2.0 / 3.0,
            system: SystemSpec::default(),
            seed: 42,
            scale: 8,
        }
    }

    /// Tiny runs for unit/integration tests.
    pub fn quick_test() -> Self {
        SimConfig {
            accesses: 120_000,
            warmup_fraction: 0.5,
            system: SystemSpec::default(),
            seed: 42,
            scale: 64,
        }
    }

    /// Applies the scale factor to a nominal (paper-labeled) cache size.
    pub fn scaled_cache_bytes(&self, nominal: u64) -> u64 {
        (nominal / self.scale).max(1 << 20)
    }

    /// Trace length for a run against a cache of `scaled_bytes`: at least
    /// the configured floor, and enough that the warmup region can fill
    /// the cache about twice over (≈ one 64 B block fetched per access),
    /// so the measurement region sees steady-state behaviour.
    pub fn accesses_for(&self, scaled_bytes: u64) -> u64 {
        self.accesses.max(3 * scaled_bytes / 64)
    }

    /// The trace a run of nominal `cache_bytes` over `spec` requires —
    /// the **single source of truth** both for [`run_experiment`]'s live
    /// generation and for trace-artifact stores deciding what to freeze.
    ///
    /// The system spec's core-count override is applied *before* scaling,
    /// so the scaled spec (and therefore every artifact key and baseline
    /// memo key derived from it) reflects the machine actually simulated:
    /// scenarios differing in core count never share a trace.
    pub fn trace_plan(&self, spec: &WorkloadSpec, cache_bytes: u64) -> TracePlan {
        let scaled_spec = self.system.effective_workload(spec).scaled(self.scale);
        let total = self.accesses_for(self.scaled_cache_bytes(cache_bytes));
        TracePlan {
            scaled_spec,
            total,
            frozen_len: total + replay_lookahead(total),
        }
    }
}

/// Read-ahead margin frozen into artifacts beyond the consumed total.
///
/// The dispatch loop pulls records past the ones it consumes: refilling
/// one core's buffer stashes records for other cores, and whatever is
/// buffered when the warmup call returns is dropped at the measurement
/// boundary — while still advancing the stream position. Live generation
/// is infinite so this is invisible; a frozen artifact must cover the
/// overshoot or replay runs dry near the end.
///
/// The overshoot is how far the per-core *stream* positions skew, which
/// tracks how far the core *clocks* skew: a core stuck in a stall-heavy
/// phase consumes slowly in issue-time order while round-robin refills
/// keep buffering the fast cores — observed at ~0.2% of a 9 M-record
/// TPC-H run. The margin is a 16 Ki floor plus 1/32nd of the consumed
/// total (~15× the observed skew). It is a *provisioning* knob, not a
/// correctness bound: replay falls back to generating the tail live if
/// the margin is ever exceeded (bit-identical either way; see
/// [`TraceSource::Replay`]).
pub fn replay_lookahead(total: u64) -> u64 {
    16_384 + total / 32
}

/// The trace requirements of one experiment run (see
/// [`SimConfig::trace_plan`]).
#[derive(Debug, Clone)]
pub struct TracePlan {
    /// The workload spec the generator actually runs with (footprint
    /// scaled down by `cfg.scale`).
    pub scaled_spec: WorkloadSpec,
    /// Records the run consumes (warmup + measurement).
    pub total: u64,
    /// Records an artifact should hold to replay the run without
    /// touching the generator: [`Self::total`] plus
    /// [`replay_lookahead`].
    pub frozen_len: u64,
}

/// Where [`run_experiment_with_source`] gets its record stream.
///
/// Both variants produce **bit-identical** results: a replayed artifact
/// frozen from the run's `(scaled spec, seed)` yields exactly the stream
/// live generation would (pinned by the golden fixtures and
/// `tests/trace_artifacts.rs`). Replay skips the per-record RNG/Zipf
/// synthesis cost, which is what makes multi-design campaigns over a
/// shared workload fast.
#[derive(Debug, Clone, Copy)]
pub enum TraceSource<'a> {
    /// Generate the stream live with [`WorkloadGen`] (the historical
    /// behaviour; always available).
    Live,
    /// Replay a frozen [`TraceArtifact`]. Must have been frozen from the
    /// run's scaled spec and seed (asserted — a mismatched artifact
    /// would silently simulate the wrong workload) and at least cover
    /// the planned `frozen_len` (asserted — stores must provision the
    /// read-ahead margin). Should the dispatch loop's read-ahead ever
    /// exceed even that margin, the stream continues with lazily
    /// generated live records from the same position, so results stay
    /// bit-identical in all cases.
    Replay(&'a TraceArtifact),
}

/// Replay cursor with a lazy live-generation safety net.
///
/// The hot path is one inlined [`unison_trace::TraceReplay`] read plus a
/// predictable branch. Only if the dispatch loop reads past the frozen
/// records (its warmup-boundary overshoot exceeded the artifact's
/// provisioned margin) does the cold path construct a [`WorkloadGen`]
/// and advance it to the artifact's end position — paying the full
/// prefix generation cost once, in exchange for results that stay
/// bit-identical to live generation no matter how large the overshoot.
pub(crate) struct ReplayWithTail<'a> {
    pub(crate) replay: unison_trace::TraceReplay<'a>,
    /// Owned so long-lived consumers (the batched [`crate::CellSim`])
    /// only borrow the artifact, not a stack-local trace plan.
    pub(crate) scaled_spec: WorkloadSpec,
    pub(crate) seed: u64,
    /// Records the artifact holds — the stream position the tail
    /// generator must resume from.
    pub(crate) frozen: usize,
    pub(crate) tail: Option<WorkloadGen>,
}

impl ReplayWithTail<'_> {
    #[cold]
    #[inline(never)]
    fn tail_next(&mut self) -> Option<TraceRecord> {
        let tail = self.tail.get_or_insert_with(|| {
            let mut gen = WorkloadGen::new(self.scaled_spec.clone(), self.seed);
            for _ in 0..self.frozen {
                gen.next();
            }
            gen
        });
        tail.next()
    }
}

impl Iterator for ReplayWithTail<'_> {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        match self.replay.next() {
            Some(r) => Some(r),
            None => self.tail_next(),
        }
    }
}

/// Runs one experiment: `design` at nominal `cache_bytes` (scaled per
/// `cfg`) over `spec` (footprint scaled likewise).
///
/// The returned [`RunResult`] reports the *nominal* cache size.
pub fn run_experiment(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
) -> RunResult {
    run_experiment_with_source(design, cache_bytes, spec, cfg, TraceSource::Live)
}

/// [`run_experiment`] with an explicit record stream: live generation or
/// zero-copy replay of a frozen artifact (see [`TraceSource`]).
///
/// # Panics
///
/// Panics if a [`TraceSource::Replay`] artifact was frozen from a
/// different `(scaled spec, seed)` than this run requires, or is shorter
/// than the run's trace length — either would silently change results.
pub fn run_experiment_with_source(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    source: TraceSource<'_>,
) -> RunResult {
    let plan = cfg.trace_plan(spec, cache_bytes);
    match source {
        TraceSource::Live => {
            let trace = WorkloadGen::new(plan.scaled_spec, cfg.seed);
            drive(design, cache_bytes, spec, cfg, trace, plan.total)
        }
        TraceSource::Replay(artifact) => {
            let trace = replay_with_tail(artifact, &plan, spec, cfg);
            drive(design, cache_bytes, spec, cfg, trace, plan.total)
        }
    }
}

/// Builds the replay-with-tail cursor for `artifact` after validating it
/// against the run's trace `plan` — the shared entry point of
/// [`run_experiment_with_source`] and the batched [`crate::CellSim`].
///
/// # Panics
///
/// Panics if the artifact was frozen from a different
/// `(scaled spec, seed)` or is shorter than `plan.frozen_len` — either
/// would silently change results.
pub(crate) fn replay_with_tail<'a>(
    artifact: &'a TraceArtifact,
    plan: &TracePlan,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
) -> ReplayWithTail<'a> {
    assert_eq!(
        artifact.key(),
        artifact_key(&plan.scaled_spec, cfg.seed),
        "trace artifact was frozen for a different (scaled spec, seed) than \
         this run of '{}' (seed {}, scale 1/{}) requires",
        spec.name,
        cfg.seed,
        cfg.scale,
    );
    assert!(
        artifact.len() as u64 >= plan.frozen_len,
        "trace artifact for '{}' holds {} records but this run plans for {} \
         ({} consumed + read-ahead margin); the trace store must freeze \
         TracePlan::frozen_len",
        spec.name,
        artifact.len(),
        plan.frozen_len,
        plan.total,
    );
    ReplayWithTail {
        replay: artifact.replay(),
        scaled_spec: plan.scaled_spec.clone(),
        seed: cfg.seed,
        frozen: artifact.len(),
        tail: None,
    }
}

/// The shared experiment body: both arms of [`run_experiment_with_source`]
/// monomorphize through here, so replay pays no dynamic dispatch on the
/// per-record path.
///
/// `Ideal` and `NoCache` additionally run on **concrete** cache types
/// rather than `Box<dyn DramCacheModel>`: their access paths are a few
/// tens of nanoseconds, so devirtualizing (and letting the access inline
/// into the dispatch loop) is a measurable win — and it is exactly these
/// cheap designs whose campaigns are trace-generation-bound. The heavy
/// designs keep the boxed path, where one indirect call is noise.
fn drive<I: Iterator<Item = TraceRecord>>(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    trace: I,
    total: u64,
) -> RunResult {
    let scaled_cache = cfg.scaled_cache_bytes(cache_bytes);
    match design {
        Design::Ideal => drive_cache(
            IdealCache::new(scaled_cache),
            design,
            cache_bytes,
            spec,
            cfg,
            trace,
            total,
        ),
        Design::NoCache => {
            drive_cache(NoCache::new(), design, cache_bytes, spec, cfg, trace, total)
        }
        _ => drive_cache(
            design.build_scaled(scaled_cache, cache_bytes.max(1), &cfg.system),
            design,
            cache_bytes,
            spec,
            cfg,
            trace,
            total,
        ),
    }
}

fn drive_cache<C: DramCacheModel, I: Iterator<Item = TraceRecord>>(
    cache: C,
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    mut trace: I,
    total: u64,
) -> RunResult {
    let mut sys = System::new(
        cfg.system.resolved_cores(spec) as usize,
        cache,
        cfg.system.mem_ports(),
        cfg.system.core,
    );

    let warmup = (total as f64 * cfg.warmup_fraction) as u64;
    let warmed = sys.run(&mut trace, warmup);
    // Both live generation and artifact replay present effectively
    // infinite streams (replay chains into lazy generation past the
    // frozen margin), so both phases must always run to their full
    // budget; a shortfall means a genuinely finite source, which would
    // otherwise *silently* skew the measurement.
    assert_eq!(
        warmed, warmup,
        "trace for '{}' ran dry during warmup ({warmed} of {warmup} records)",
        spec.name,
    );
    let before = sys.progress();
    sys.reset_measurement();
    let measured = sys.run(&mut trace, total - warmup);
    assert_eq!(
        measured,
        total - warmup,
        "trace for '{}' ran dry during measurement",
        spec.name,
    );
    let after = sys.progress();

    let instructions = after.instructions - before.instructions;
    let elapsed_ps = after.elapsed_ps.saturating_sub(before.elapsed_ps).max(1);
    // UIPC at 3 GHz: instructions / cycles, cycles = ps * 3 / 1000.
    let cycles = (elapsed_ps * 3) as f64 / 1000.0;
    let (cache, mem) = sys.into_parts();

    RunResult {
        design: design.name(),
        workload: spec.name.to_string(),
        cache_bytes,
        measured_accesses: measured,
        instructions,
        elapsed_ps,
        uipc: instructions as f64 / cycles,
        cache: *cache.stats(),
        stacked: *mem.stacked.stats(),
        offchip: *mem.offchip.stats(),
        stacked_energy: *mem.stacked.energy(),
        offchip_energy: *mem.offchip.energy(),
    }
}

/// A value paired with the wall time producing it took, in nanoseconds.
///
/// The run-level timing hook: callers that account simulation cost
/// (campaign telemetry, `bench-report`) get the measurement taken
/// immediately around the simulation itself, under whatever clock they
/// inject — timing never enters [`RunResult`], whose serialized form is
/// pinned by golden fixtures and bit-identity guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Wall time spent computing it.
    pub wall_ns: u64,
}

/// [`run_experiment_with_source`] timed under an injected clock:
/// `now_ns` is sampled immediately before and after the simulation
/// (any monotonic nanosecond source — the harness passes its campaign
/// clock, tests a deterministic counter).
pub fn run_experiment_timed_with_source(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    source: TraceSource<'_>,
    now_ns: &dyn Fn() -> u64,
) -> Timed<RunResult> {
    let start = now_ns();
    let value = run_experiment_with_source(design, cache_bytes, spec, cfg, source);
    Timed {
        value,
        wall_ns: now_ns().saturating_sub(start),
    }
}

/// A design's result paired with its speedup over the no-cache baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// The design's run.
    pub run: RunResult,
    /// `design UIPC / NoCache UIPC` — the y-axis of Figures 7 and 8.
    pub speedup: f64,
}

/// Runs the NoCache baseline for `(spec, cfg)` — the denominator of
/// every speedup. A baseline depends only on the workload, seed, and
/// simulation scale, so campaigns should run this **once** per
/// `(workload, seed)` and share it (see `unison_harness::BaselineStore`);
/// this function is the single place the baseline is defined.
pub fn run_baseline(spec: &WorkloadSpec, cfg: &SimConfig) -> RunResult {
    run_experiment(Design::NoCache, 0, spec, cfg)
}

/// Runs `design` and computes its speedup against a **precomputed**
/// baseline (from [`run_baseline`], typically memoized by the harness's
/// baseline store). Sweeping N designs against one baseline costs N
/// simulations, not 2N.
pub fn run_speedup_with_baseline(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    baseline: &RunResult,
) -> SpeedupResult {
    run_speedup_with_baseline_source(design, cache_bytes, spec, cfg, baseline, TraceSource::Live)
}

/// [`run_speedup_with_baseline`] with an explicit [`TraceSource`] — the
/// entry point campaigns use to replay a shared frozen trace.
///
/// # Panics
///
/// Panics if `baseline.uipc` is zero, negative, or non-finite: dividing
/// by a degenerate baseline would silently turn every speedup into
/// `inf`/`NaN` and poison downstream geomeans. A NoCache run that retires
/// no instructions indicates a broken trace or configuration and must be
/// surfaced, not averaged away.
pub fn run_speedup_with_baseline_source(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    baseline: &RunResult,
    source: TraceSource<'_>,
) -> SpeedupResult {
    check_baseline(baseline);
    let run = run_experiment_with_source(design, cache_bytes, spec, cfg, source);
    SpeedupResult {
        speedup: run.uipc / baseline.uipc,
        run,
    }
}

/// Asserts `baseline` is usable as a speedup denominator — the single
/// definition of "degenerate baseline" shared by
/// [`run_speedup_with_baseline_source`] and the batched
/// [`crate::CellSim`] path.
///
/// # Panics
///
/// Panics if `baseline.uipc` is zero, negative, or non-finite: dividing
/// by a degenerate baseline would silently turn every speedup into
/// `inf`/`NaN` and poison downstream geomeans.
pub fn check_baseline(baseline: &RunResult) {
    assert!(
        baseline.uipc.is_finite() && baseline.uipc > 0.0,
        "degenerate NoCache baseline for '{}' (uipc = {}): speedups against it would be \
         inf/NaN; check the baseline run (zero measured instructions? empty trace?)",
        baseline.workload,
        baseline.uipc,
    );
}

/// Runs `design` and the no-cache baseline under identical conditions
/// and returns the speedup.
///
/// Convenience for one-off comparisons: each call re-simulates the
/// baseline. Sweeps over multiple designs or sizes should compute the
/// baseline once with [`run_baseline`] and use
/// [`run_speedup_with_baseline`] (or drive the whole grid through
/// `unison_harness::Campaign::run_speedups`, which memoizes baselines
/// across the campaign).
pub fn run_speedup(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
) -> SpeedupResult {
    let base = run_baseline(spec, cfg);
    run_speedup_with_baseline(design, cache_bytes, spec, cfg, &base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    #[test]
    fn design_names_are_stable() {
        assert_eq!(Design::Unison.name(), "Unison");
        assert_eq!(Design::UnisonAssoc(32).name(), "Unison-32way");
    }

    #[test]
    fn design_names_round_trip_through_from_name() {
        for d in [
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Unison1984,
            Design::UnisonAssoc(32),
            Design::Ideal,
            Design::NoCache,
        ] {
            assert_eq!(Design::from_name(&d.name()), Some(d), "{}", d.name());
        }
        assert_eq!(Design::from_name("UNISON"), Some(Design::Unison));
        assert_eq!(Design::from_name("bogus"), None);
        assert_eq!(Design::from_name("unison-0way"), None, "0 ways is invalid");
    }

    #[test]
    fn timed_run_measures_under_the_injected_clock_without_changing_results() {
        use std::cell::Cell;
        let cfg = SimConfig::quick_test();
        let spec = workloads::web_search();
        // A deterministic clock: each sample advances 1 ms.
        let ticks = Cell::new(0u64);
        let now = || {
            let t = ticks.get();
            ticks.set(t + 1_000_000);
            t
        };
        let timed = run_experiment_timed_with_source(
            Design::Ideal,
            256 << 20,
            &spec,
            &cfg,
            TraceSource::Live,
            &now,
        );
        assert_eq!(timed.wall_ns, 1_000_000, "exactly two clock samples");
        let plain =
            run_experiment_with_source(Design::Ideal, 256 << 20, &spec, &cfg, TraceSource::Live);
        assert_eq!(
            serde_json::to_string(&timed.value).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "timing must never perturb the simulation result"
        );
    }

    #[test]
    fn precomputed_baseline_gives_same_speedup() {
        let cfg = SimConfig::quick_test();
        let w = workloads::data_serving();
        let base = run_baseline(&w, &cfg);
        let with = run_speedup_with_baseline(Design::Ideal, 1 << 30, &w, &cfg, &base);
        let without = run_speedup(Design::Ideal, 1 << 30, &w, &cfg);
        assert!((with.speedup - without.speedup).abs() < 1e-12);
    }

    #[test]
    fn quick_experiment_produces_sane_results() {
        let cfg = SimConfig::quick_test();
        let r = run_experiment(Design::Unison, 128 << 20, &workloads::web_search(), &cfg);
        assert_eq!(r.design, "Unison");
        assert!(r.uipc > 0.0 && r.uipc < 64.0);
        assert!(r.cache.accesses > 0);
        assert!(r.cache.miss_ratio() < 1.0);
        assert!(r.measured_accesses > 0);
    }

    #[test]
    fn warmup_region_is_excluded_from_stats() {
        let cfg = SimConfig::quick_test();
        let r = run_experiment(Design::Alloy, 128 << 20, &workloads::web_serving(), &cfg);
        let expected = cfg.accesses - (cfg.accesses as f64 * cfg.warmup_fraction) as u64;
        assert_eq!(r.cache.accesses, expected);
    }

    #[test]
    fn speedup_of_ideal_exceeds_one() {
        let cfg = SimConfig::quick_test();
        let s = run_speedup(Design::Ideal, 1 << 30, &workloads::data_serving(), &cfg);
        assert!(
            s.speedup > 1.0,
            "ideal cache must beat no cache, got {}",
            s.speedup
        );
    }

    #[test]
    fn scaled_cache_sizes_have_floor() {
        let cfg = SimConfig::quick_test();
        assert_eq!(cfg.scaled_cache_bytes(64 << 20), 1 << 20);
    }

    #[test]
    fn trace_plan_matches_run_experiment_inputs() {
        let cfg = SimConfig::quick_test();
        let w = workloads::tpch();
        let plan = cfg.trace_plan(&w, 512 << 20);
        assert_eq!(plan.scaled_spec, w.clone().scaled(cfg.scale));
        assert_eq!(
            plan.total,
            cfg.accesses_for(cfg.scaled_cache_bytes(512 << 20))
        );
        assert_eq!(plan.frozen_len, plan.total + replay_lookahead(plan.total));
        assert!(
            plan.frozen_len - plan.total >= 16_384 + plan.total / 32,
            "margin must scale with the trace length"
        );
    }

    /// The read-ahead safety net: an artifact covering the planned
    /// margin minimally is still bit-identical even if the dispatch
    /// loop's warmup-boundary drop eats into it — the stream chains
    /// into lazy live generation at the exact frozen position.
    #[test]
    fn replay_tail_fallback_is_bit_identical() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_serving();
        let size = 128 << 20;
        let plan = cfg.trace_plan(&w, size);
        // Freeze the bare minimum the assert allows; the boundary drop
        // then forces the chained generator tail into play for the last
        // records of the measurement phase on some designs.
        let minimal =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.frozen_len);
        // And a comfortably oversized one that never needs the tail.
        let oversized = unison_trace::TraceArtifact::freeze(
            &plan.scaled_spec,
            cfg.seed,
            plan.frozen_len + 100_000,
        );
        let a = run_experiment_with_source(
            Design::Alloy,
            size,
            &w,
            &cfg,
            TraceSource::Replay(&minimal),
        );
        let b = run_experiment_with_source(
            Design::Alloy,
            size,
            &w,
            &cfg,
            TraceSource::Replay(&oversized),
        );
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "artifact length above the required minimum must never affect results"
        );
    }

    #[test]
    fn replay_source_is_bit_identical_to_live() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_serving();
        let size = 128 << 20;
        let plan = cfg.trace_plan(&w, size);
        let artifact =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.frozen_len);

        let live = run_experiment(Design::Unison, size, &w, &cfg);
        let replayed = run_experiment_with_source(
            Design::Unison,
            size,
            &w,
            &cfg,
            TraceSource::Replay(&artifact),
        );
        assert_eq!(
            serde_json::to_string(&live).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "replay must reproduce live generation bit for bit"
        );
    }

    #[test]
    #[should_panic(expected = "different (scaled spec, seed)")]
    fn replay_rejects_wrong_artifact() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_serving();
        let plan = cfg.trace_plan(&w, 128 << 20);
        let wrong_seed =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed + 1, plan.frozen_len);
        let _ = run_experiment_with_source(
            Design::Unison,
            128 << 20,
            &w,
            &cfg,
            TraceSource::Replay(&wrong_seed),
        );
    }

    #[test]
    #[should_panic(expected = "records but this run plans for")]
    fn replay_rejects_short_artifact() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_serving();
        let plan = cfg.trace_plan(&w, 128 << 20);
        let short =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.total / 2);
        let _ = run_experiment_with_source(
            Design::Unison,
            128 << 20,
            &w,
            &cfg,
            TraceSource::Replay(&short),
        );
    }

    #[test]
    #[should_panic(expected = "degenerate NoCache baseline")]
    fn zero_uipc_baseline_is_rejected() {
        let cfg = SimConfig::quick_test();
        let w = workloads::data_serving();
        let mut baseline = run_baseline(&w, &cfg);
        baseline.uipc = 0.0;
        let _ = run_speedup_with_baseline(Design::Ideal, 1 << 30, &w, &cfg, &baseline);
    }

    #[test]
    #[should_panic(expected = "degenerate NoCache baseline")]
    fn non_finite_baseline_is_rejected() {
        let cfg = SimConfig::quick_test();
        let w = workloads::data_serving();
        let mut baseline = run_baseline(&w, &cfg);
        baseline.uipc = f64::NAN;
        let _ = run_speedup_with_baseline(Design::Ideal, 1 << 30, &w, &cfg, &baseline);
    }
}
