//! Experiment runner: (design, size, workload) → [`RunResult`].

use serde::{Deserialize, Serialize};
use unison_core::{
    AlloyCache, AlloyConfig, DramCacheModel, FootprintCache, FootprintConfig, IdealCache, MemPorts,
    NoCache, UnisonCache, UnisonConfig,
};
use unison_trace::{WorkloadGen, WorkloadSpec};

use crate::core_model::CoreParams;
use crate::metrics::RunResult;
use crate::system::System;

/// The cache designs the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// Alloy Cache (block-based baseline).
    Alloy,
    /// Footprint Cache (page-based baseline, SRAM tags).
    Footprint,
    /// Unison Cache, 960 B pages, 4-way (the paper's default).
    Unison,
    /// Unison Cache with 1984 B pages (Table V variant).
    Unison1984,
    /// Unison Cache with explicit associativity (Figure 5).
    UnisonAssoc(u32),
    /// The ideal 100%-hit reference.
    Ideal,
    /// No DRAM cache (speedup baseline).
    NoCache,
}

impl Design {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Design::Alloy => "Alloy".into(),
            Design::Footprint => "Footprint".into(),
            Design::Unison => "Unison".into(),
            Design::Unison1984 => "Unison-1984B".into(),
            Design::UnisonAssoc(w) => format!("Unison-{w}way"),
            Design::Ideal => "Ideal".into(),
            Design::NoCache => "NoCache".into(),
        }
    }

    /// Parses a design from a user-facing name (CLI spelling). Accepts
    /// the display names of [`Design::name`] case-insensitively plus the
    /// shorthands `unison-<N>way` and `unison1984`.
    pub fn from_name(name: &str) -> Option<Design> {
        let lower = name.trim().to_ascii_lowercase();
        match lower.as_str() {
            "alloy" => Some(Design::Alloy),
            "footprint" => Some(Design::Footprint),
            "unison" => Some(Design::Unison),
            "unison1984" | "unison-1984" | "unison-1984b" => Some(Design::Unison1984),
            "ideal" => Some(Design::Ideal),
            "nocache" | "no-cache" | "none" => Some(Design::NoCache),
            _ => {
                let ways = lower.strip_prefix("unison-")?.strip_suffix("way")?;
                // 0 ways would assert deep inside UnisonCache::new; reject
                // it here so CLIs report a clean unknown-design error.
                ways.parse()
                    .ok()
                    .filter(|&w| w >= 1)
                    .map(Design::UnisonAssoc)
            }
        }
    }

    /// Instantiates the design at `cache_bytes`.
    pub fn build(&self, cache_bytes: u64) -> Box<dyn DramCacheModel> {
        self.build_scaled(cache_bytes, cache_bytes)
    }

    /// Instantiates the design at the *scaled* capacity while deriving
    /// size-dependent structures (Footprint Cache's SRAM tag latency, the
    /// way-predictor sizing rule) from the *nominal* paper-labeled size —
    /// those latencies are the effect under study and must not shrink
    /// with the fast-run scale factor.
    pub fn build_scaled(&self, scaled_bytes: u64, nominal_bytes: u64) -> Box<dyn DramCacheModel> {
        match self {
            Design::Alloy => Box::new(AlloyCache::new(AlloyConfig::new(scaled_bytes))),
            Design::Footprint => Box::new(FootprintCache::new(
                FootprintConfig::new(scaled_bytes).with_nominal(nominal_bytes),
            )),
            Design::Unison => Box::new(UnisonCache::new(
                UnisonConfig::new(scaled_bytes).with_nominal(nominal_bytes),
            )),
            Design::Unison1984 => Box::new(UnisonCache::new(
                UnisonConfig::large_pages(scaled_bytes).with_nominal(nominal_bytes),
            )),
            Design::UnisonAssoc(w) => Box::new(UnisonCache::new(
                UnisonConfig::new(scaled_bytes)
                    .with_assoc(*w)
                    .with_nominal(nominal_bytes),
            )),
            Design::Ideal => Box::new(IdealCache::new(scaled_bytes)),
            Design::NoCache => Box::new(NoCache::new()),
        }
    }
}

/// Simulation-scale parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total trace records per run (warmup + measurement).
    pub accesses: u64,
    /// Fraction of records used for warmup (statistics discarded). The
    /// paper uses two thirds of each trace (§IV-A).
    pub warmup_fraction: f64,
    /// Core timing parameters.
    pub core: CoreParams,
    /// Trace seed.
    pub seed: u64,
    /// Divide workload footprints *and* cache sizes by this factor to
    /// trade fidelity for runtime; shapes are preserved because cache
    /// and working set shrink together (see DESIGN.md §4).
    pub scale: u64,
}

impl SimConfig {
    /// Full-fidelity defaults (slow; used for final EXPERIMENTS.md runs).
    pub fn full() -> Self {
        SimConfig {
            accesses: 24_000_000,
            warmup_fraction: 2.0 / 3.0,
            core: CoreParams::default(),
            seed: 42,
            scale: 1,
        }
    }

    /// Bench defaults: ÷8 scale, enough accesses for steady state at the
    /// scaled sizes.
    pub fn bench_default() -> Self {
        SimConfig {
            accesses: 6_000_000,
            warmup_fraction: 2.0 / 3.0,
            core: CoreParams::default(),
            seed: 42,
            scale: 8,
        }
    }

    /// Tiny runs for unit/integration tests.
    pub fn quick_test() -> Self {
        SimConfig {
            accesses: 120_000,
            warmup_fraction: 0.5,
            core: CoreParams::default(),
            seed: 42,
            scale: 64,
        }
    }

    /// Applies the scale factor to a nominal (paper-labeled) cache size.
    pub fn scaled_cache_bytes(&self, nominal: u64) -> u64 {
        (nominal / self.scale).max(1 << 20)
    }

    /// Trace length for a run against a cache of `scaled_bytes`: at least
    /// the configured floor, and enough that the warmup region can fill
    /// the cache about twice over (≈ one 64 B block fetched per access),
    /// so the measurement region sees steady-state behaviour.
    pub fn accesses_for(&self, scaled_bytes: u64) -> u64 {
        self.accesses.max(3 * scaled_bytes / 64)
    }
}

/// Runs one experiment: `design` at nominal `cache_bytes` (scaled per
/// `cfg`) over `spec` (footprint scaled likewise).
///
/// The returned [`RunResult`] reports the *nominal* cache size.
pub fn run_experiment(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
) -> RunResult {
    let scaled_spec = spec.clone().scaled(cfg.scale);
    let scaled_cache = cfg.scaled_cache_bytes(cache_bytes);
    let mut trace = WorkloadGen::new(scaled_spec, cfg.seed);
    let cache = design.build_scaled(scaled_cache, cache_bytes.max(1));
    let mut sys = System::new(
        spec.cores as usize,
        cache,
        MemPorts::paper_default(),
        cfg.core,
    );

    let total = cfg.accesses_for(scaled_cache);
    let warmup = (total as f64 * cfg.warmup_fraction) as u64;
    sys.run(&mut trace, warmup);
    let before = sys.progress();
    sys.reset_measurement();
    let measured = sys.run(&mut trace, total - warmup);
    let after = sys.progress();

    let instructions = after.instructions - before.instructions;
    let elapsed_ps = after.elapsed_ps.saturating_sub(before.elapsed_ps).max(1);
    // UIPC at 3 GHz: instructions / cycles, cycles = ps * 3 / 1000.
    let cycles = (elapsed_ps * 3) as f64 / 1000.0;
    let (cache, mem) = sys.into_parts();

    RunResult {
        design: design.name(),
        workload: spec.name.to_string(),
        cache_bytes,
        measured_accesses: measured,
        instructions,
        elapsed_ps,
        uipc: instructions as f64 / cycles,
        cache: *cache.stats(),
        stacked: *mem.stacked.stats(),
        offchip: *mem.offchip.stats(),
        stacked_energy: *mem.stacked.energy(),
        offchip_energy: *mem.offchip.energy(),
    }
}

/// A design's result paired with its speedup over the no-cache baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// The design's run.
    pub run: RunResult,
    /// `design UIPC / NoCache UIPC` — the y-axis of Figures 7 and 8.
    pub speedup: f64,
}

/// Runs the NoCache baseline for `(spec, cfg)` — the denominator of
/// every speedup. A baseline depends only on the workload, seed, and
/// simulation scale, so campaigns should run this **once** per
/// `(workload, seed)` and share it (see `unison_harness::BaselineStore`);
/// this function is the single place the baseline is defined.
pub fn run_baseline(spec: &WorkloadSpec, cfg: &SimConfig) -> RunResult {
    run_experiment(Design::NoCache, 0, spec, cfg)
}

/// Runs `design` and computes its speedup against a **precomputed**
/// baseline (from [`run_baseline`], typically memoized by the harness's
/// baseline store). Sweeping N designs against one baseline costs N
/// simulations, not 2N.
pub fn run_speedup_with_baseline(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
    baseline: &RunResult,
) -> SpeedupResult {
    let run = run_experiment(design, cache_bytes, spec, cfg);
    SpeedupResult {
        speedup: run.uipc / baseline.uipc,
        run,
    }
}

/// Runs `design` and the no-cache baseline under identical conditions
/// and returns the speedup.
///
/// Convenience for one-off comparisons: each call re-simulates the
/// baseline. Sweeps over multiple designs or sizes should compute the
/// baseline once with [`run_baseline`] and use
/// [`run_speedup_with_baseline`] (or drive the whole grid through
/// `unison_harness::Campaign::run_speedups`, which memoizes baselines
/// across the campaign).
pub fn run_speedup(
    design: Design,
    cache_bytes: u64,
    spec: &WorkloadSpec,
    cfg: &SimConfig,
) -> SpeedupResult {
    let base = run_baseline(spec, cfg);
    run_speedup_with_baseline(design, cache_bytes, spec, cfg, &base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    #[test]
    fn design_names_are_stable() {
        assert_eq!(Design::Unison.name(), "Unison");
        assert_eq!(Design::UnisonAssoc(32).name(), "Unison-32way");
    }

    #[test]
    fn design_names_round_trip_through_from_name() {
        for d in [
            Design::Alloy,
            Design::Footprint,
            Design::Unison,
            Design::Unison1984,
            Design::UnisonAssoc(32),
            Design::Ideal,
            Design::NoCache,
        ] {
            assert_eq!(Design::from_name(&d.name()), Some(d), "{}", d.name());
        }
        assert_eq!(Design::from_name("UNISON"), Some(Design::Unison));
        assert_eq!(Design::from_name("bogus"), None);
        assert_eq!(Design::from_name("unison-0way"), None, "0 ways is invalid");
    }

    #[test]
    fn precomputed_baseline_gives_same_speedup() {
        let cfg = SimConfig::quick_test();
        let w = workloads::data_serving();
        let base = run_baseline(&w, &cfg);
        let with = run_speedup_with_baseline(Design::Ideal, 1 << 30, &w, &cfg, &base);
        let without = run_speedup(Design::Ideal, 1 << 30, &w, &cfg);
        assert!((with.speedup - without.speedup).abs() < 1e-12);
    }

    #[test]
    fn quick_experiment_produces_sane_results() {
        let cfg = SimConfig::quick_test();
        let r = run_experiment(Design::Unison, 128 << 20, &workloads::web_search(), &cfg);
        assert_eq!(r.design, "Unison");
        assert!(r.uipc > 0.0 && r.uipc < 64.0);
        assert!(r.cache.accesses > 0);
        assert!(r.cache.miss_ratio() < 1.0);
        assert!(r.measured_accesses > 0);
    }

    #[test]
    fn warmup_region_is_excluded_from_stats() {
        let cfg = SimConfig::quick_test();
        let r = run_experiment(Design::Alloy, 128 << 20, &workloads::web_serving(), &cfg);
        let expected = cfg.accesses - (cfg.accesses as f64 * cfg.warmup_fraction) as u64;
        assert_eq!(r.cache.accesses, expected);
    }

    #[test]
    fn speedup_of_ideal_exceeds_one() {
        let cfg = SimConfig::quick_test();
        let s = run_speedup(Design::Ideal, 1 << 30, &workloads::data_serving(), &cfg);
        assert!(
            s.speedup > 1.0,
            "ideal cache must beat no cache, got {}",
            s.speedup
        );
    }

    #[test]
    fn scaled_cache_sizes_have_floor() {
        let cfg = SimConfig::quick_test();
        assert_eq!(cfg.scaled_cache_bytes(64 << 20), 1 << 20);
    }
}
