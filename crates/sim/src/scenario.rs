//! The scenario layer: typed, serializable system specifications.
//!
//! A [`SystemSpec`] names every machine-level knob an experiment can vary
//! — core count and core timing model, Unison cache geometry (page size,
//! associativity, way-location policy), and the DRAM timing/energy
//! presets of both the stacked and the off-chip device. It is the single
//! source of truth that flows from the harness's grids through
//! [`SimConfig`](crate::SimConfig) into
//! [`Design::build_scaled`](crate::Design::build_scaled),
//! `unison_core` constructors, and `unison_dram` device models.
//!
//! A [`Scenario`] is a named `SystemSpec` — the unit the harness sweeps
//! as an axis and the unit `sweep --scenario FILE.json` loads from disk.
//! JSON files may be partial: omitted fields keep their defaults, so
//! `{"cores": 4}` is a complete, valid scenario. Unknown fields are
//! rejected (a typo must not silently run the default machine).
//!
//! [`Scenario::default`] reproduces the seed-era constants exactly — a
//! default-scenario campaign is bit-identical to the pre-scenario tree
//! (pinned by the golden fixtures under `tests/golden/`).

use serde::{Deserialize, Serialize};
use unison_core::{MemPorts, WayPolicy};
use unison_dram::DramPreset;
use unison_trace::WorkloadSpec;

use crate::core_model::CoreParams;

/// Default Unison page size in bytes (15 blocks of 64 B — §III).
pub const DEFAULT_PAGE_BYTES: u32 = 960;

/// Default Unison associativity (§IV-C.1).
pub const DEFAULT_WAYS: u32 = 4;

/// Full machine-level parameterization of one simulated system.
///
/// `cores`, `page_bytes`, `ways`, and `way_policy` are optional
/// *overrides*: `None` means "whatever the workload or design would use
/// on its own" (16 cores for every preset workload; 960 B / 4-way /
/// prediction for `Design::Unison`, with `Design::Unison1984` and
/// `Design::UnisonAssoc` keeping their variant-specific geometry). The
/// DRAM presets and the core timing model are always concrete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SystemSpec {
    /// Core-count override; `None` runs the workload's own pod size.
    pub cores: Option<u32>,
    /// Core timing model (interval-style; Table III's A15-like OoO).
    pub core: CoreParams,
    /// Unison-family page-size override in bytes. Must be `64 × (2^n − 1)`
    /// (192, 448, 960, 1984, 4032 …) for the residue mapper.
    pub page_bytes: Option<u32>,
    /// Unison-family associativity override.
    pub ways: Option<u32>,
    /// Unison-family way-location policy override.
    pub way_policy: Option<WayPolicy>,
    /// Die-stacked DRAM device preset.
    pub stacked: DramPreset,
    /// Off-chip DRAM device preset.
    pub offchip: DramPreset,
}

impl Default for SystemSpec {
    /// The seed-era machine: Table III devices, default core model, no
    /// geometry overrides.
    fn default() -> Self {
        SystemSpec {
            cores: None,
            core: CoreParams::default(),
            page_bytes: None,
            ways: None,
            way_policy: None,
            stacked: DramPreset::Stacked,
            offchip: DramPreset::Ddr3_1600,
        }
    }
}

impl SystemSpec {
    const FIELDS: [&'static str; 7] = [
        "cores",
        "core",
        "page_bytes",
        "ways",
        "way_policy",
        "stacked",
        "offchip",
    ];

    /// Checks every knob for a physically meaningful value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob: a zero or >256
    /// core count (trace records carry `u8` core ids), a page size that
    /// the residue mapper cannot index or a DRAM row cannot hold, zero
    /// or >256 ways, or a non-positive base IPC. Validating here turns
    /// what would be asserts deep inside cache construction — mid-
    /// campaign, on a worker thread — into clean CLI/config errors.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(c) = self.cores {
            if c == 0 || c > 256 {
                return Err(format!("cores must be within 1..=256, got {c}"));
            }
        }
        if let Some(pb) = self.page_bytes {
            let blocks = pb / 64;
            if pb == 0 || pb % 64 != 0 || blocks < 3 || !(blocks + 1).is_power_of_two() {
                return Err(format!(
                    "page_bytes must be 64 x (2^n - 1) with n >= 2 \
                     (192, 448, 960, 1984, 4032, 8128), got {pb}"
                ));
            }
            // 8128 B (127 blocks) is the largest page that still fits in
            // an 8 KB DRAM row alongside its set metadata; bigger values
            // would assert inside UnisonRowLayout mid-campaign.
            if blocks > 127 {
                return Err(format!(
                    "page_bytes must be at most 8128 (page plus set metadata \
                     must fit in an 8 KB DRAM row), got {pb}"
                ));
            }
        }
        if let Some(w) = self.ways {
            if w == 0 || w > 128 {
                // The paper tops out at 32 ways. 128 leaves room for
                // exploration while guaranteeing at least one full set at
                // the 1 MB scaled-cache floor even with the largest
                // (8128 B) pages; beyond that, tiny quick-scale runs
                // would assert "cache too small" mid-campaign.
                return Err(format!("ways must be within 1..=128, got {w}"));
            }
        }
        if !(self.core.ipc_base > 0.0 && self.core.ipc_base.is_finite()) {
            return Err(format!(
                "core.ipc_base must be positive and finite, got {}",
                self.core.ipc_base
            ));
        }
        Ok(())
    }

    /// The workload this system actually runs: `spec` with the core-count
    /// override applied. Trace generation, artifact keys, and baseline
    /// memo keys all derive from this, so a core-count change re-keys
    /// every store automatically. A `Some(c)` equal to the workload's own
    /// count yields an identical spec (and therefore identical keys) to
    /// `None`.
    pub fn effective_workload(&self, spec: &WorkloadSpec) -> WorkloadSpec {
        let mut out = spec.clone();
        if let Some(c) = self.cores {
            out.cores = c;
        }
        out
    }

    /// The core count a run over `spec` drives.
    pub fn resolved_cores(&self, spec: &WorkloadSpec) -> u32 {
        self.cores.unwrap_or(spec.cores)
    }

    /// Builds the two DRAM device models this spec names.
    pub fn mem_ports(&self) -> MemPorts {
        MemPorts::new(self.stacked.config(), self.offchip.config())
    }

    /// Page size in blocks, when overridden (validated to be `2^n − 1`).
    pub fn page_blocks(&self) -> Option<u32> {
        self.page_bytes.map(|pb| pb / 64)
    }

    /// Compact human-readable label naming every *non-default* knob
    /// (`"c4+ways8+stacked-2x"`), or `"default"`. Used as the implicit
    /// scenario name for axis-flag cross products and bare spec files.
    pub fn label(&self) -> String {
        let d = SystemSpec::default();
        let mut parts = Vec::new();
        if let Some(c) = self.cores {
            parts.push(format!("c{c}"));
        }
        // Name every differing core-model subfield: two specs differing
        // only in overlap_cycles (or stall_on_stores) must not collide on
        // an implicit name.
        if self.core.ipc_base != d.core.ipc_base {
            parts.push(format!("ipc{}", self.core.ipc_base));
        }
        if self.core.overlap_cycles != d.core.overlap_cycles {
            parts.push(format!("ov{}", self.core.overlap_cycles));
        }
        if self.core.stall_on_stores != d.core.stall_on_stores {
            parts.push("stall-stores".to_string());
        }
        if let Some(pb) = self.page_bytes {
            parts.push(format!("page{pb}"));
        }
        if let Some(w) = self.ways {
            parts.push(format!("ways{w}"));
        }
        if let Some(p) = self.way_policy {
            parts.push(p.name().to_string());
        }
        if self.stacked != d.stacked {
            parts.push(self.stacked.name().to_string());
        }
        if self.offchip != d.offchip {
            parts.push(self.offchip.name().to_string());
        }
        if parts.is_empty() {
            "default".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Manual deserialization so scenario files may be **partial**: any
/// omitted field keeps its [`SystemSpec::default`] value. (The derive
/// would demand every field, which is hostile for config files whose
/// point is overriding one knob.)
impl Deserialize for SystemSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_obj(v, "SystemSpec")?;
        serde::deny_unknown(obj, &Self::FIELDS, "SystemSpec")?;
        let d = SystemSpec::default();
        let spec = SystemSpec {
            cores: serde::field(obj, "cores", "SystemSpec")?,
            core: opt_field(obj, "core", d.core)?,
            page_bytes: serde::field(obj, "page_bytes", "SystemSpec")?,
            ways: serde::field(obj, "ways", "SystemSpec")?,
            way_policy: serde::field(obj, "way_policy", "SystemSpec")?,
            stacked: opt_field(obj, "stacked", d.stacked)?,
            offchip: opt_field(obj, "offchip", d.offchip)?,
        };
        spec.validate().map_err(serde::DeError::msg)?;
        Ok(spec)
    }
}

/// Deserializes `key` if present (and non-null), else returns `default`.
fn opt_field<T: Deserialize>(
    obj: &[(String, serde::Value)],
    key: &str,
    default: T,
) -> Result<T, serde::DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, serde::Value::Null)) | None => Ok(default),
        Some((_, v)) => {
            T::from_value(v).map_err(|e| serde::DeError::msg(format!("in field `{key}`: {e}")))
        }
    }
}

/// A named [`SystemSpec`] — one point on the harness's scenario axis.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Display name (tables, CSV `scenario` column, progress lines).
    pub name: String,
    /// The machine this scenario runs.
    pub system: SystemSpec,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "default".to_string(),
            system: SystemSpec::default(),
        }
    }
}

impl Scenario {
    /// Wraps a spec, naming it after its non-default knobs
    /// ([`SystemSpec::label`]).
    pub fn from_spec(system: SystemSpec) -> Self {
        Scenario {
            name: system.label(),
            system,
        }
    }
}

/// Accepts either `{"name": ..., "system": {...}}` or a bare
/// [`SystemSpec`] object (named after its non-default knobs).
impl Deserialize for Scenario {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_obj(v, "Scenario")?;
        if obj.iter().any(|(k, _)| k == "system") {
            serde::deny_unknown(obj, &["name", "system"], "Scenario")?;
            let system: SystemSpec = serde::field(obj, "system", "Scenario")?;
            let name = opt_field(obj, "name", system.label())?;
            Ok(Scenario { name, system })
        } else {
            SystemSpec::from_value(v).map(Scenario::from_spec)
        }
    }
}

/// Parses a scenario file: one scenario object or an array of them.
///
/// # Errors
///
/// Returns a message naming the first syntax error, unknown field,
/// invalid knob value, or duplicate scenario name.
pub fn scenarios_from_json(text: &str) -> Result<Vec<Scenario>, String> {
    let value = serde_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let scenarios: Vec<Scenario> = match &value {
        serde::Value::Arr(items) => items
            .iter()
            .map(|v| Scenario::from_value(v).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?,
        _ => vec![Scenario::from_value(&value).map_err(|e| e.to_string())?],
    };
    if scenarios.is_empty() {
        return Err("scenario file contains an empty array".into());
    }
    let mut seen: Vec<&str> = Vec::new();
    for s in &scenarios {
        if seen.contains(&s.name.as_str()) {
            return Err(format!(
                "duplicate scenario name {:?}; results would be indistinguishable",
                s.name
            ));
        }
        seen.push(&s.name);
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_seed_era_machine() {
        let s = SystemSpec::default();
        assert_eq!(s.cores, None);
        assert_eq!(s.core, CoreParams::default());
        assert_eq!(s.page_bytes, None);
        assert_eq!(s.ways, None);
        assert_eq!(s.way_policy, None);
        assert_eq!(s.stacked, DramPreset::Stacked);
        assert_eq!(s.offchip, DramPreset::Ddr3_1600);
        assert_eq!(s.label(), "default");
        assert_eq!(Scenario::default().name, "default");
        s.validate().expect("default spec validates");
    }

    #[test]
    fn partial_json_keeps_defaults() {
        let s: SystemSpec = serde_json::from_str(r#"{"cores": 4}"#).unwrap();
        assert_eq!(s.cores, Some(4));
        assert_eq!(s.stacked, DramPreset::Stacked);
        assert_eq!(s.label(), "c4");
    }

    #[test]
    fn unknown_field_is_rejected() {
        let e = serde_json::from_str::<SystemSpec>(r#"{"coers": 4}"#).unwrap_err();
        assert!(e.to_string().contains("unknown field"), "{e}");
        assert!(e.to_string().contains("cores"), "error lists fields: {e}");
    }

    #[test]
    fn invalid_knobs_are_rejected() {
        for bad in [
            r#"{"cores": 0}"#,
            r#"{"cores": 1000}"#,
            r#"{"page_bytes": 1000}"#,
            r#"{"page_bytes": 64}"#,
            // 255 blocks passes the 2^n-1 shape but overflows a DRAM row.
            r#"{"page_bytes": 16320}"#,
            r#"{"ways": 0}"#,
            // Beyond the 1..=128 cap: would hit "cache too small" asserts
            // mid-campaign at quick scales.
            r#"{"ways": 8192}"#,
            r#"{"core": {"ipc_base": 0.0}}"#,
            r#"{"stacked": "hbm9"}"#,
            r#"{"way_policy": "psychic"}"#,
        ] {
            assert!(serde_json::from_str::<SystemSpec>(bad).is_err(), "{bad}");
        }
        // The largest row-fitting page is valid.
        assert!(serde_json::from_str::<SystemSpec>(r#"{"page_bytes": 8128}"#).is_ok());
    }

    #[test]
    fn spec_json_round_trips_identically() {
        let exotic = SystemSpec {
            cores: Some(32),
            core: CoreParams {
                ipc_base: 4.0,
                overlap_cycles: 48,
                stall_on_stores: true,
            },
            page_bytes: Some(1984),
            ways: Some(8),
            way_policy: Some(WayPolicy::SerialTagData),
            stacked: DramPreset::Stacked2x,
            offchip: DramPreset::Ddr4_2400,
        };
        for spec in [SystemSpec::default(), exotic] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: SystemSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn scenario_files_accept_bare_and_named_forms() {
        let bare = scenarios_from_json(r#"{"ways": 8}"#).unwrap();
        assert_eq!(bare.len(), 1);
        assert_eq!(bare[0].name, "ways8");

        let named =
            scenarios_from_json(r#"[{"name": "big", "system": {"cores": 32}}, {"cores": 4}]"#)
                .unwrap();
        assert_eq!(named.len(), 2);
        assert_eq!(named[0].name, "big");
        assert_eq!(named[0].system.cores, Some(32));
        assert_eq!(named[1].name, "c4");
    }

    #[test]
    fn scenario_files_reject_duplicates_and_empties() {
        assert!(scenarios_from_json("[]").unwrap_err().contains("empty"));
        let dup = r#"[{"cores": 4}, {"cores": 4}]"#;
        assert!(scenarios_from_json(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn effective_workload_rekeys_only_on_real_overrides() {
        let w = unison_trace::workloads::web_search();
        let default = SystemSpec::default();
        assert_eq!(default.effective_workload(&w), w);

        let same = SystemSpec {
            cores: Some(w.cores),
            ..SystemSpec::default()
        };
        assert_eq!(
            same.effective_workload(&w),
            w,
            "explicit default core count must not re-key stores"
        );

        let quad = SystemSpec {
            cores: Some(4),
            ..SystemSpec::default()
        };
        let eff = quad.effective_workload(&w);
        assert_eq!(eff.cores, 4);
        assert_eq!(quad.resolved_cores(&w), 4);
        assert_eq!(default.resolved_cores(&w), 16);
    }

    #[test]
    fn labels_compose_in_field_order() {
        let s = SystemSpec {
            cores: Some(8),
            ways: Some(2),
            stacked: DramPreset::StackedHalf,
            ..SystemSpec::default()
        };
        assert_eq!(s.label(), "c8+ways2+stacked-half");
    }

    #[test]
    fn core_model_subfields_get_distinct_labels() {
        // Two machines differing only in overlap_cycles (or the store
        // stall flag) must not collide on an implicit name — a bare-spec
        // scenario file sweeping the core-model axis relies on this.
        let overlap = SystemSpec {
            core: CoreParams {
                overlap_cycles: 48,
                ..CoreParams::default()
            },
            ..SystemSpec::default()
        };
        let stall = SystemSpec {
            core: CoreParams {
                stall_on_stores: true,
                ..CoreParams::default()
            },
            ..SystemSpec::default()
        };
        assert_eq!(overlap.label(), "ov48");
        assert_eq!(stall.label(), "stall-stores");
        assert_ne!(overlap.label(), stall.label());
        let both = scenarios_from_json(
            r#"[{"core": {"overlap_cycles": 24}}, {"core": {"overlap_cycles": 48}}]"#,
        )
        .expect("distinct overlap machines are distinct scenarios");
        assert_eq!(both[0].name, "default", "24 is the default overlap");
        assert_eq!(both[1].name, "ov48");
    }
}
