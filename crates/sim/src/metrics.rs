//! Experiment result records.

use serde::{Deserialize, Serialize};
use unison_core::CacheStats;
use unison_dram::{DramStats, EnergyCounters, Ps};

/// The complete outcome of one (design, size, workload) simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Design display name.
    pub design: String,
    /// Workload display name.
    pub workload: String,
    /// Cache capacity in bytes (0 for the no-cache baseline).
    pub cache_bytes: u64,
    /// Records simulated in the measurement region.
    pub measured_accesses: u64,
    /// Instructions retired in the measurement region.
    pub instructions: u64,
    /// Pod elapsed time over the measurement region.
    pub elapsed_ps: Ps,
    /// User instructions per CPU cycle across the pod — the paper's
    /// performance metric (§IV-A).
    pub uipc: f64,
    /// Cache-design statistics over the measurement region.
    pub cache: CacheStats,
    /// Stacked-DRAM device statistics.
    pub stacked: DramStats,
    /// Off-chip device statistics.
    pub offchip: DramStats,
    /// Stacked-DRAM dynamic-energy counters.
    pub stacked_energy: EnergyCounters,
    /// Off-chip dynamic-energy counters.
    pub offchip_energy: EnergyCounters,
}

impl RunResult {
    /// Off-chip traffic per retired kilo-instruction, in bytes — the
    /// bandwidth-efficiency lens of §V.A.
    pub fn offchip_bytes_per_kilo_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cache.offchip_bytes() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Total DRAM row activations (stacked + off-chip) per kilo-
    /// instruction — the §V.D energy proxy.
    pub fn activations_per_kilo_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.stacked_energy.activations + self.offchip_energy.activations) as f64 * 1000.0
                / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            design: "Test".into(),
            workload: "W".into(),
            cache_bytes: 1 << 30,
            measured_accesses: 10,
            instructions: 2000,
            elapsed_ps: 1_000_000,
            uipc: 1.0,
            cache: CacheStats {
                offchip_read_bytes: 640,
                offchip_write_bytes: 360,
                ..Default::default()
            },
            stacked: DramStats::default(),
            offchip: DramStats::default(),
            stacked_energy: EnergyCounters {
                activations: 4,
                ..Default::default()
            },
            offchip_energy: EnergyCounters {
                activations: 6,
                ..Default::default()
            },
        }
    }

    #[test]
    fn derived_metrics() {
        let r = result();
        assert!((r.offchip_bytes_per_kilo_instr() - 500.0).abs() < 1e-9);
        assert!((r.activations_per_kilo_instr() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn serializes_to_json() {
        let r = result();
        let j = serde_json::to_string(&r).expect("serialize");
        assert!(j.contains("\"design\":\"Test\""));
    }
}
