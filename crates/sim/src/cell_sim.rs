//! Incremental single-cell simulation for trace-shared batching.
//!
//! [`CellSim`] is [`crate::run_experiment_with_source`] unrolled into a
//! resumable state machine: construct one per campaign cell, then
//! [`CellSim::step`] each in turn with small record budgets so a group
//! of cells replaying the **same** frozen [`TraceArtifact`] interleave
//! their simulations over one streaming pass of the shared bytes —
//! every cell's replay cursor walks the region of the artifact that is
//! already hot in cache. Results are **bit-identical** to the one-shot
//! runner (pinned by `stepped_cell_sim_matches_one_shot_runner` and the
//! harness-level batching identity tests): the phase boundaries, the
//! fresh-session buffered-record drop, and the result arithmetic all
//! replicate `drive_cache` exactly.

use unison_core::DramCacheModel;
use unison_trace::{TraceArtifact, WorkloadSpec};

use crate::metrics::RunResult;
use crate::runner::{replay_with_tail, Design, ReplayWithTail, SimConfig};
use crate::system::{DispatchSession, Progress, System};

/// Where a [`CellSim`] is in the warmup → measurement → done lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Measurement,
    Done,
}

/// One experiment cell being simulated incrementally against a borrowed
/// trace artifact.
///
/// Borrows **only** the artifact (the trace plan's scaled spec is cloned
/// into the replay cursor), so a batch driver can hold many `CellSim`s
/// against `Arc`-shared artifacts without self-referential lifetimes.
///
/// # Construction panics
///
/// [`CellSim::new`] validates the artifact exactly as
/// [`crate::TraceSource::Replay`] does: it must have been frozen from
/// this cell's `(scaled spec, seed)` and cover the planned
/// `frozen_len`.
pub struct CellSim<'a> {
    design: Design,
    cache_bytes: u64,
    workload: String,
    sys: System<Box<dyn DramCacheModel>>,
    trace: ReplayWithTail<'a>,
    session: DispatchSession,
    phase: Phase,
    /// Records consumed so far within the current phase.
    done_in_phase: u64,
    warmup: u64,
    total: u64,
    before: Progress,
    after: Progress,
}

impl<'a> CellSim<'a> {
    /// Sets up the cell: builds the scaled cache and system, validates
    /// `artifact` against the run's trace plan, and positions the replay
    /// cursor at record zero. No records are consumed yet.
    pub fn new(
        design: Design,
        cache_bytes: u64,
        spec: &WorkloadSpec,
        cfg: &SimConfig,
        artifact: &'a TraceArtifact,
    ) -> Self {
        let plan = cfg.trace_plan(spec, cache_bytes);
        let trace = replay_with_tail(artifact, &plan, spec, cfg);
        let scaled_cache = cfg.scaled_cache_bytes(cache_bytes);
        // `build_scaled` constructs the identical cache the one-shot
        // runner's `drive` would for every design: its Ideal/NoCache
        // devirtualization is a dispatch-cost optimization, not a
        // different model.
        let cache = design.build_scaled(scaled_cache, cache_bytes.max(1), &cfg.system);
        let sys = System::new(
            cfg.system.resolved_cores(spec) as usize,
            cache,
            cfg.system.mem_ports(),
            cfg.system.core,
        );
        let total = plan.total;
        CellSim {
            design,
            cache_bytes,
            workload: spec.name.to_string(),
            sys,
            trace,
            session: DispatchSession::new(),
            phase: Phase::Warmup,
            done_in_phase: 0,
            warmup: (total as f64 * cfg.warmup_fraction) as u64,
            total,
            before: Progress::default(),
            after: Progress::default(),
        }
    }

    /// Whether both phases have run to completion.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Records still to be consumed across the remaining phases.
    pub fn remaining(&self) -> u64 {
        match self.phase {
            Phase::Warmup => self.total - self.done_in_phase,
            Phase::Measurement => (self.total - self.warmup) - self.done_in_phase,
            Phase::Done => 0,
        }
    }

    /// Advances the simulation by up to `budget` records, crossing the
    /// warmup/measurement boundary mid-step if the budget spans it
    /// (snapshotting progress, resetting statistics, and starting a
    /// fresh dispatch session exactly as the one-shot runner's phase
    /// split does). Returns the records actually consumed — less than
    /// `budget` only once the cell finishes.
    ///
    /// # Panics
    ///
    /// Panics if the trace runs dry before a phase completes, with the
    /// same diagnostics as the one-shot runner. (A replayed artifact
    /// chains into live tail generation, so this indicates a genuinely
    /// broken source, not an undersized artifact.)
    pub fn step(&mut self, budget: u64) -> u64 {
        let mut consumed = 0u64;
        while consumed < budget && self.phase != Phase::Done {
            let phase_total = match self.phase {
                Phase::Warmup => self.warmup,
                Phase::Measurement => self.total - self.warmup,
                Phase::Done => unreachable!(),
            };
            let want = (budget - consumed).min(phase_total - self.done_in_phase);
            if want > 0 {
                let got = self
                    .sys
                    .run_session(&mut self.session, &mut self.trace, want);
                self.done_in_phase += got;
                consumed += got;
                if got < want {
                    match self.phase {
                        Phase::Warmup => panic!(
                            "trace for '{}' ran dry during warmup ({} of {} records)",
                            self.workload, self.done_in_phase, self.warmup,
                        ),
                        _ => panic!("trace for '{}' ran dry during measurement", self.workload,),
                    }
                }
            }
            if self.done_in_phase == phase_total {
                match self.phase {
                    Phase::Warmup => {
                        self.before = self.sys.progress();
                        self.sys.reset_measurement();
                        // Fresh session: the one-shot runner's second
                        // `run` call drops whatever records the warmup
                        // call had buffered (advancing the stream
                        // position past them), and so must we.
                        self.session = DispatchSession::new();
                        self.phase = Phase::Measurement;
                    }
                    Phase::Measurement => {
                        self.after = self.sys.progress();
                        self.phase = Phase::Done;
                    }
                    Phase::Done => unreachable!(),
                }
                self.done_in_phase = 0;
            }
        }
        consumed
    }

    /// Finalizes the cell into the same [`RunResult`] the one-shot
    /// runner produces.
    ///
    /// # Panics
    ///
    /// Panics if the cell has not been stepped to completion.
    pub fn into_result(self) -> RunResult {
        assert!(
            self.phase == Phase::Done,
            "CellSim for '{}' finalized before completion",
            self.workload,
        );
        let (before, after) = (self.before, self.after);
        let instructions = after.instructions - before.instructions;
        let elapsed_ps = after.elapsed_ps.saturating_sub(before.elapsed_ps).max(1);
        // UIPC at 3 GHz: instructions / cycles, cycles = ps * 3 / 1000.
        let cycles = (elapsed_ps * 3) as f64 / 1000.0;
        let (cache, mem) = self.sys.into_parts();
        RunResult {
            design: self.design.name(),
            workload: self.workload,
            cache_bytes: self.cache_bytes,
            measured_accesses: self.total - self.warmup,
            instructions,
            elapsed_ps,
            uipc: instructions as f64 / cycles,
            cache: *cache.stats(),
            stacked: *mem.stacked.stats(),
            offchip: *mem.offchip.stats(),
            stacked_energy: *mem.stacked.energy(),
            offchip_energy: *mem.offchip.energy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment_with_source, TraceSource};
    use unison_trace::workloads;

    /// Stepping a `CellSim` with ragged budgets (straddling the
    /// warmup/measurement boundary mid-step) must reproduce the one-shot
    /// runner bit for bit, for both a heavy boxed design and a
    /// devirtualized one.
    #[test]
    fn stepped_cell_sim_matches_one_shot_runner() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_serving();
        let size = 128 << 20;
        let plan = cfg.trace_plan(&w, size);
        let artifact =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.frozen_len);

        for design in [Design::Unison, Design::Ideal, Design::NoCache] {
            let one_shot =
                run_experiment_with_source(design, size, &w, &cfg, TraceSource::Replay(&artifact));

            let mut cell = CellSim::new(design, size, &w, &cfg, &artifact);
            // Ragged budget schedule, including a big chunk that crosses
            // the phase boundary inside one step() call.
            let mut budgets = [1u64, 17, 5_000, 50_000, 999].iter().cycle();
            while !cell.is_done() {
                cell.step(*budgets.next().unwrap());
            }
            assert_eq!(cell.step(1_000), 0, "a done cell consumes nothing");
            let stepped = cell.into_result();

            assert_eq!(
                serde_json::to_string(&stepped).unwrap(),
                serde_json::to_string(&one_shot).unwrap(),
                "{design:?}: stepped simulation must be bit-identical to the one-shot runner"
            );
        }
    }

    #[test]
    fn remaining_counts_down_to_zero() {
        let cfg = SimConfig::quick_test();
        let w = workloads::web_search();
        let size = 128 << 20;
        let plan = cfg.trace_plan(&w, size);
        let artifact =
            unison_trace::TraceArtifact::freeze(&plan.scaled_spec, cfg.seed, plan.frozen_len);
        let mut cell = CellSim::new(Design::Alloy, size, &w, &cfg, &artifact);
        let mut last = cell.remaining();
        assert!(last > 0);
        while !cell.is_done() {
            cell.step(30_000);
            assert!(cell.remaining() <= last);
            last = cell.remaining();
        }
        assert_eq!(cell.remaining(), 0);
    }
}
