//! The interval-style core timing model.

use serde::{Deserialize, Serialize};
use unison_dram::{cpu_cycles_to_ps, Ps};

/// Timing parameters of one modeled core (an ARM Cortex-A15-like 3-way
/// OoO at 3 GHz, per Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoreParams {
    /// Sustained non-memory IPC: how fast instruction gaps between
    /// post-L2 accesses retire (includes L1/L2 hit costs, which are part
    /// of the gap in post-L2 traces).
    pub ipc_base: f64,
    /// Memory latency (in CPU cycles) the out-of-order window hides per
    /// load before the core actually stalls.
    pub overlap_cycles: u64,
    /// Whether stores stall the core (an OoO core with store buffers
    /// retires past stores; they still consume DRAM bandwidth).
    pub stall_on_stores: bool,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            ipc_base: 2.0,
            overlap_cycles: 24,
            stall_on_stores: false,
        }
    }
}

/// Manual deserialization so scenario files may override a single core
/// knob (`{"ipc_base": 4.0}`) without restating the rest.
impl Deserialize for CoreParams {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_obj(v, "CoreParams")?;
        serde::deny_unknown(
            obj,
            &["ipc_base", "overlap_cycles", "stall_on_stores"],
            "CoreParams",
        )?;
        let d = CoreParams::default();
        let pick = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        Ok(CoreParams {
            ipc_base: match pick("ipc_base") {
                Some(v) => f64::from_value(v)?,
                None => d.ipc_base,
            },
            overlap_cycles: match pick("overlap_cycles") {
                Some(v) => u64::from_value(v)?,
                None => d.overlap_cycles,
            },
            stall_on_stores: match pick("stall_on_stores") {
                Some(v) => bool::from_value(v)?,
                None => d.stall_on_stores,
            },
        })
    }
}

impl CoreParams {
    /// Picoseconds needed to execute `instructions` of non-memory work.
    pub fn compute_ps(&self, instructions: u64) -> Ps {
        let cycles = (instructions as f64 / self.ipc_base).ceil() as u64;
        cpu_cycles_to_ps(cycles)
    }

    /// The OoO overlap window in picoseconds.
    pub fn overlap_ps(&self) -> Ps {
        cpu_cycles_to_ps(self.overlap_cycles)
    }
}

/// Per-core progress state.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreClock {
    /// Local time: when this core finishes everything issued so far.
    pub time_ps: Ps,
    /// User instructions retired.
    pub instructions: u64,
    /// Picoseconds spent stalled on memory.
    pub stall_ps: Ps,
}

impl CoreClock {
    /// Advances past `igap` instructions of compute, returning the issue
    /// time of the access that follows.
    ///
    /// The dispatch loop's hot path uses [`Self::advance_compute_to`]
    /// with the value it already computed for its heap key; this method
    /// remains the semantic definition (and the reference loop in
    /// `system.rs`'s tests drives it directly).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn advance_compute(&mut self, params: &CoreParams, igap: u64) -> Ps {
        self.time_ps += params.compute_ps(igap);
        self.instructions += igap;
        self.time_ps
    }

    /// [`Self::advance_compute`] when the issue time has already been
    /// computed (`issue_ps` must equal
    /// `self.time_ps + params.compute_ps(igap)`): the dispatch loop keys
    /// its heap on exactly that value, so consuming the record can reuse
    /// it instead of paying the float division again.
    pub fn advance_compute_to(&mut self, issue_ps: Ps, igap: u64) -> Ps {
        debug_assert!(issue_ps >= self.time_ps);
        self.time_ps = issue_ps;
        self.instructions += igap;
        issue_ps
    }

    /// Applies the stall of a load whose data arrives at `ready_ps`,
    /// given it issued at `issue_ps`.
    pub fn apply_load(&mut self, params: &CoreParams, issue_ps: Ps, ready_ps: Ps) {
        let latency = ready_ps.saturating_sub(issue_ps);
        let stall = latency.saturating_sub(params.overlap_ps());
        self.time_ps += stall;
        self.stall_ps += stall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_with_ipc() {
        let fast = CoreParams {
            ipc_base: 4.0,
            ..CoreParams::default()
        };
        let slow = CoreParams {
            ipc_base: 1.0,
            ..CoreParams::default()
        };
        assert!(fast.compute_ps(1000) < slow.compute_ps(1000));
        // 1000 instructions at IPC 1 = 1000 cycles = 333,334 ps.
        assert_eq!(slow.compute_ps(1000), cpu_cycles_to_ps(1000));
    }

    #[test]
    fn short_latencies_are_fully_hidden() {
        let p = CoreParams::default();
        let mut c = CoreClock::default();
        let issue = c.advance_compute(&p, 100);
        // Data ready within the overlap window: no stall.
        c.apply_load(&p, issue, issue + p.overlap_ps() / 2);
        assert_eq!(c.stall_ps, 0);
    }

    #[test]
    fn long_latencies_stall_the_remainder() {
        let p = CoreParams::default();
        let mut c = CoreClock::default();
        let issue = c.advance_compute(&p, 100);
        let ready = issue + p.overlap_ps() + 10_000;
        c.apply_load(&p, issue, ready);
        assert_eq!(c.stall_ps, 10_000);
        assert_eq!(c.time_ps, issue + 10_000);
    }

    #[test]
    fn instructions_accumulate() {
        let p = CoreParams::default();
        let mut c = CoreClock::default();
        c.advance_compute(&p, 100);
        c.advance_compute(&p, 250);
        assert_eq!(c.instructions, 350);
    }
}
