//! Property-based tests for the predictor structures.

use proptest::prelude::*;
use unison_predictors::{fold_hash, Footprint, FootprintTable, MissPredictor, WayPredictor};

proptest! {
    /// Footprint set algebra obeys the identities the under/over-
    /// prediction accounting relies on:
    /// `actual = (actual ∩ predicted) ∪ (actual − predicted)` and the
    /// two parts are disjoint.
    #[test]
    fn footprint_partition_identity(a in any::<u64>(), p in any::<u64>(), blocks in 1u32..=64) {
        let actual = Footprint::from_mask(a, blocks);
        let predicted = Footprint::from_mask(p, blocks);
        let covered = actual.intersect(&predicted);
        let under = actual.minus(&predicted);
        prop_assert_eq!(covered.union(&under).mask(), actual.mask());
        prop_assert_eq!(covered.intersect(&under).mask(), 0);
        // Overfetch is disjoint from actual.
        let over = predicted.minus(&actual);
        prop_assert_eq!(over.intersect(&actual).mask(), 0);
        // Sizes add up.
        prop_assert_eq!(covered.len() + under.len(), actual.len());
        prop_assert_eq!(covered.len() + over.len(), predicted.len());
    }

    /// The footprint table matches a reference model of its per-block
    /// 2-bit counters: present blocks increment (new entries start at 2),
    /// absent blocks decrement, prediction is counter >= 2.
    #[test]
    fn footprint_table_matches_counter_reference(
        keys in proptest::collection::vec((0u64..8, 0u32..4, any::<u64>()), 1..80)
    ) {
        let mut t = FootprintTable::new(1024, 4, 15);
        let mut model: std::collections::HashMap<(u64, u32), [u8; 15]> =
            std::collections::HashMap::new();
        let mut seen: std::collections::HashSet<(u64, u32)> = std::collections::HashSet::new();
        for (pc, off, mask) in keys {
            let fp = Footprint::from_mask(mask, 15);
            t.train(pc, off, fp);
            let first_training = seen.insert((pc, off));
            let counters = model.entry((pc, off)).or_insert([0; 15]);
            for (b, counter) in counters.iter_mut().enumerate() {
                let present = fp.contains(b as u32);
                *counter = match (first_training, present) {
                    (true, true) => 2,
                    (true, false) => 0,
                    (false, true) => (*counter + 1).min(3),
                    (false, false) => counter.saturating_sub(1),
                };
            }
        }
        // 8 pcs x 4 offsets = 32 keys over 4096 slots: no evictions, so
        // every key must match the reference exactly.
        for ((pc, off), counters) in model {
            let expect: u64 = (0..15)
                .filter(|&b| counters[b] >= 2)
                .map(|b| 1u64 << b)
                .sum();
            let got = t.predict(pc, off).expect("entry must exist");
            prop_assert_eq!(got.mask(), expect, "key ({}, {})", pc, off);
        }
    }

    /// fold_hash is stable and in-range for any width.
    #[test]
    fn fold_hash_in_range(x in any::<u64>(), bits in 1u32..=63) {
        let h = fold_hash(x, bits);
        prop_assert!(h < (1u64 << bits));
        prop_assert_eq!(h, fold_hash(x, bits));
    }

    /// The way predictor converges: after updating with a fixed way, the
    /// next prediction for the same page returns that way.
    #[test]
    fn way_predictor_converges(pages in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut wp = WayPredictor::new(12, 4);
        for (i, &p) in pages.iter().enumerate() {
            let w = (i as u32) % 4;
            wp.update(p, w);
            prop_assert_eq!(wp.predict(p), w);
        }
    }

    /// The miss predictor's counters never leave their 3-bit range and
    /// predictions stay consistent with counter polarity.
    #[test]
    fn miss_predictor_is_bounded(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut mp = MissPredictor::new(1, 4);
        for &hit in &outcomes {
            mp.update(0, 0xabc, hit);
            let _ = mp.predict(0, 0xabc);
        }
        // All-hits must end in Hit prediction; all-misses in Miss.
        let mut all_hit = MissPredictor::new(1, 4);
        for _ in 0..outcomes.len() {
            all_hit.update(0, 0xabc, true);
        }
        prop_assert_eq!(all_hit.predict(0, 0xabc), unison_predictors::MissPrediction::Hit);
    }
}
