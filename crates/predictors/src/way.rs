//! Unison Cache's way predictor (§III-A.6).

use crate::util::fold_hash;

/// A 2-bit-entry way predictor indexed by an XOR hash of the page
/// address.
///
/// The paper uses a 12-bit hash (4096 entries, 1 KB of storage at 2 bits
/// per entry) for caches up to 4 GB and a 16-bit hash (64K entries,
/// 16 KB) above that. Address-based way prediction reaches ~95% accuracy
/// here — far better than the ~85% it achieves for L1 caches — because it
/// operates on *pages*: abundant spatial locality means most accesses go
/// to a recently touched page whose way is still correct.
///
/// # Example
///
/// ```
/// use unison_predictors::WayPredictor;
///
/// let mut wp = WayPredictor::new(12, 4);
/// assert_eq!(wp.predict(42), 0); // cold entries predict way 0
/// wp.update(42, 3);
/// assert_eq!(wp.predict(42), 3);
/// ```
#[derive(Debug, Clone)]
pub struct WayPredictor {
    entries: Vec<u8>,
    index_bits: u32,
    ways: u32,
    lookups: u64,
    correct: u64,
}

impl WayPredictor {
    /// Creates a predictor with `2^index_bits` entries for a cache of
    /// `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` doesn't fit in a 2-bit entry (max 4) or
    /// `index_bits` is outside `1..=24`.
    pub fn new(index_bits: u32, ways: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index bits must be 1..=24");
        assert!(
            (1..=4).contains(&ways),
            "2-bit entries support up to 4 ways"
        );
        WayPredictor {
            entries: vec![0; 1 << index_bits],
            index_bits,
            ways,
            lookups: 0,
            correct: 0,
        }
    }

    /// The paper's sizing rule: 12 index bits up to 4 GB, 16 above.
    pub fn for_cache_size(cache_bytes: u64, ways: u32) -> Self {
        const FOUR_GB: u64 = 4 << 30;
        let bits = if cache_bytes > FOUR_GB { 16 } else { 12 };
        WayPredictor::new(bits, ways)
    }

    /// Storage budget in bytes (2 bits per entry).
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() / 4
    }

    fn index(&self, page_addr: u64) -> usize {
        fold_hash(page_addr, self.index_bits) as usize
    }

    /// Predicts the way holding `page_addr`.
    pub fn predict(&mut self, page_addr: u64) -> u32 {
        self.lookups += 1;
        u32::from(self.entries[self.index(page_addr)]) % self.ways
    }

    /// Records the actual way after the tag check resolves; also feeds
    /// the accuracy statistics.
    ///
    /// # Panics
    ///
    /// Panics if `actual_way >= ways`.
    pub fn update(&mut self, page_addr: u64, actual_way: u32) {
        assert!(actual_way < self.ways, "way out of range");
        let idx = self.index(page_addr);
        if u32::from(self.entries[idx]) % self.ways == actual_way {
            self.correct += 1;
        }
        self.entries[idx] = actual_way as u8;
    }

    /// Resolves a probe: records the way the tag check actually found
    /// (clamped into the predictor's range, as cache associativities
    /// wider than the 2-bit entries degrade to the low ways) and returns
    /// whether `predicted` was correct. This is the way-predictor side of
    /// the SoA probe loop: `MetaStore::probe_set` produces `actual`, and
    /// the cache feeds its accuracy stats from the returned flag.
    pub fn observe_probe(&mut self, page_addr: u64, predicted: u32, actual: u32) -> bool {
        let correct = actual == predicted;
        self.update(page_addr, actual.min(self.ways - 1));
        correct
    }

    /// `(lookups, correct)` counts. `correct` increments on `update`
    /// calls whose previous prediction matched, so call `update` once per
    /// predicted access for meaningful accuracy.
    pub fn accuracy_stats(&self) -> (u64, u64) {
        (self.lookups, self.correct)
    }

    /// Resets the accuracy statistics (e.g. at the warmup boundary) while
    /// keeping the learned state.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.correct = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_page_to_way_mapping() {
        let mut wp = WayPredictor::new(12, 4);
        wp.update(100, 2);
        assert_eq!(wp.predict(100), 2);
        wp.update(100, 1);
        assert_eq!(wp.predict(100), 1);
    }

    #[test]
    fn repeated_page_stream_is_always_correct_after_first() {
        let mut wp = WayPredictor::new(12, 4);
        wp.update(7, 3);
        wp.reset_stats();
        for _ in 0..100 {
            let p = wp.predict(7);
            wp.update(7, 3);
            assert_eq!(p, 3);
        }
        let (l, c) = wp.accuracy_stats();
        assert_eq!(l, 100);
        assert_eq!(c, 100);
    }

    #[test]
    fn aliasing_pages_fight_over_an_entry() {
        // tiny table: heavy aliasing
        let mut wp = WayPredictor::new(4, 4);
        // Two pages that fold to the same index: 0x0001 and 0x0010 fold
        // to different entries, so find an aliasing pair by construction:
        // with 4 index bits, page and page + 16 XOR-fold differently, but
        // page ^ (x << 4) patterns collide when the fold XOR cancels.
        let a = 0b0000_0001u64;
        let b = 0b0001_0001u64 ^ 0b0001_0000; // == a; construct differently
        assert_eq!(b, a);
        // Simpler: exhaustively find a distinct aliasing pair.
        let target = fold_hash(a, 4);
        let alias = (1..1000u64)
            .find(|&p| p != a && fold_hash(p, 4) == target)
            .expect("alias exists");
        wp.update(a, 1);
        wp.update(alias, 2);
        assert_eq!(wp.predict(a), 2, "alias clobbered the entry");
    }

    #[test]
    fn paper_sizing_rule() {
        let small = WayPredictor::for_cache_size(1 << 30, 4);
        assert_eq!(small.storage_bytes(), 1024);
        let large = WayPredictor::for_cache_size(8 << 30, 4);
        assert_eq!(large.storage_bytes(), 16 * 1024);
    }

    #[test]
    fn direct_mapped_cache_always_predicts_zero() {
        let mut wp = WayPredictor::new(12, 1);
        wp.update(5, 0);
        assert_eq!(wp.predict(5), 0);
        assert_eq!(wp.predict(6), 0);
    }

    #[test]
    #[should_panic(expected = "way out of range")]
    fn update_with_bad_way_panics() {
        let mut wp = WayPredictor::new(12, 4);
        wp.update(0, 4);
    }
}
