//! The footprint predictor: history table and singleton table.
//!
//! A page's *footprint* is the set of blocks demanded between its
//! allocation and its eviction (§III-A.1). The predictor learns footprints
//! keyed by the `(PC, offset)` pair of the access that triggered the
//! page's allocation, and predicts them for later trigger misses by the
//! same code at the same alignment.

use serde::{Deserialize, Serialize};

use crate::util::{mix64, SatCounter};

/// A set of blocks within a page, up to 64 blocks wide.
///
/// Pages in this reproduction are at most 32 blocks (Footprint Cache's
/// 2 KB pages); Unison Cache uses 15- or 31-block pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Footprint {
    mask: u64,
    blocks: u8,
}

impl Footprint {
    /// Creates an empty footprint over a page of `blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is 0 or greater than 64.
    pub fn empty(blocks: u32) -> Self {
        assert!((1..=64).contains(&blocks), "page must hold 1..=64 blocks");
        Footprint {
            mask: 0,
            blocks: blocks as u8,
        }
    }

    /// Creates a footprint from a raw bit mask (bit *i* = block *i*).
    /// Bits at or above `blocks` are discarded.
    pub fn from_mask(mask: u64, blocks: u32) -> Self {
        let mut f = Footprint::empty(blocks);
        f.mask = mask & f.page_mask();
        f
    }

    /// A footprint covering every block of the page — the conservative
    /// default used when the history table has no entry.
    pub fn full(blocks: u32) -> Self {
        let f = Footprint::empty(blocks);
        Footprint {
            mask: f.page_mask(),
            blocks: f.blocks,
        }
    }

    /// A footprint containing exactly `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= blocks`.
    pub fn single(block: u32, blocks: u32) -> Self {
        let mut f = Footprint::empty(blocks);
        f.insert(block);
        f
    }

    fn page_mask(&self) -> u64 {
        if self.blocks == 64 {
            u64::MAX
        } else {
            (1u64 << self.blocks) - 1
        }
    }

    /// Number of blocks the page holds.
    pub fn page_blocks(&self) -> u32 {
        u32::from(self.blocks)
    }

    /// The raw bit mask.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Marks `block` as part of the footprint.
    ///
    /// # Panics
    ///
    /// Panics if `block` is outside the page.
    pub fn insert(&mut self, block: u32) {
        assert!(block < u32::from(self.blocks), "block {block} outside page");
        self.mask |= 1u64 << block;
    }

    /// True if `block` is in the footprint.
    pub fn contains(&self, block: u32) -> bool {
        block < u32::from(self.blocks) && self.mask & (1u64 << block) != 0
    }

    /// Number of blocks in the footprint.
    pub fn len(&self) -> u32 {
        self.mask.count_ones()
    }

    /// True if no block is set.
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// True if the footprint is exactly one block (§III-A.4 singletons).
    pub fn is_singleton(&self) -> bool {
        self.len() == 1
    }

    /// Set union with another footprint of the same page size.
    #[must_use]
    pub fn union(&self, other: &Footprint) -> Footprint {
        debug_assert_eq!(self.blocks, other.blocks);
        Footprint {
            mask: self.mask | other.mask,
            blocks: self.blocks,
        }
    }

    /// Blocks present in `self` but not in `other`.
    #[must_use]
    pub fn minus(&self, other: &Footprint) -> Footprint {
        debug_assert_eq!(self.blocks, other.blocks);
        Footprint {
            mask: self.mask & !other.mask,
            blocks: self.blocks,
        }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &Footprint) -> Footprint {
        debug_assert_eq!(self.blocks, other.blocks);
        Footprint {
            mask: self.mask & other.mask,
            blocks: self.blocks,
        }
    }

    /// Iterates over the block indices in the footprint, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mask = self.mask;
        (0..u32::from(self.blocks)).filter(move |b| mask & (1u64 << b) != 0)
    }
}

/// One entry of the footprint history table: a 2-bit saturating counter
/// per block, stored as two bit planes (`hi` is the counter MSB, `lo`
/// the LSB). A block is predicted when its counter is ≥ 2, i.e. when its
/// `hi` bit is set — prediction is a single mask read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct FtEntry {
    tag: u32,
    hi: u64,
    lo: u64,
    lru: u8,
}

impl FtEntry {
    fn predicted_mask(&self) -> u64 {
        self.hi
    }

    /// Folds one observed footprint into the counters: present blocks
    /// increment (saturating at 3), absent blocks decrement (at 0).
    /// Per-bit transition tables, with the counter as `(hi, lo)`:
    /// increment `00→01→10→11→11` gives `hi' = hi|lo`, `lo' = !lo|hi`;
    /// decrement `11→10→01→00→00` gives `hi' = hi&lo`, `lo' = hi&!lo`.
    fn observe(&mut self, actual: u64, page_mask: u64) {
        let p = actual; // present blocks increment, the rest decrement
        let inc_hi = self.hi | self.lo;
        let inc_lo = !self.lo | self.hi;
        let dec_hi = self.hi & self.lo;
        let dec_lo = self.hi & !self.lo;
        self.hi = ((inc_hi & p) | (dec_hi & !p)) & page_mask;
        self.lo = ((inc_lo & p) | (dec_lo & !p)) & page_mask;
    }
}

/// The SRAM footprint history table (Table II: 144 KB for both Footprint
/// Cache and Unison Cache).
///
/// Set-associative and tagged; indexed by a hash of `(PC, offset)`.
/// [`FootprintTable::predict`] returns `None` when no history exists — the
/// caller applies the conservative full-page default, as in the Footprint
/// Cache design.
///
/// Entries hold a **2-bit saturating counter per block** (spatial-pattern
/// hysteresis in the style of Chen et al.'s spatial pattern predictor and
/// SMS) rather than the raw last footprint: a block is predicted while
/// its counter is ≥ 2. One page whose residency happened to demand only a
/// subset (a scan's final partial page, a noisy visit) decays counters by
/// a single step instead of poisoning the whole pattern, while
/// persistently dead blocks decay out within two evictions — bounding
/// both underprediction (a miss per block) and overfetch (bandwidth).
#[derive(Debug, Clone)]
pub struct FootprintTable {
    sets: Vec<Vec<Option<FtEntry>>>,
    ways: usize,
    page_blocks: u32,
    predictions: u64,
    hits: u64,
}

impl FootprintTable {
    /// Creates a table with `sets` sets of `ways` ways for pages of
    /// `page_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, page_blocks: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        FootprintTable {
            sets: vec![vec![None; ways]; sets],
            ways,
            page_blocks,
            predictions: 0,
            hits: 0,
        }
    }

    /// The paper-sized table: 144 KB at ~8 B per entry ≈ 18K entries;
    /// rounded to 4096 sets × 4 ways.
    pub fn paper_default(page_blocks: u32) -> Self {
        FootprintTable::new(4096, 4, page_blocks)
    }

    /// Approximate SRAM budget of this geometry in bytes: tag (4 B) +
    /// two bit planes sized to the page (2 bits per block) + LRU.
    pub fn storage_bytes(&self) -> usize {
        let planes = (self.page_blocks as usize * 2).div_ceil(8);
        self.sets.len() * self.ways * (5 + planes)
    }

    fn index_tag(&self, pc: u64, offset: u32) -> (usize, u32) {
        let h = mix64(pc ^ (u64::from(offset) << 48) ^ 0x5bd1_e995);
        let idx = (h as usize) & (self.sets.len() - 1);
        let tag = (h >> 32) as u32;
        (idx, tag)
    }

    /// Looks up the footprint learned for `(pc, offset)`.
    ///
    /// Returns `None` when no history exists; callers should then fall
    /// back to fetching the full page (the conservative default that
    /// preserves hit ratio at the cost of bandwidth).
    pub fn predict(&mut self, pc: u64, offset: u32) -> Option<Footprint> {
        self.predictions += 1;
        let page_blocks = self.page_blocks;
        let (idx, tag) = self.index_tag(pc, offset);
        let found = self.sets[idx]
            .iter()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| Footprint::from_mask(e.predicted_mask(), page_blocks));
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Records the actual footprint observed for `(pc, offset)` at page
    /// eviction, replacing the LRU way when the set is full.
    ///
    /// Existing entries fold the observation into their per-block
    /// counters (see the type docs); new entries start every observed
    /// block at 2 (predicted) so a single training suffices to predict.
    pub fn train(&mut self, pc: u64, offset: u32, actual: Footprint) {
        debug_assert_eq!(actual.page_blocks(), self.page_blocks);
        let page_mask = Footprint::full(self.page_blocks).mask();
        let (idx, tag) = self.index_tag(pc, offset);
        let set = &mut self.sets[idx];

        // Hit: fold in place and refresh recency.
        let mut target = None;
        for (w, e) in set.iter().enumerate() {
            if let Some(e) = e {
                if e.tag == tag {
                    target = Some(w);
                    break;
                }
            }
        }
        let way = match target {
            Some(w) => {
                set[w]
                    .as_mut()
                    .expect("target way is occupied")
                    .observe(actual.mask(), page_mask);
                w
            }
            None => {
                let w = set.iter().position(Option::is_none).unwrap_or_else(|| {
                    // Evict the LRU (highest counter) way.
                    set.iter()
                        .enumerate()
                        .max_by_key(|(_, e)| e.map(|e| e.lru).unwrap_or(u8::MAX))
                        .map(|(w, _)| w)
                        .unwrap_or(0)
                });
                // Fresh entry: observed blocks start at counter 2.
                set[w] = Some(FtEntry {
                    tag,
                    hi: actual.mask(),
                    lo: 0,
                    lru: 0,
                });
                w
            }
        };
        for e in set.iter_mut().flatten() {
            e.lru = e.lru.saturating_add(1);
        }
        if let Some(e) = set[way].as_mut() {
            e.lru = 0;
        }
    }

    /// `(lookups, lookups that found history)` since construction.
    pub fn lookup_stats(&self) -> (u64, u64) {
        (self.predictions, self.hits)
    }

    /// Consumes a page eviction straight from the cache's metadata store:
    /// trains on the actual footprint (when non-empty, as always) and
    /// returns the prediction-quality deltas for the caller's Table V
    /// accounting. This is the single place eviction-time training and
    /// its bookkeeping are defined; both page-based designs call it.
    pub fn observe_eviction(&mut self, info: &EvictionInfo) -> FpQuality {
        let q = FpQuality {
            predicted_blocks: u64::from(info.predicted.len()),
            actual_blocks: u64::from(info.actual.len()),
            covered_blocks: u64::from(info.predicted.intersect(&info.actual).len()),
            over_blocks: u64::from(info.predicted.minus(&info.actual).len()),
        };
        if !info.actual.is_empty() {
            self.train(info.pc, info.offset, info.actual);
        }
        q
    }
}

/// A page-eviction record, assembled by the cache's metadata store
/// (`unison_core::MetaStore::eviction_info`) from its SoA arrays: the
/// allocation-trigger identity plus the block masks the paper's encoded
/// block states imply at eviction (§III-A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionInfo {
    /// PC of the access that triggered the page's allocation.
    pub pc: u64,
    /// Block offset of the trigger access.
    pub offset: u32,
    /// Blocks the CPU actually demanded during the residency.
    pub actual: Footprint,
    /// Blocks the footprint fetch installed at allocation.
    pub predicted: Footprint,
    /// Blocks modified during the residency (written back by the caller).
    pub dirty: Footprint,
}

/// Prediction-quality deltas from one eviction — the per-page terms of
/// Table V's "FP Accuracy" / "FP Overfetch" aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpQuality {
    /// Size of the predicted (installed) footprint.
    pub predicted_blocks: u64,
    /// Size of the actual (demanded) footprint.
    pub actual_blocks: u64,
    /// `|predicted ∩ actual|` — correctly predicted blocks.
    pub covered_blocks: u64,
    /// `|predicted − actual|` — fetched but never demanded.
    pub over_blocks: u64,
}

/// An entry of the [`SingletonTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SingletonEntry {
    /// The `(PC, offset)` pair that triggered the bypassed page.
    pub pc: u64,
    /// Block offset of the trigger access within the page.
    pub offset: u32,
    /// The bypassed page's identifier.
    pub page: u64,
    /// The single block that was fetched.
    pub block: u32,
}

/// The singleton table (§III-A.4, 3 KB in Table II).
///
/// Pages predicted to be singletons are *not allocated*, so their
/// footprint mispredictions can't be corrected at eviction. This small
/// table remembers recently bypassed pages; when a second, different
/// block of such a page is requested, the caller learns the page was not
/// a singleton after all and retrains the history table.
#[derive(Debug, Clone)]
pub struct SingletonTable {
    entries: Vec<Option<(SingletonEntry, SatCounter)>>,
}

impl SingletonTable {
    /// Creates a table with space for `capacity` bypassed pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        SingletonTable {
            entries: vec![None; capacity],
        }
    }

    /// The paper-sized table: 3 KB at ~12 B per entry ≈ 256 entries.
    pub fn paper_default() -> Self {
        SingletonTable::new(256)
    }

    /// Approximate SRAM budget in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * 12
    }

    fn index(&self, page: u64) -> usize {
        (mix64(page) as usize) & (self.entries.len() - 1)
    }

    /// Records a bypassed singleton page (direct-mapped; displaces any
    /// previous occupant of the slot).
    pub fn insert(&mut self, entry: SingletonEntry) {
        let idx = self.index(entry.page);
        self.entries[idx] = Some((entry, SatCounter::new(2, 0)));
    }

    /// Looks up a bypassed page.
    pub fn lookup(&self, page: u64) -> Option<SingletonEntry> {
        let idx = self.index(page);
        self.entries[idx]
            .as_ref()
            .filter(|(e, _)| e.page == page)
            .map(|(e, _)| *e)
    }

    /// Removes a bypassed page (after correction or promotion).
    pub fn remove(&mut self, page: u64) {
        let idx = self.index(page);
        if self.entries[idx]
            .map(|(e, _)| e.page == page)
            .unwrap_or(false)
        {
            self.entries[idx] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_set_algebra() {
        let a = Footprint::from_mask(0b1010, 15);
        let b = Footprint::from_mask(0b0110, 15);
        assert_eq!(a.union(&b).mask(), 0b1110);
        assert_eq!(a.minus(&b).mask(), 0b1000);
        assert_eq!(a.intersect(&b).mask(), 0b0010);
        assert_eq!(a.len(), 2);
        assert!(!a.is_singleton());
        assert!(Footprint::single(3, 15).is_singleton());
    }

    #[test]
    fn from_mask_truncates_to_page() {
        let f = Footprint::from_mask(u64::MAX, 15);
        assert_eq!(f.len(), 15);
        assert_eq!(f, Footprint::full(15));
    }

    #[test]
    fn iter_yields_sorted_blocks() {
        let f = Footprint::from_mask(0b1001_0010, 31);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "outside page")]
    fn insert_outside_page_panics() {
        let mut f = Footprint::empty(15);
        f.insert(15);
    }

    #[test]
    fn table_learns_and_predicts() {
        let mut t = FootprintTable::new(64, 4, 15);
        assert_eq!(t.predict(0x400, 2), None);
        let fp = Footprint::from_mask(0b10110, 15);
        t.train(0x400, 2, fp);
        assert_eq!(t.predict(0x400, 2), Some(fp));
        // A different offset is a different history entry.
        assert_eq!(t.predict(0x400, 3), None);
    }

    #[test]
    fn table_counters_need_two_observations_for_new_blocks() {
        let mut t = FootprintTable::new(64, 2, 15);
        t.train(1, 0, Footprint::from_mask(0b1, 15));
        // Blocks 1 and 2 appear once: counters reach 1, below threshold.
        t.train(1, 0, Footprint::from_mask(0b111, 15));
        assert_eq!(t.predict(1, 0).unwrap().mask(), 0b1);
        // Second consecutive appearance crosses the threshold.
        t.train(1, 0, Footprint::from_mask(0b111, 15));
        assert_eq!(t.predict(1, 0).unwrap().mask(), 0b111);
    }

    #[test]
    fn table_tolerates_one_partial_observation() {
        // The hysteresis property: a single subset observation must not
        // drop established blocks from the prediction.
        let mut t = FootprintTable::new(64, 2, 15);
        let full = Footprint::from_mask(0x7fff, 15);
        t.train(9, 0, full);
        t.train(9, 0, full); // counters at 3
        t.train(9, 0, Footprint::from_mask(0b11, 15)); // partial tail page
        assert_eq!(t.predict(9, 0), Some(full), "one partial must not poison");
        // But persistent absence decays blocks out (3 -> 2 -> 1).
        t.train(9, 0, Footprint::from_mask(0b11, 15));
        t.train(9, 0, Footprint::from_mask(0b11, 15));
        assert_eq!(t.predict(9, 0).unwrap().mask(), 0b11);
    }

    #[test]
    fn table_evicts_lru_when_full() {
        let mut t = FootprintTable::new(1, 2, 15);
        // Three distinct keys into a 2-way set: the oldest must go.
        t.train(1, 0, Footprint::single(0, 15));
        t.train(2, 0, Footprint::single(1, 15));
        t.train(3, 0, Footprint::single(2, 15));
        let live = [1u64, 2, 3]
            .iter()
            .filter(|&&pc| t.predict(pc, 0).is_some())
            .count();
        assert_eq!(live, 2);
        // The most recent insertion survives.
        assert!(t.predict(3, 0).is_some());
    }

    #[test]
    fn paper_default_is_about_144_kb() {
        // 15-block pages: 4096 sets x 4 ways x (4B tag + 4B planes + 1B
        // LRU) = 144 KB, Table II's figure. The 32-block variant costs
        // 2 bits per extra block.
        let t15 = FootprintTable::paper_default(15);
        assert_eq!(t15.storage_bytes() / 1024, 144);
        let t32 = FootprintTable::paper_default(32);
        let kb = t32.storage_bytes() / 1024;
        assert!((144..=224).contains(&kb), "32-block table is {kb} KB");
    }

    #[test]
    fn singleton_table_roundtrip() {
        let mut s = SingletonTable::new(16);
        let e = SingletonEntry {
            pc: 0x400,
            offset: 5,
            page: 99,
            block: 5,
        };
        s.insert(e);
        assert_eq!(s.lookup(99), Some(e));
        assert_eq!(s.lookup(98), None);
        s.remove(99);
        assert_eq!(s.lookup(99), None);
    }

    #[test]
    fn singleton_table_is_direct_mapped() {
        let mut s = SingletonTable::new(1);
        s.insert(SingletonEntry {
            pc: 1,
            offset: 0,
            page: 1,
            block: 0,
        });
        s.insert(SingletonEntry {
            pc: 2,
            offset: 0,
            page: 2,
            block: 0,
        });
        assert_eq!(s.lookup(1), None, "displaced by the second insert");
        assert!(s.lookup(2).is_some());
    }

    #[test]
    fn singleton_paper_default_is_about_3_kb() {
        let s = SingletonTable::paper_default();
        assert_eq!(s.storage_bytes(), 3 * 1024);
    }
}
