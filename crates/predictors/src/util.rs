//! Shared predictor plumbing: hashing and saturating counters.

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a cheap, well-distributed 64→64 bit mixer used
/// before folding values into small table indices.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// XOR-folds `x` down to `bits` bits — the hardware-friendly hash the
/// paper specifies for the way predictor ("12-bit XOR hash of the page
/// address", §III-A.6).
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 64.
///
/// # Example
///
/// ```
/// # use unison_predictors::fold_hash;
/// assert!(fold_hash(0xdead_beef, 12) < (1 << 12));
/// assert_eq!(fold_hash(0, 12), 0);
/// ```
pub fn fold_hash(x: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits <= 64, "fold width must be in 1..=64");
    if bits == 64 {
        return x;
    }
    let mask = (1u64 << bits) - 1;
    let mut v = x;
    let mut acc = 0u64;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc
}

/// A saturating counter with a configurable bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter of `bits` width starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or if `initial` exceeds
    /// the maximum value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!(bits > 0 && bits <= 8, "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SatCounter {
            value: initial,
            max,
        }
    }

    /// Current value.
    pub fn get(&self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// True when the counter's top bit is set (the usual "taken"
    /// threshold).
    pub fn is_high(&self) -> bool {
        self.value > self.max / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_hash_respects_width() {
        for bits in 1..=16 {
            for x in [0u64, 1, 0xffff_ffff_ffff_ffff, 0x1234_5678_9abc_def0] {
                assert!(fold_hash(x, bits) < (1u64 << bits));
            }
        }
    }

    #[test]
    fn fold_hash_full_width_is_identity() {
        assert_eq!(fold_hash(0xabcd, 64), 0xabcd);
    }

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a ^ b, 0);
        assert!(
            (a ^ b).count_ones() > 8,
            "consecutive mixes should differ widely"
        );
    }

    #[test]
    fn sat_counter_saturates_both_ends() {
        let mut c = SatCounter::new(3, 0);
        for _ in 0..20 {
            c.inc();
        }
        assert_eq!(c.get(), 7);
        for _ in 0..20 {
            c.dec();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn sat_counter_threshold() {
        let mut c = SatCounter::new(2, 0);
        assert!(!c.is_high());
        c.inc();
        assert!(!c.is_high()); // 1 of max 3
        c.inc();
        assert!(c.is_high()); // 2 of max 3
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_counter_panics() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_initial_panics() {
        let _ = SatCounter::new(2, 4);
    }
}
