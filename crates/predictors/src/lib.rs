//! The prediction structures the three DRAM cache designs rely on.
//!
//! * [`FootprintTable`] + [`SingletonTable`] — the SMS-style footprint
//!   predictor shared by Footprint Cache and Unison Cache (§III-A.1–4 of
//!   the paper): footprints are learned per `(PC, offset)` pair at page
//!   eviction and predicted at page allocation.
//! * [`WayPredictor`] — Unison Cache's 2-bit, XOR-hash-indexed way
//!   predictor (§III-A.6) that lets a set-associative cache read only the
//!   predicted way.
//! * [`MissPredictor`] — Alloy Cache's MAP-I-style instruction-indexed
//!   hit/miss predictor (per-core 3-bit counters).
//!
//! All structures are plain-old-data state machines with explicit storage
//! budgets matching Table II of the paper; none allocates per operation.
//!
//! # Example
//!
//! ```
//! use unison_predictors::{Footprint, FootprintTable};
//!
//! let mut t = FootprintTable::paper_default(32);
//! // No history yet: conservative full-page default.
//! assert_eq!(t.predict(0x400, 3), None);
//! t.train(0x400, 3, Footprint::from_mask(0b1011, 32));
//! assert_eq!(t.predict(0x400, 3), Some(Footprint::from_mask(0b1011, 32)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod footprint;
mod miss;
mod util;
mod way;

pub use footprint::{
    EvictionInfo, Footprint, FootprintTable, FpQuality, SingletonEntry, SingletonTable,
};
pub use miss::{MissPrediction, MissPredictor};
pub use util::{fold_hash, mix64, SatCounter};
pub use way::WayPredictor;
