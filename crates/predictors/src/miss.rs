//! Alloy Cache's MAP-I-style hit/miss predictor.

use crate::util::{fold_hash, mix64, SatCounter};

/// The outcome of a miss-predictor query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissPrediction {
    /// Access the DRAM cache first; go to memory only on an actual miss.
    Hit,
    /// Send the request to off-chip memory immediately (in parallel with
    /// the cache probe).
    Miss,
}

/// Instruction-based Memory Access Predictor (MAP-I, Qureshi & Loh
/// MICRO'12), as used by Alloy Cache.
///
/// Per-core tables of 3-bit saturating counters indexed by a hash of the
/// instruction address: 256 counters × 3 bits = 96 B per core, 1.5 KB for
/// the paper's 16-core pod (Table II). Counters move toward "miss" on
/// observed misses and toward "hit" on observed hits; the MSB decides.
///
/// # Example
///
/// ```
/// use unison_predictors::{MissPredictor, MissPrediction};
///
/// let mut mp = MissPredictor::paper_default();
/// // Cold counters predict hit (optimistic: probe the cache).
/// assert_eq!(mp.predict(0, 0x400), MissPrediction::Hit);
/// for _ in 0..4 { mp.update(0, 0x400, /*was_hit=*/false); }
/// assert_eq!(mp.predict(0, 0x400), MissPrediction::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct MissPredictor {
    tables: Vec<Vec<SatCounter>>,
    index_bits: u32,
    lookups: u64,
    correct: u64,
    false_misses: u64,
    false_hits: u64,
}

impl MissPredictor {
    /// Creates per-core tables of `2^index_bits` 3-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `index_bits` is outside `1..=16`.
    pub fn new(cores: u32, index_bits: u32) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!((1..=16).contains(&index_bits), "index bits must be 1..=16");
        MissPredictor {
            tables: vec![vec![SatCounter::new(3, 0); 1 << index_bits]; cores as usize],
            index_bits,
            lookups: 0,
            correct: 0,
            false_misses: 0,
            false_hits: 0,
        }
    }

    /// The paper's geometry: 16 cores × 256 counters (96 B per core).
    pub fn paper_default() -> Self {
        MissPredictor::new(16, 8)
    }

    /// Storage budget in bytes (3 bits per counter).
    pub fn storage_bytes(&self) -> usize {
        self.tables.len() * self.tables[0].len() * 3 / 8
    }

    fn index(&self, pc: u64) -> usize {
        fold_hash(mix64(pc), self.index_bits) as usize
    }

    /// Predicts whether `(core, pc)` will miss the DRAM cache.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn predict(&mut self, core: u32, pc: u64) -> MissPrediction {
        self.lookups += 1;
        let c = &self.tables[core as usize][self.index(pc)];
        if c.is_high() {
            MissPrediction::Miss
        } else {
            MissPrediction::Hit
        }
    }

    /// Trains with the actual outcome and updates accuracy statistics
    /// for the *previous* prediction of this `(core, pc)`.
    pub fn update(&mut self, core: u32, pc: u64, was_hit: bool) {
        let idx = self.index(pc);
        let predicted_miss = self.tables[core as usize][idx].is_high();
        match (predicted_miss, was_hit) {
            (true, true) => self.false_misses += 1,
            (false, false) => self.false_hits += 1,
            _ => self.correct += 1,
        }
        let c = &mut self.tables[core as usize][idx];
        if was_hit {
            c.dec();
        } else {
            c.inc();
        }
    }

    /// `(updates_correct, false_misses, false_hits)` counts.
    ///
    /// A *false miss* (hit predicted as miss) wastes off-chip bandwidth;
    /// a *false hit* (miss predicted as hit) adds the cache lookup to the
    /// miss latency — the two failure modes §II-A describes.
    pub fn outcome_stats(&self) -> (u64, u64, u64) {
        (self.correct, self.false_misses, self.false_hits)
    }

    /// Resets accuracy statistics, keeping the learned counters.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.correct = 0;
        self.false_misses = 0;
        self.false_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_missing_instruction() {
        let mut mp = MissPredictor::new(1, 8);
        for _ in 0..8 {
            mp.update(0, 0x1234, false);
        }
        assert_eq!(mp.predict(0, 0x1234), MissPrediction::Miss);
        // Hits pull it back.
        for _ in 0..8 {
            mp.update(0, 0x1234, true);
        }
        assert_eq!(mp.predict(0, 0x1234), MissPrediction::Hit);
    }

    #[test]
    fn cores_learn_independently() {
        let mut mp = MissPredictor::new(2, 8);
        for _ in 0..8 {
            mp.update(0, 0x42, false);
        }
        assert_eq!(mp.predict(0, 0x42), MissPrediction::Miss);
        assert_eq!(mp.predict(1, 0x42), MissPrediction::Hit);
    }

    #[test]
    fn paper_default_storage_matches_table_ii() {
        let mp = MissPredictor::paper_default();
        assert_eq!(mp.storage_bytes(), 1536); // 1.5 KB total
    }

    #[test]
    fn outcome_stats_classify_errors() {
        let mut mp = MissPredictor::new(1, 8);
        // Counter at 0 => predicts hit. An actual miss is a false hit.
        mp.update(0, 7, false);
        let (_, fm, fh) = mp.outcome_stats();
        assert_eq!((fm, fh), (0, 1));
        // Drive to predict-miss, then observe a hit => false miss.
        for _ in 0..8 {
            mp.update(0, 7, false);
        }
        mp.update(0, 7, true);
        let (_, fm, _) = mp.outcome_stats();
        assert_eq!(fm, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MissPredictor::new(0, 8);
    }
}
