//! Local stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides a value-tree [`Serialize`] trait, a value-tree [`Deserialize`]
//! trait, and re-exports the matching derive macros. The companion
//! `serde_json` shim renders [`Value`] trees as JSON and parses JSON back
//! into them. The derive syntax (`#[derive(Serialize, Deserialize)]`) and
//! trait paths match the real crate, so swapping the real serde back in is
//! a manifest-only change.

#![forbid(unsafe_code)]

// The derive macros emit `::serde::...` paths; alias this crate under its
// public name so they also resolve inside the crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's equivalent of `serde_json::Value`,
/// hoisted here so `Serialize` can be defined without a json dependency).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization error: a human-readable description of the first
/// mismatch between a [`Value`] tree and the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types reconstructible from a [`Value`] tree (the inverse of
/// [`Serialize`]; real serde's `Deserialize`, minus the `Deserializer`
/// indirection the shim does not need).
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialized value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural or type
    /// mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Value {
    /// Short description of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Expects `v` to be an object, for deserializing type `ty`.
///
/// # Errors
///
/// Returns a [`DeError`] naming `ty` and the actual kind otherwise.
pub fn expect_obj<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Obj(entries) => Ok(entries),
        other => Err(DeError::msg(format!(
            "expected a JSON object for {ty}, got {}",
            other.kind()
        ))),
    }
}

/// Expects `v` to be an array of exactly `len` elements.
///
/// # Errors
///
/// Returns a [`DeError`] naming `ty` on a non-array or a length mismatch.
pub fn expect_arr<'v>(v: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Arr(items) if items.len() == len => Ok(items),
        Value::Arr(items) => Err(DeError::msg(format!(
            "expected {len} elements for {ty}, got {}",
            items.len()
        ))),
        other => Err(DeError::msg(format!(
            "expected a JSON array for {ty}, got {}",
            other.kind()
        ))),
    }
}

/// Deserializes field `key` of struct `ty` from `obj`. A missing key is
/// treated as `null` (so `Option` fields may be omitted); if the field
/// type rejects `null`, the error reports the field as missing.
///
/// # Errors
///
/// Returns a [`DeError`] locating the offending field.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::msg(format!("in field `{ty}.{key}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::msg(format!("missing field `{key}` of {ty}"))),
    }
}

/// Rejects object keys outside `allowed` — config-file typos must fail
/// loudly, not be silently ignored.
///
/// # Errors
///
/// Returns a [`DeError`] naming the unknown key and the allowed set.
pub fn deny_unknown(obj: &[(String, Value)], allowed: &[&str], ty: &str) -> Result<(), DeError> {
    for (k, _) in obj {
        if !allowed.contains(&k.as_str()) {
            return Err(DeError::msg(format!(
                "unknown field `{k}` of {ty} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Error for an enum payload that matches no variant of `ty`.
pub fn unknown_variant(got: &str, ty: &str, variants: &[&str]) -> DeError {
    DeError::msg(format!(
        "unknown variant `{got}` of {ty} (expected one of: {})",
        variants.join(", ")
    ))
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected an unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                    })?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected an integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected a bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::msg(format!(
                "expected a number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected a string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Deserializing into `&'static str` leaks the parsed string. The only
/// in-tree uses are display names of configuration types (workload and
/// DRAM-config names), parsed a handful of times per process — a bounded,
/// deliberate leak that keeps those structs `Copy`-friendly and
/// zero-allocation on the hot (non-parsing) paths.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*s.leak())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected an array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = expect_arr(v, 2, "a 2-tuple")?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u64,
        label: String,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Unit,
        Tuple(u32),
        Named { a: u8, b: bool },
    }

    #[test]
    fn derive_named_struct() {
        let p = Point {
            x: 3,
            label: "hi".into(),
        };
        match p.to_value() {
            Value::Obj(fields) => {
                assert_eq!(fields[0], ("x".into(), Value::U64(3)));
                assert_eq!(fields[1], ("label".into(), Value::Str("hi".into())));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn derive_enum_variants() {
        assert_eq!(Shape::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Shape::Tuple(9).to_value(),
            Value::Obj(vec![("Tuple".into(), Value::U64(9))])
        );
        match (Shape::Named { a: 1, b: true }).to_value() {
            Value::Obj(entries) => {
                assert_eq!(entries[0].0, "Named");
                assert!(matches!(entries[0].1, Value::Obj(_)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn containers_serialize() {
        let v = vec![1u32, 2, 3];
        assert_eq!(
            v.to_value(),
            Value::Arr(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!("s".to_value(), Value::Str("s".into()));
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        p: Point,
        shapes: Vec<Shape>,
        opt: Option<u32>,
        flag: bool,
        ratio: f64,
    }

    // `Shape` needs PartialEq/Debug for the round-trip assertions; the
    // original derives above stay minimal on purpose.
    impl PartialEq for Shape {
        fn eq(&self, other: &Self) -> bool {
            self.to_value() == other.to_value()
        }
    }
    impl std::fmt::Debug for Shape {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", self.to_value())
        }
    }
    impl PartialEq for Point {
        fn eq(&self, other: &Self) -> bool {
            self.x == other.x && self.label == other.label
        }
    }
    impl std::fmt::Debug for Point {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Point({}, {:?})", self.x, self.label)
        }
    }

    #[test]
    fn derive_round_trips_through_value() {
        let n = Nested {
            p: Point {
                x: 9,
                label: "hi".into(),
            },
            shapes: vec![Shape::Unit, Shape::Tuple(4), Shape::Named { a: 1, b: true }],
            opt: Some(7),
            flag: false,
            ratio: 2.5,
        };
        let back = Nested::from_value(&n.to_value()).expect("round trip");
        assert_eq!(back, n);
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let v = Value::Obj(vec![
            (
                "p".into(),
                Value::Obj(vec![
                    ("x".into(), Value::U64(1)),
                    ("label".into(), Value::Str("l".into())),
                ]),
            ),
            ("shapes".into(), Value::Arr(vec![])),
            ("flag".into(), Value::Bool(true)),
            ("ratio".into(), Value::U64(3)),
        ]);
        let n = Nested::from_value(&v).expect("opt omitted is None");
        assert_eq!(n.opt, None);
        assert_eq!(n.ratio, 3.0, "integer values coerce into f64 fields");
    }

    #[test]
    fn missing_required_field_and_unknown_key_error() {
        let missing = Value::Obj(vec![("x".into(), Value::U64(1))]);
        let e = Point::from_value(&missing).unwrap_err();
        assert!(e.0.contains("missing field `label`"), "{e}");

        let unknown = Value::Obj(vec![
            ("x".into(), Value::U64(1)),
            ("label".into(), Value::Str("l".into())),
            ("typo".into(), Value::U64(0)),
        ]);
        let e = Point::from_value(&unknown).unwrap_err();
        assert!(e.0.contains("unknown field `typo`"), "{e}");
    }

    #[test]
    fn unknown_enum_variant_lists_the_valid_ones() {
        let e = Shape::from_value(&Value::Str("Blob".into())).unwrap_err();
        assert!(e.0.contains("Unit"), "{e}");
        assert!(e.0.contains("Named"), "{e}");
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
    }
}
