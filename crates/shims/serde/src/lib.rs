//! Local stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides a value-tree [`Serialize`] trait, a marker [`Deserialize`]
//! trait, and re-exports the matching derive macros. The companion
//! `serde_json` shim renders [`Value`] trees as JSON. The derive syntax
//! (`#[derive(Serialize, Deserialize)]`) and trait paths match the real
//! crate, so swapping the real serde back in is a manifest-only change.

#![forbid(unsafe_code)]

// The derive macros emit `::serde::...` paths; alias this crate under its
// public name so they also resolve inside the crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's equivalent of `serde_json::Value`,
/// hoisted here so `Serialize` can be defined without a json dependency).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait paired with the `Deserialize` derive. The shim does not
/// implement deserialization (nothing in-tree reads serialized data back);
/// deriving it keeps type definitions source-compatible with real serde.
pub trait Deserialize {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u64,
        label: String,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Unit,
        Tuple(u32),
        Named { a: u8, b: bool },
    }

    #[test]
    fn derive_named_struct() {
        let p = Point {
            x: 3,
            label: "hi".into(),
        };
        match p.to_value() {
            Value::Obj(fields) => {
                assert_eq!(fields[0], ("x".into(), Value::U64(3)));
                assert_eq!(fields[1], ("label".into(), Value::Str("hi".into())));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn derive_enum_variants() {
        assert_eq!(Shape::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Shape::Tuple(9).to_value(),
            Value::Obj(vec![("Tuple".into(), Value::U64(9))])
        );
        match (Shape::Named { a: 1, b: true }).to_value() {
            Value::Obj(entries) => {
                assert_eq!(entries[0].0, "Named");
                assert!(matches!(entries[0].1, Value::Obj(_)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn containers_serialize() {
        let v = vec![1u32, 2, 3];
        assert_eq!(
            v.to_value(),
            Value::Arr(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        assert_eq!("s".to_value(), Value::Str("s".into()));
    }
}
