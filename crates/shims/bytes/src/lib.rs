//! Local stand-in for the subset of the `bytes` crate this workspace
//! uses: `Bytes` / `BytesMut` buffers and the little-endian `Buf` /
//! `BufMut` accessors the trace codec reads and writes with.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Like the real crate,
/// `clone` is O(1) and shares the underlying storage — trace artifacts
/// held by many campaign cells never copy their payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Copies the buffer into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// True when two handles share the same underlying storage (a
    /// zero-copy clone rather than an equal-content copy).
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes(Arc::from(Vec::new()))
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Sequential little-endian reads from a byte source.
///
/// # Panics
///
/// Like the real crate, the `get_*`/`advance` methods panic when the
/// buffer has insufficient remaining bytes; callers bounds-check first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        for slot in &mut b {
            *slot = self.get_u8();
        }
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        for slot in &mut b {
            *slot = self.get_u8();
        }
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }
}

/// Sequential little-endian writes to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR");
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0123_4567_89ab_cdef);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 3 + 1 + 4 + 8);
        r.advance(3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert!(!r.has_remaining());
    }

    #[test]
    fn to_vec_matches_contents() {
        let mut b = BytesMut::default();
        b.put_u8(1);
        b.put_u8(2);
        assert_eq!(b.freeze().to_vec(), vec![1, 2]);
    }

    #[test]
    fn clone_is_zero_copy() {
        let mut b = BytesMut::default();
        b.put_slice(&[1, 2, 3]);
        let a = b.freeze();
        let c = a.clone();
        assert!(a.shares_storage_with(&c), "clone must share storage");
        let d = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, d);
        assert!(
            !a.shares_storage_with(&d),
            "equal content, distinct storage"
        );
    }
}
