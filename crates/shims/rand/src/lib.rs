//! Local stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the `Rng` / `SeedableRng` traits and the `SmallRng` / `StdRng`
//! generators with the same API surface the real crate exposes. Both
//! generators are xoshiro256++ seeded through SplitMix64: high-quality,
//! fast, and fully deterministic for a given seed. Streams differ from the
//! real `rand` crate's, which is fine — everything downstream only relies
//! on determinism, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface: construct a generator from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Widens to `u64` for uniform arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows back from `u64` (value guaranteed in range by the caller).
    fn from_u64(v: u64) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); the tiny bias at 2^64
    // scale is irrelevant for workload synthesis.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample from empty range");
        // Wrapping: `0..=u64::MAX` has span 2^64, which wraps to 0 and
        // selects the full-domain branch (a plain `+ 1` would overflow
        // in debug builds before ever reaching it).
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            T::from_u64(rng.next_u64())
        } else {
            T::from_u64(lo + uniform_below(rng, span))
        }
    }
}

// `f64` deliberately does not implement `SampleUniform`; float ranges get
// their own impl so they don't collide with the integer blanket above.
impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// xoshiro256++ core shared by both named generators.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Xoshiro256 { s }
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast deterministic generator (stands in for
    /// `rand::rngs::SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(state))
        }
    }

    /// The "standard" generator (stands in for `rand::rngs::StdRng`);
    /// same algorithm as [`SmallRng`] on a decorrelated stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(state ^ 0xa076_1d64_78bd_642f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = r.gen_range(0u64..17);
            assert!(a < 17);
            let b = r.gen_range(5u8..=9);
            assert!((5..=9).contains(&b));
            let c = r.gen_range(0.0f64..2.0);
            assert!((0.0..2.0).contains(&c));
            let d = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&d));
        }
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let _: u64 = r.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
