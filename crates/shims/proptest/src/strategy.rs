//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (use as `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer types usable as range-strategy endpoints.
pub trait RangeValue: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows back from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo + 1;
        if span == 0 {
            T::from_u64(rng.next_u64())
        } else {
            T::from_u64(lo + rng.below(span))
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Boxes a strategy for use in heterogeneous collections
/// (the `prop_oneof!` macro calls this).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}
