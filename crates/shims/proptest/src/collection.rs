//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s of `element` values with a length drawn from `len`
/// (any strategy producing `usize`, typically a range).
pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
