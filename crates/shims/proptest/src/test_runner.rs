//! Deterministic RNG driving the shim's property tests.

/// Cases generated per property test. Smaller than real proptest's 256 to
/// keep `cargo test` quick on sim-heavy properties while still exploring
/// the space.
pub const CASES: u32 = 48;

/// SplitMix64 generator; the per-test seed is derived from the test name
/// so every property explores a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
