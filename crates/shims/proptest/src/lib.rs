//! Local stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro, range/`any`/`Just`/tuple/`prop_oneof!`
//! strategies, `prop_map`, and `collection::vec`. Each generated test runs
//! a fixed number of deterministic random cases (no shrinking — a failing
//! case prints its seed index, and re-runs reproduce it exactly because
//! the case stream is a pure function of the test body's strategies).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u32..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vec(pairs in crate::collection::vec((0u8..4, any::<bool>()), 2..10)) {
            prop_assert!(pairs.len() >= 2 && pairs.len() < 10);
            for (a, _b) in pairs {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn any_covers_domain() {
        let mut rng = crate::test_runner::TestRng::for_test("cover");
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
