//! Local stand-in for the subset of `criterion` this workspace uses.
//!
//! Supports `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Throughput`, and `Bencher::iter`. Timing is a simple best-of-samples
//! wall-clock measurement printed per benchmark — enough to compare hot
//! paths between commits without a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// True when the harness was invoked with `--test`: each benchmark body
/// runs exactly once and timing is skipped, mirroring real criterion's
/// `cargo bench -- --test` smoke mode (used by CI to catch bench-code
/// regressions without paying for measurements).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Benchmark driver handed to `iter` closures.
pub struct Bencher {
    best_ns_per_iter: f64,
    smoke: bool,
}

impl Bencher {
    /// Times `f`, keeping the best (lowest-overhead) sample. In `--test`
    /// smoke mode, runs `f` once without timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.best_ns_per_iter = 0.0;
            return;
        }
        // Warm up and estimate a batch size targeting ~5 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch = (5_000_000 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

/// Top-level benchmark registry (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        let ns = run_one(&full, f);
        if let Some(Throughput::Elements(n)) = self.throughput {
            if ns > 0.0 {
                let rate = n as f64 * 1e9 / ns;
                println!("    {full}: {rate:.0} elem/s");
            }
        }
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) -> f64 {
    let mut b = Bencher {
        best_ns_per_iter: f64::NAN,
        smoke: test_mode(),
    };
    f(&mut b);
    if b.smoke {
        println!("bench {name}: ok (--test smoke mode)");
    } else {
        println!("bench {name}: {:.1} ns/iter", b.best_ns_per_iter);
    }
    b.best_ns_per_iter
}

/// Declares a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
