//! Derive macros for the local `serde` shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available without a
//! registry): supports non-generic structs with named fields, tuple
//! structs, unit structs, and enums with unit / tuple / struct variants —
//! the full shape set this workspace serializes. `#[serde(...)]`
//! attributes are not supported (none are used in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim's `serde::Serialize` (`to_value`) for a type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives the shim's `serde::Deserialize` (`from_value`) for a type,
/// inverting exactly the value-tree layout the `Serialize` derive emits.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Splits a field-list token stream at top-level commas, tracking angle-
/// bracket depth so `Foo<A, B>` doesn't split. Returns the segments as
/// token vectors (empty trailing segment dropped).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        segments.last_mut().expect("segments never empty").push(t);
    }
    if segments.last().map(Vec::is_empty).unwrap_or(false) {
        segments.pop();
    }
    segments
}

/// Extracts the field name from one named-field segment
/// (`[attrs] [pub] name : Type`).
fn field_name(segment: &[TokenTree]) -> String {
    let mut i = 0;
    skip_attrs_and_vis(segment, &mut i);
    ident_of(&segment[i]).unwrap_or_else(|| panic!("expected field name in {segment:?}"))
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("expected struct/enum keyword");
    i += 1;
    let name = ident_of(&toks[i]).expect("expected type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "serde shim derive does not support generic type {name}"
        );
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(g.stream())
                    .iter()
                    .map(|seg| field_name(seg))
                    .collect();
                Kind::NamedStruct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_top_level(g.stream()).len())
            }
            _ => Kind::UnitStruct,
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("expected enum body for {name}");
            };
            let mut variants = Vec::new();
            for seg in split_top_level(g.stream()) {
                let mut j = 0;
                skip_attrs_and_vis(&seg, &mut j);
                let vname = ident_of(&seg[j]).expect("expected variant name");
                j += 1;
                let fields = match seg.get(j) {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        VariantFields::Named(
                            split_top_level(vg.stream())
                                .iter()
                                .map(|s| field_name(s))
                                .collect(),
                        )
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        VariantFields::Tuple(split_top_level(vg.stream()).len())
                    }
                    _ => VariantFields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Kind::Enum(variants)
        }
        other => panic!("cannot derive Serialize for {other} item"),
    };
    Item { name, kind }
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let ty = &item.name;
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::Value::Obj(::std::vec![{}]),",
                            obj_entry(vn, "::serde::Serialize::to_value(f0)")
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => ::serde::Value::Obj(::std::vec![{}]),",
                                binds.join(", "),
                                obj_entry(
                                    vn,
                                    &format!("::serde::Value::Arr(::std::vec![{}])", vals.join(", "))
                                )
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {} }} => ::serde::Value::Obj(::std::vec![{}]),",
                                fields.join(", "),
                                obj_entry(
                                    vn,
                                    &format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
                                )
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {}\n    }}\n}}",
        item.name, body
    )
}

fn quoted_list(names: &[String]) -> String {
    names
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{ty}\")?,"))
                .collect();
            format!(
                "let obj = ::serde::expect_obj(v, \"{ty}\")?;\n        \
                 ::serde::deny_unknown(obj, &[{}], \"{ty}\")?;\n        \
                 ::std::result::Result::Ok({ty} {{ {} }})",
                quoted_list(fields),
                inits.join(" ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = ::serde::expect_arr(v, {n}, \"{ty}\")?;\n        \
                 ::std::result::Result::Ok({ty}({}))",
                elems.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({ty})"),
        Kind::Enum(variants) => gen_deserialize_enum(ty, variants),
    };
    format!(
        "impl ::serde::Deserialize for {ty} {{\n    \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        \
         {body}\n    }}\n}}"
    )
}

fn gen_deserialize_enum(ty: &str, variants: &[Variant]) -> String {
    let all_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
    let variant_list = quoted_list(&all_names);
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .collect();
    let payload: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.fields, VariantFields::Unit))
        .collect();

    let mut arms = Vec::new();
    if !unit.is_empty() {
        let unit_arms: Vec<String> = unit
            .iter()
            .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({ty}::{0}),", v.name))
            .collect();
        arms.push(format!(
            "::serde::Value::Str(s) => match s.as_str() {{ {} other => \
             ::std::result::Result::Err(::serde::unknown_variant(other, \"{ty}\", &[{variant_list}])), }}",
            unit_arms.join(" ")
        ));
    }
    if !payload.is_empty() {
        let payload_arms: Vec<String> = payload
            .iter()
            .map(|v| {
                let vn = &v.name;
                let build = match &v.fields {
                    VariantFields::Unit => unreachable!("filtered above"),
                    VariantFields::Tuple(1) => format!(
                        "::std::result::Result::Ok({ty}::{vn}(::serde::Deserialize::from_value(inner)?))"
                    ),
                    VariantFields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        format!(
                            "{{ let items = ::serde::expect_arr(inner, {n}, \"{ty}::{vn}\")?; \
                             ::std::result::Result::Ok({ty}::{vn}({})) }}",
                            elems.join(", ")
                        )
                    }
                    VariantFields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::field(obj, \"{f}\", \"{ty}::{vn}\")?,")
                            })
                            .collect();
                        format!(
                            "{{ let obj = ::serde::expect_obj(inner, \"{ty}::{vn}\")?; \
                             ::serde::deny_unknown(obj, &[{}], \"{ty}::{vn}\")?; \
                             ::std::result::Result::Ok({ty}::{vn} {{ {} }}) }}",
                            quoted_list(fields),
                            inits.join(" ")
                        )
                    }
                };
                format!("\"{vn}\" => {build},")
            })
            .collect();
        arms.push(format!(
            "::serde::Value::Obj(entries) if entries.len() == 1 => {{ \
             let (key, inner) = &entries[0]; \
             match key.as_str() {{ {} other => \
             ::std::result::Result::Err(::serde::unknown_variant(other, \"{ty}\", &[{variant_list}])), }} }}",
            payload_arms.join(" ")
        ));
    }
    arms.push(format!(
        "other => ::std::result::Result::Err(::serde::DeError::msg(format!(\
         \"expected a {ty} variant, got {{}}\", other.kind())))"
    ));
    format!("match v {{ {} }}", arms.join(" "))
}
