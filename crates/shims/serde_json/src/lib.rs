//! Local stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] over the shim `serde::Serialize`,
//! and [`from_str`] / [`from_value`] over the shim `serde::Deserialize`
//! (backed by the hand-rolled recursive-descent parser in [`parse`]).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization or deserialization error. The shim renderer is total, so
/// serialization never actually produces one; parsing and deserialization
/// report the first syntax or shape mismatch.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses `s` into a [`Value`] tree and deserializes `T` from it.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the value tree does not
/// match `T`'s shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Deserializes `T` from an already-parsed [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the value tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(|e| Error(e.to_string()))
}

/// Parses `s` as one JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error (with a byte
/// offset) or trailing non-whitespace input.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos after the digits; skip the
                            // outer `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid; copy the whole scalar).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let Some(digits) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if text.starts_with('-') {
                // "-0" must stay a float: i64 has no negative zero, and
                // result round-tripping (shard files, resume journals)
                // needs render(parse("-0")) == "-0" bit-identically.
                if text != "-0" {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            // Out-of-range integers fall through to f64, like real
            // serde_json's arbitrary-precision-off behaviour.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints integral floats without a fraction ("1"),
                // which is still valid JSON, exactly like real serde_json
                // prints `1.0` — close enough for machine consumption.
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Obj(vec![
            ("design".into(), Value::Str("Test".into())),
            ("n".into(), Value::U64(3)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"design":"Test","n":3}"#);
    }

    #[test]
    fn pretty_array() {
        let v = Value::Arr(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\n".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Arr(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Obj(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            v,
            Value::Obj(vec![
                (
                    "a".into(),
                    Value::Arr(vec![
                        Value::U64(1),
                        Value::Obj(vec![("b".into(), Value::Null)])
                    ])
                ),
                ("c".into(), Value::Str("x".into())),
            ])
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\nd\"").unwrap(),
            Value::Str("a\"b\\c\nd".into())
        );
        // \u escapes, including a surrogate pair (U+1F600).
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn negative_zero_round_trips_as_a_float() {
        // i64 cannot hold -0.0; collapsing it to integer 0 would break
        // the render→parse→render identity journals and shard files
        // depend on.
        let v = parse("-0").unwrap();
        assert_eq!(v, Value::F64(-0.0));
        match v {
            Value::F64(x) => assert!(x.is_sign_negative()),
            other => panic!("expected F64, got {other:?}"),
        }
        assert_eq!(to_string(&parse("-0").unwrap()).unwrap(), "-0");
        assert_eq!(parse("-0.0").unwrap(), Value::F64(-0.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_render_and_parse() {
        let v = Value::Obj(vec![
            ("n".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-9)),
            ("x".into(), Value::F64(1.25)),
            ("s".into(), Value::Str("a\"b\n".into())),
            (
                "list".into(),
                Value::Arr(vec![Value::Bool(false), Value::Null]),
            ),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&rendered).unwrap(), v, "via {rendered}");
        }
    }

    #[test]
    fn from_str_deserializes_typed_values() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<String> = from_str("null").unwrap();
        assert_eq!(o, None);
        assert!(from_str::<Vec<u32>>("[1, -2]").is_err());
    }
}
