//! Local stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the shim `serde::Serialize`.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};

/// Serialization error. The shim renderer is total, so this is never
/// actually produced; it exists to keep call sites (`?`, `.expect(..)`)
/// source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints integral floats without a fraction ("1"),
                // which is still valid JSON, exactly like real serde_json
                // prints `1.0` — close enough for machine consumption.
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Obj(vec![
            ("design".into(), Value::Str("Test".into())),
            ("n".into(), Value::U64(3)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"design":"Test","n":3}"#);
    }

    #[test]
    fn pretty_array() {
        let v = Value::Arr(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\n".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Arr(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Obj(vec![])).unwrap(), "{}");
    }
}
