//! Golden snapshots of the CSV and JSON sinks.
//!
//! The campaign result is **hand-built** (not simulated), so these
//! fixtures pin the *rendering* — column order, scenario columns, float
//! formatting, escaping — independent of the simulator. Regenerate with
//! `UNISON_BLESS=1 cargo test -p unison-harness --test sink_golden`
//! after an intentional format change.

use unison_core::CacheStats;
use unison_dram::{DramPreset, DramStats, EnergyCounters};
use unison_harness::{sink, CampaignResult, CampaignTiming, CellResult};
use unison_sim::{RunResult, SystemSpec};

fn run(design: &str, workload: &str, cache_bytes: u64, uipc: f64) -> RunResult {
    RunResult {
        design: design.to_string(),
        workload: workload.to_string(),
        cache_bytes,
        measured_accesses: 8_000_000,
        instructions: 64_000_000,
        elapsed_ps: 10_666_667_000,
        uipc,
        cache: CacheStats {
            accesses: 8_000_000,
            hits: 7_200_000,
            trigger_misses: 500_000,
            underprediction_misses: 200_000,
            singleton_bypasses: 100_000,
            offchip_read_bytes: 640_000_000,
            offchip_write_bytes: 160_000_000,
            ..CacheStats::default()
        },
        stacked: DramStats {
            reads: 9_000_000,
            writes: 2_000_000,
            row_hits: 6_000_000,
            row_empty: 3_000_000,
            row_conflicts: 2_000_000,
            bus_busy_ps: 4_000_000_000,
        },
        offchip: DramStats {
            reads: 800_000,
            writes: 200_000,
            row_hits: 300_000,
            row_empty: 500_000,
            row_conflicts: 200_000,
            bus_busy_ps: 1_000_000_000,
        },
        stacked_energy: EnergyCounters {
            activations: 5_000_000,
            read_cmds: 9_000_000,
            write_cmds: 2_000_000,
            bytes_read: 576_000_000,
            bytes_written: 128_000_000,
        },
        offchip_energy: EnergyCounters {
            activations: 700_000,
            read_cmds: 800_000,
            write_cmds: 200_000,
            bytes_read: 640_000_000,
            bytes_written: 160_000_000,
        },
    }
}

/// A fixed two-cell campaign: one paper-machine Unison cell and one
/// exotic-scenario Alloy cell whose workload name needs CSV escaping.
fn fixture() -> CampaignResult {
    let quad = SystemSpec {
        cores: Some(4),
        offchip: DramPreset::Ddr4_2400,
        ..SystemSpec::default()
    };
    CampaignResult {
        cells: vec![
            CellResult {
                scenario: "default".to_string(),
                system: SystemSpec::default(),
                cores: 16,
                seed: 42,
                speedup: Some(1.234567),
                run: run("Unison", "Web Search", 512 << 20, 1.5),
                wall_ns: 250_000_000,
            },
            CellResult {
                scenario: "c4+ddr4-2400".to_string(),
                system: quad,
                cores: 4,
                seed: 7,
                speedup: None,
                run: run("Alloy", "He said \"16GB, please\"", 1 << 30, 0.75),
                wall_ns: 750_000_000,
            },
        ],
        baseline_runs: 1,
        baseline_hits: 2,
        trace_generated: 1,
        trace_memo_hits: 3,
        trace_disk_hits: 0,
        resumed_cells: 0,
        timing: CampaignTiming {
            trace_prefill_ns: 100_000_000,
            baseline_ns: 400_000_000,
            cells_ns: 1_000_000_000,
            total_ns: 1_500_000_000,
        },
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("UNISON_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with UNISON_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{name} diverged from its golden fixture; if the format change is \
         intentional, regenerate with UNISON_BLESS=1"
    );
}

#[test]
fn csv_rendering_matches_golden() {
    check_golden("sink.csv", &sink::to_csv(&fixture()));
}

#[test]
fn json_rendering_matches_golden() {
    check_golden("sink.json", &sink::to_json(&fixture()));
}

#[test]
fn csv_includes_scenario_columns_for_every_row() {
    let csv = sink::to_csv(&fixture());
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], sink::CSV_HEADER);
    assert!(
        lines[0].contains("scenario,cores,page_bytes,ways,way_policy,stacked_dram,offchip_dram")
    );
    // Row 1: the default machine — Unison geometry resolved, DDR3.
    assert!(
        lines[1].contains(",default,16,960,4,predict,stacked,ddr3-1600,"),
        "{}",
        lines[1]
    );
    // Row 2: the exotic machine — no Unison geometry for Alloy, DDR4.
    assert!(
        lines[2].contains(",c4+ddr4-2400,4,,,,stacked,ddr4-2400,"),
        "{}",
        lines[2]
    );
}

#[test]
fn csv_escapes_commas_and_quotes_in_names() {
    let csv = sink::to_csv(&fixture());
    let row = csv
        .lines()
        .find(|l| l.contains("Alloy"))
        .expect("escaped row present");
    // RFC-4180: the whole field quoted, embedded quotes doubled.
    assert!(
        row.starts_with("\"He said \"\"16GB, please\"\"\",Alloy,"),
        "comma/quote workload name must be quoted and doubled: {row}"
    );
    // A strict CSV split on unquoted commas still yields the right
    // number of columns.
    let mut cols = 0;
    let mut in_quotes = false;
    for c in row.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => cols += 1,
            _ => {}
        }
    }
    assert_eq!(cols + 1, sink::CSV_HEADER.split(',').count());
}

#[test]
fn json_round_trips_the_cells() {
    // The JSON sink's cells deserialize back to identical bytes — the
    // property shard files and resume journals rely on.
    let r = fixture();
    let cells_json = serde_json::to_string(&r.cells).unwrap();
    let back: Vec<CellResult> = serde_json::from_str(&cells_json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), cells_json);
}
