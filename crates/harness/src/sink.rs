//! Structured result sinks: JSON and CSV renderings of a
//! [`CampaignResult`](crate::CampaignResult).

use std::path::Path;

use serde::Serialize;

use crate::campaign::{CampaignResult, CampaignSummary, CellResult};
use crate::errors::{FileError, IoContext};

/// CSV header row produced by [`to_csv`].
///
/// The scenario columns (`scenario` through `offchip_dram`) make each row
/// self-describing: `cores` is the count the run actually drove, and
/// `page_bytes`/`ways`/`way_policy` are the geometry the design
/// **actually ran** (variant-pinned knobs win over scenario overrides,
/// per `Design::unison_geometry`); they stay empty for designs the
/// geometry knobs don't apply to.
pub const CSV_HEADER: &str = "workload,design,cache_bytes,seed,scenario,cores,page_bytes,ways,\
way_policy,stacked_dram,offchip_dram,speedup,uipc,miss_ratio,\
measured_accesses,instructions,elapsed_ps,offchip_bytes_per_ki,activations_per_ki";

/// The JSON sink's document shape: the counter-and-timing summary up
/// front, then the cells with full [`RunResult`]s.
///
/// [`RunResult`]: unison_sim::RunResult
#[derive(Debug, Clone, Serialize)]
pub struct JsonDocument {
    /// Counters and timing ([`CampaignResult::summary`]).
    pub summary: CampaignSummary,
    /// The executed cells, in grid order.
    pub cells: Vec<CellResult>,
}

/// Renders the campaign as pretty JSON: a `summary` block (memoization
/// counters, per-phase timing, per-cell wall-time aggregates) followed
/// by the cells with their full [`RunResult`]s.
///
/// The CSV sink deliberately carries **no** timing columns: CSV renders
/// of a resumed or merged campaign must stay byte-identical to the
/// uninterrupted run's (the CI smoke compares them with `cmp`).
///
/// [`RunResult`]: unison_sim::RunResult
pub fn to_json(results: &CampaignResult) -> String {
    let doc = JsonDocument {
        summary: results.summary(),
        cells: results.cells.clone(),
    };
    serde_json::to_string_pretty(&doc).expect("campaign results serialize")
}

/// Renders the campaign as a flat CSV of headline metrics, one row per
/// cell, in grid order.
pub fn to_csv(results: &CampaignResult) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for cell in results.cells() {
        let r = &cell.run;
        let speedup = cell.speedup.map(|s| format!("{s:.6}")).unwrap_or_default();
        // The geometry the design actually ran: a scenario's page/way
        // override does not apply to Unison1984/UnisonAssoc rows (the
        // variant pins that knob), and none of them apply to Alloy/
        // Footprint/Ideal/NoCache rows.
        let geometry =
            unison_sim::Design::from_name(&r.design).and_then(|d| d.unison_geometry(&cell.system));
        let opt = |v: Option<String>| v.unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{},{},{},{:.3},{:.4}\n",
            csv_field(&r.workload),
            csv_field(&r.design),
            r.cache_bytes,
            cell.seed,
            csv_field(&cell.scenario),
            cell.cores,
            opt(geometry.map(|(page_bytes, _, _)| page_bytes.to_string())),
            opt(geometry.map(|(_, ways, _)| ways.to_string())),
            opt(geometry.map(|(_, _, policy)| policy.name().to_string())),
            cell.system.stacked.name(),
            cell.system.offchip.name(),
            speedup,
            r.uipc,
            r.cache.miss_ratio(),
            r.measured_accesses,
            r.instructions,
            r.elapsed_ps,
            r.offchip_bytes_per_kilo_instr(),
            r.activations_per_kilo_instr(),
        ));
    }
    out
}

/// Writes [`to_json`] output to `path`.
///
/// # Errors
///
/// Returns a [`FileError`] naming the operation and path on write
/// failure, so callers can report `cannot write JSON results /path: …`
/// instead of a bare I/O error.
pub fn write_json(results: &CampaignResult, path: &Path) -> Result<(), FileError> {
    std::fs::write(path, to_json(results)).file_ctx("write JSON results to", path)
}

/// Writes [`to_csv`] output to `path`.
///
/// # Errors
///
/// Returns a [`FileError`] naming the operation and path on write
/// failure.
pub fn write_csv(results: &CampaignResult, path: &Path) -> Result<(), FileError> {
    std::fs::write(path, to_csv(results)).file_ctx("write CSV results to", path)
}

/// RFC-4180 field escaping: quote when the value contains a comma, a
/// quote, or a line break (an unquoted newline would tear the row),
/// doubling embedded quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, ScenarioGrid};
    use unison_sim::{Design, SimConfig};
    use unison_trace::workloads;

    fn small_result() -> CampaignResult {
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid)
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let r = small_result();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + r.cells().len());
        assert!(lines[1].starts_with("Web Search,Unison,"));
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn json_contains_cells_and_counters() {
        let r = small_result();
        let json = to_json(&r);
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"baseline_runs\""));
        assert!(json.contains("\"trace_memo_hits\""));
        assert!(json.contains("\"timing\""));
        assert!(json.contains("\"cell_wall_ns_total\""));
        assert!(json.contains("\"Unison\""));
    }

    #[test]
    fn csv_carries_no_timing_columns() {
        // The CI smoke byte-compares resumed/merged CSVs against the
        // uninterrupted run's; wall clocks never repeat, so timing must
        // never leak into this sink.
        assert!(!CSV_HEADER.contains("wall"));
        assert!(!CSV_HEADER.contains("_ns"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn csv_geometry_columns_report_what_actually_ran() {
        use unison_sim::{Scenario, SystemSpec};
        // A scenario overriding page size and ways, against a design that
        // pins its page size (Unison1984) and one the knobs don't apply
        // to (Alloy).
        let scenario = Scenario::from_spec(SystemSpec {
            page_bytes: Some(448),
            ways: Some(8),
            ..SystemSpec::default()
        });
        let grid = ScenarioGrid::new()
            .designs([Design::Unison1984, Design::Alloy])
            .workloads([workloads::web_search()])
            .sizes([256 << 20])
            .scenario(scenario);
        let csv = to_csv(&Campaign::new(SimConfig::quick_test()).threads(1).run(&grid));
        let row = |design: &str| {
            csv.lines()
                .find(|l| l.contains(design))
                .unwrap_or_else(|| panic!("no {design} row in\n{csv}"))
                .to_string()
        };
        // Unison1984 pins 1984 B pages; the scenario's ways apply.
        assert!(
            row("Unison-1984B").contains(",1984,8,predict,"),
            "row must describe the simulated geometry: {}",
            row("Unison-1984B")
        );
        // Alloy has no page/way geometry: columns stay empty.
        assert!(
            row("Alloy").contains(",,,,stacked,"),
            "non-Unison rows leave geometry blank: {}",
            row("Alloy")
        );
    }
}
