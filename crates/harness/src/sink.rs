//! Structured result sinks: JSON and CSV renderings of a
//! [`CampaignResult`](crate::CampaignResult).

use std::path::Path;

use crate::campaign::CampaignResult;

/// CSV header row produced by [`to_csv`].
pub const CSV_HEADER: &str = "workload,design,cache_bytes,seed,speedup,uipc,miss_ratio,\
measured_accesses,instructions,elapsed_ps,offchip_bytes_per_ki,activations_per_ki";

/// Renders the campaign as pretty JSON (full [`RunResult`]s plus
/// baseline-memoization counters).
///
/// [`RunResult`]: unison_sim::RunResult
pub fn to_json(results: &CampaignResult) -> String {
    serde_json::to_string_pretty(results).expect("campaign results serialize")
}

/// Renders the campaign as a flat CSV of headline metrics, one row per
/// cell, in grid order.
pub fn to_csv(results: &CampaignResult) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for cell in results.cells() {
        let r = &cell.run;
        let speedup = cell.speedup.map(|s| format!("{s:.6}")).unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6},{},{},{},{:.3},{:.4}\n",
            csv_field(&r.workload),
            csv_field(&r.design),
            r.cache_bytes,
            cell.seed,
            speedup,
            r.uipc,
            r.cache.miss_ratio(),
            r.measured_accesses,
            r.instructions,
            r.elapsed_ps,
            r.offchip_bytes_per_kilo_instr(),
            r.activations_per_kilo_instr(),
        ));
    }
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(results: &CampaignResult, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

/// Writes [`to_csv`] output to `path`.
pub fn write_csv(results: &CampaignResult, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, to_csv(results))
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, ExperimentGrid};
    use unison_sim::{Design, SimConfig};
    use unison_trace::workloads;

    fn small_result() -> CampaignResult {
        let grid = ExperimentGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([256 << 20]);
        Campaign::new(SimConfig::quick_test())
            .threads(1)
            .run_speedups(&grid)
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let r = small_result();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + r.cells().len());
        assert!(lines[1].starts_with("Web Search,Unison,"));
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), CSV_HEADER.split(',').count());
    }

    #[test]
    fn json_contains_cells_and_counters() {
        let r = small_result();
        let json = to_json(&r);
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"baseline_runs\""));
        assert!(json.contains("\"Unison\""));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
