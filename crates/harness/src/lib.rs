//! The experiment-campaign engine: declarative grids of
//! (design × scenario × size × workload × seed) cells executed by a
//! thread pool with memoized baselines and structured result sinks.
//!
//! The paper's evaluation is a large grid of independent simulations.
//! Every figure/table binary used to hand-roll a serial loop and
//! re-simulate the NoCache baseline per speedup; this crate factors that
//! into one engine:
//!
//! * [`ScenarioGrid`] — declare the axes (designs, scenarios, cache
//!   sizes, workloads, seeds), with per-workload size overrides for the
//!   CloudSuite-vs-TPC-H split the paper uses throughout. The scenario
//!   axis sweeps whole machines — `unison_sim::SystemSpec` points naming
//!   core counts, cache geometry, and DRAM presets; leaving it unset
//!   runs the paper's Table III system.
//! * [`Campaign`] — execute the grid's cells on `N` worker threads
//!   (`--threads 1` reproduces the historical serial behaviour exactly:
//!   simulations are deterministic and results are returned in grid
//!   order, so parallelism never changes output).
//! * [`BaselineStore`] — NoCache baselines are computed **once** per
//!   (workload, system spec, seed) and shared by every speedup in the
//!   campaign. A baseline for a 4-core machine is never reused for a
//!   16-core one: keys serialize the *full* specs.
//! * [`TraceStore`] — each (workload, seed) record stream is frozen
//!   **once** as a `unison_trace::TraceArtifact` and replayed zero-copy
//!   by every cell (bit-identical to live generation), optionally
//!   persisted to a disk cache so repeated invocations skip generation
//!   entirely. Opt out per campaign with
//!   [`Campaign::traces`]`(`[`TracePolicy::Generate`]`)`.
//! * [`CampaignResult`] — typed result set with lookup helpers,
//!   [`stats::geomean`] reductions, and JSON/CSV sinks ([`sink`]).
//! * [`TaskPlan`] / [`Executor`] ([`scheduler`]) — the grid lowers to an
//!   explicit task plan (trace prefills → baselines → cells, each cell
//!   keyed by a stable [`CellKey`]); executors run it in-process or as a
//!   deterministic `--shard I/N` partition ([`ShardedExecutor`]), and
//!   [`merge_shards`] reassembles a complete set of [`ShardOutput`]s
//!   bit-identically to the single-process run.
//! * [`Journal`] ([`journal`]) — append-only JSONL checkpoint of
//!   completed cells; `Campaign::journal(path).resume(true)` restores
//!   the completed prefix after an interruption and runs only the rest,
//!   bit-identical to an uninterrupted campaign.
//! * [`Telemetry`] ([`telemetry`]) + [`ProgressReporter`] ([`progress`])
//!   — campaign observability: phase timers and per-cell wall times
//!   under an injectable [`Clock`] (deterministic in tests via
//!   [`MockClock`]), and rate-limited live progress streams
//!   (human-readable or JSONL). Timing is observability, never
//!   identity: it feeds no key or fingerprint, and byte-identity
//!   checks compare [`CampaignResult::canonical_cells`] (timing
//!   stripped).
//! * [`CostModel`] ([`costs`]) — per-cell cost estimates learned from
//!   prior journals and shard outputs (with a structural prior for
//!   never-seen cells), persisted as `costs.json`. Drives LPT
//!   longest-first ordering in the in-process executor and the
//!   orchestrator's `--partition balanced` LPT bin-packing of cells
//!   onto workers, replacing the blind `key % N` split — scheduling
//!   only, never identity: canonical output stays byte-identical.
//! * [`orchestrator`] — the fault-tolerant campaign supervisor behind
//!   `sweep --orchestrate N`: journaled shard worker processes,
//!   crash-restart under bounded exponential backoff, repeat-offender
//!   cell quarantine, journal salvage, and an explicit partial-result
//!   [`CampaignManifest`] when the campaign degrades. Paired with
//!   [`fault`], a deterministic env-triggered fault-injection layer
//!   (`UNISON_FAULT=crash-after-cells:K`, `torn-journal`,
//!   `corrupt-shard-output`, `panic-on-cell:KEY`) that makes the
//!   recovery paths testable end to end.
//!
//! # Example
//!
//! ```
//! use unison_harness::{Campaign, ExperimentGrid};
//! use unison_sim::{Design, SimConfig};
//! use unison_trace::workloads;
//!
//! let grid = ExperimentGrid::new()
//!     .designs([Design::Unison, Design::Ideal])
//!     .workloads([workloads::web_search()])
//!     .sizes([256 << 20]);
//! let results = Campaign::new(SimConfig::quick_test())
//!     .threads(2)
//!     .run_speedups(&grid);
//! assert_eq!(results.cells().len(), 2);
//! assert_eq!(results.baseline_runs, 1); // one workload -> one baseline
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod campaign;
pub mod costs;
pub mod errors;
pub mod fault;
mod grid;
pub mod journal;
pub mod orchestrator;
pub mod pool;
pub mod progress;
pub mod scheduler;
pub mod sink;
pub mod stats;
pub mod telemetry;
mod trace_store;

pub use baseline::BaselineStore;
pub use campaign::{Campaign, CampaignResult, CampaignSummary, CellResult, TracePolicy};
pub use costs::CostModel;
pub use errors::{FileError, IoContext};
pub use grid::{Cell, ExperimentGrid, ScenarioGrid};
pub use journal::{merge_shards, IndexedCell, Journal, ShardOutput};
pub use orchestrator::{
    CampaignManifest, OrchestrateOutcome, OrchestratorConfig, QuarantinedCell, WorkerLaunch,
    WorkerPaths, WorkerReport,
};
pub use progress::{
    CounterSnapshot, FleetProgress, ProgressConfig, ProgressMode, ProgressReporter, WorkerPhase,
    WorkerSample,
};
pub use scheduler::{
    plan_batches, BalancedExecutor, BatchRunner, CellKey, ExecHooks, Executor, InProcessExecutor,
    PlannedCell, ShardSpec, ShardedExecutor, TaskPlan,
};
pub use telemetry::{CampaignTiming, Clock, MockClock, MonotonicClock, Phase, Telemetry};
pub use trace_store::TraceStore;
