//! The in-process campaign supervisor behind `sweep --orchestrate N`.
//!
//! One parent process lowers the plan once, partitions its cells across
//! N child `--shard i/N` worker processes (each checkpointing to its own
//! [`Journal`]), and supervises them: a worker that dies — panicking
//! cell, injected crash, SIGKILL, corrupted output — is relaunched with
//! `--resume` from its journal under bounded exponential backoff, so the
//! cells it already completed are restored instead of re-simulated.
//!
//! Failure handling degrades gracefully, never silently:
//!
//! * A worker that dies **twice in a row on the same cell** (identified
//!   by the `key=…` tag the pool's panic relabeling and the fault layer
//!   put in its log) has that cell *quarantined*: the next incarnation
//!   is launched with `--skip-cells` and completes the rest of its
//!   shard.
//! * A worker that exhausts its restart budget is marked failed; its
//!   journal is salvaged read-only ([`Journal::peek`]) so its durable
//!   completions still land in the result.
//! * If every shard completes and nothing was quarantined, the outputs
//!   go through the existing [`merge_shards`] fingerprint/arity/coverage
//!   verification and the merged result is **bit-identical** to an
//!   uninterrupted unsharded run. Otherwise the run finishes with a
//!   partial [`CampaignResult`] plus a [`CampaignManifest`] naming every
//!   missing cell and what happened to its worker — written to
//!   `manifest.json` in the scratch directory either way.
//!
//! The supervisor never trusts a worker's exit code alone: a
//! successfully-exiting worker whose output file is missing, unparseable
//! (e.g. an injected `corrupt-shard-output`), mislabeled, or short on
//! coverage is treated exactly like a crash.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use serde::Serialize;

use crate::campaign::CampaignResult;
use crate::errors::IoContext;
use crate::fault;
use crate::journal::{merge_shards, IndexedCell, Journal, ShardOutput};
use crate::progress::{FleetProgress, ProgressConfig, WorkerPhase, WorkerSample};
use crate::scheduler::{Executor, ShardSpec, ShardedExecutor, TaskPlan};
use crate::telemetry::CampaignTiming;

/// Supervision policy for one orchestrated campaign.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker (shard) count, ≥ 1.
    pub workers: u32,
    /// Restarts allowed **per worker** before it is marked failed (its
    /// first launch is not a restart: `max_restarts = 3` allows 4
    /// incarnations).
    pub max_restarts: u32,
    /// First restart backoff, milliseconds; doubles per consecutive
    /// restart of the same worker.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Scratch directory owning the per-worker journals, shard outputs,
    /// logs, and the manifest. Re-running the same campaign with the
    /// same directory resumes from whatever the journals hold.
    pub dir: PathBuf,
    /// Suppress the fleet progress/supervision lines on stderr.
    pub quiet: bool,
    /// Explicit per-worker cell assignment (plan indices, one `Vec` per
    /// worker) replacing the default `key % N` partition — how
    /// `--partition balanced` hands the cost model's LPT bin-packing to
    /// the supervisor. Workers must compute the same assignment on
    /// their side (same plan + same `costs.json`), since coverage
    /// verification checks each shard output against its entry here.
    pub assignments: Option<Vec<Vec<usize>>>,
}

impl OrchestratorConfig {
    /// Default policy: 3 restarts per worker, 250 ms → 5 s backoff.
    pub fn new(workers: u32, dir: impl Into<PathBuf>) -> OrchestratorConfig {
        OrchestratorConfig {
            workers: workers.max(1),
            max_restarts: 3,
            backoff_base_ms: 250,
            backoff_cap_ms: 5_000,
            dir: dir.into(),
            quiet: false,
            assignments: None,
        }
    }
}

/// Exponential backoff before restart `restart_no` (1-based): doubles
/// from `base_ms` per consecutive restart, capped at `cap_ms`.
pub fn backoff_ms(base_ms: u64, cap_ms: u64, restart_no: u32) -> u64 {
    let doublings = restart_no.saturating_sub(1).min(32);
    base_ms
        .saturating_mul(1u64 << doublings)
        .min(cap_ms.max(base_ms))
}

/// The scratch files of one worker slot.
#[derive(Debug, Clone)]
pub struct WorkerPaths {
    /// The worker's checkpoint journal (`--journal`, resumed across
    /// incarnations).
    pub journal: PathBuf,
    /// The worker's shard-output JSON (`--json`).
    pub output: PathBuf,
    /// The worker's combined stdout+stderr capture, appended across
    /// incarnations (where crash diagnoses come from).
    pub log: PathBuf,
}

/// Everything a launcher closure needs to build one worker incarnation's
/// [`Command`]. The orchestrator wires stdio redirection itself; the
/// closure only supplies the program and arguments.
#[derive(Debug)]
pub struct WorkerLaunch<'a> {
    /// 0-based worker index (== shard index).
    pub worker: u32,
    /// The shard this worker executes.
    pub shard: ShardSpec,
    /// The worker's scratch files.
    pub paths: &'a WorkerPaths,
    /// Canonical hex keys of quarantined cells this incarnation must
    /// skip (`--skip-cells`).
    pub skip: &'a [String],
    /// 0 for the first launch, incremented per restart.
    pub attempt: u32,
}

/// A cell the orchestrated campaign could not complete, as named by the
/// partial-result manifest.
#[derive(Debug, Clone, Serialize)]
pub struct QuarantinedCell {
    /// Plan (grid-order) index.
    pub index: usize,
    /// Canonical hex cell key.
    pub key: String,
    /// Human-readable cell identity ([`Cell::describe`](crate::Cell)).
    pub cell: String,
    /// The worker the cell was assigned to.
    pub worker: u32,
    /// The failure that doomed it, when one was attributable.
    pub error: Option<String>,
}

/// Per-worker supervision summary inside the manifest.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerReport {
    /// 0-based worker index.
    pub worker: u32,
    /// CLI shard spelling (`"1/2"`).
    pub shard: String,
    /// Restarts consumed.
    pub restarts: u32,
    /// Whether the worker's shard output verified complete.
    pub completed: bool,
    /// Cells recovered from this worker (verified output, or journal
    /// salvage for a failed worker).
    pub cells: usize,
    /// Wall time this worker spent simulating cells, ns
    /// (`timing.cells_ns` of its verified output; 0 when it never
    /// completed). Feeds the manifest's imbalance ratio.
    pub busy_ns: u64,
    /// The last failure observed, if any.
    pub last_error: Option<String>,
}

/// The explicit record an orchestrated campaign finishes with — written
/// to `manifest.json` in the scratch directory whether the run completed
/// or degraded, so partial results are never silent.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignManifest {
    /// Plan fingerprint.
    pub fingerprint: String,
    /// True when every cell completed and the merged output passed full
    /// verification (bit-identical to an unsharded run).
    pub complete: bool,
    /// Cells in the full plan.
    pub total_cells: usize,
    /// Cells actually present in the assembled result.
    pub completed_cells: usize,
    /// Restarts summed across workers.
    pub total_restarts: u32,
    /// Max/mean of per-worker busy (cell-simulation) time across
    /// workers with verified outputs. 1.0 is perfect balance; the blind
    /// `key % N` partition typically lands well above it, `--partition
    /// balanced` close to it.
    pub imbalance_ratio: f64,
    /// Cells missing from the result, with attribution.
    pub quarantined: Vec<QuarantinedCell>,
    /// Per-worker supervision summaries.
    pub workers: Vec<WorkerReport>,
}

/// What [`run`] hands back: the (possibly partial) campaign result plus
/// the manifest describing how it was obtained.
#[derive(Debug)]
pub struct OrchestrateOutcome {
    /// The assembled campaign result (every plan cell when complete;
    /// the recoverable subset, in grid order, when degraded).
    pub result: CampaignResult,
    /// The supervision record.
    pub manifest: CampaignManifest,
    /// Where the manifest was written (`<dir>/manifest.json`).
    pub manifest_path: PathBuf,
}

impl OrchestrateOutcome {
    /// True when the campaign completed with no quarantined cells.
    pub fn is_complete(&self) -> bool {
        self.manifest.complete
    }
}

/// Serializes and writes one shard output, applying the
/// `corrupt-shard-output` fault when armed — the single write path
/// shared by `sweep --shard` and the test worker, so fault injection
/// covers both.
///
/// # Errors
///
/// Returns a one-line message naming the path on serialization or write
/// failure.
pub fn write_shard_output(path: &Path, out: &ShardOutput) -> Result<(), String> {
    let text = serde_json::to_string_pretty(out)
        .map_err(|e| format!("shard output does not serialize: {e}"))?;
    let mut bytes = text.into_bytes();
    bytes.push(b'\n');
    fault::corrupt_shard_output(&mut bytes);
    std::fs::write(path, bytes)
        .file_ctx("write shard output", path)
        .map_err(|e| e.to_string())
}

/// One worker slot's supervision state.
enum Phase {
    /// Needs (re)launching.
    Idle,
    /// Alive; polled with `try_wait`.
    Running(Child),
    /// Dead; waiting out the restart backoff.
    Backoff(Instant),
    /// Shard output verified.
    Done(Box<ShardOutput>),
    /// Restart budget exhausted.
    Failed,
}

struct Worker {
    index: u32,
    shard: ShardSpec,
    paths: WorkerPaths,
    assigned: Vec<usize>,
    phase: Phase,
    restarts: u32,
    /// Quarantined cell keys (canonical hex), passed as `--skip-cells`.
    skip: Vec<String>,
    /// `(key, error)` for each quarantined cell, for attribution.
    quarantine_errors: Vec<(String, String)>,
    last_culprit: Option<String>,
    last_error: Option<String>,
}

impl Worker {
    fn skip_indices(&self, plan: &TaskPlan) -> HashSet<usize> {
        plan.cells
            .iter()
            .filter(|pc| self.skip.contains(&pc.key.hex()))
            .map(|pc| pc.index)
            .collect()
    }
}

/// Runs `plan` as an orchestrated campaign: `cfg.workers` supervised
/// shard workers launched via `launch`, restarted from their journals on
/// death, quarantining repeat-offender cells, merging on completion.
///
/// The launcher closure turns a [`WorkerLaunch`] into the [`Command`] to
/// spawn (typically `current_exe()` with `--shard i/N --json … --journal
/// … --resume` plus the campaign flags); the orchestrator itself
/// redirects the child's stdout/stderr to the worker log.
///
/// # Errors
///
/// Returns a message only for *supervisor-level* failures (scratch
/// directory unusable, manifest unwritable, or a merge inconsistency
/// that verification should have made impossible). Worker failures never
/// error: they degrade into a partial outcome with
/// [`OrchestrateOutcome::is_complete`] `== false`.
pub fn run(
    plan: &TaskPlan,
    cfg: &OrchestratorConfig,
    launch: &dyn Fn(&WorkerLaunch<'_>) -> Command,
) -> Result<OrchestrateOutcome, String> {
    std::fs::create_dir_all(&cfg.dir)
        .file_ctx("create orchestrator directory", &cfg.dir)
        .map_err(|e| e.to_string())?;

    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|i| {
            let shard = ShardSpec::new(i, cfg.workers).expect("index < count by construction");
            let paths = WorkerPaths {
                journal: cfg.dir.join(format!("worker-{i}.journal.jsonl")),
                output: cfg.dir.join(format!("worker-{i}.shard.json")),
                log: cfg.dir.join(format!("worker-{i}.log")),
            };
            // A stale journal from a *different* campaign in this
            // scratch dir would make every incarnation die on resume
            // ("different campaign") — a guaranteed crash loop. Clear it
            // up front; same-campaign journals are kept (that is how
            // re-running the same orchestrate command resumes).
            if paths.journal.exists() && Journal::peek(&paths.journal, plan).is_err() {
                if !cfg.quiet {
                    eprintln!(
                        "[orchestrate] w{i}: discarding stale journal {} (different campaign)",
                        paths.journal.display()
                    );
                }
                let _ = std::fs::remove_file(&paths.journal);
            }
            Worker {
                index: i,
                shard,
                assigned: match &cfg.assignments {
                    Some(bins) => bins.get(i as usize).cloned().unwrap_or_default(),
                    None => ShardedExecutor::new(shard).assigned(plan),
                },
                paths,
                phase: Phase::Idle,
                restarts: 0,
                skip: Vec::new(),
                quarantine_errors: Vec::new(),
                last_culprit: None,
                last_error: None,
            }
        })
        .collect();

    let started = Instant::now();
    let mut fleet = FleetProgress::new(ProgressConfig::DEFAULT_INTERVAL_NS, 0);
    let mut next_sample = Instant::now();
    loop {
        let mut settled = true;
        for w in &mut workers {
            match &mut w.phase {
                Phase::Idle => {
                    settled = false;
                    spawn_worker(w, plan, cfg, launch);
                }
                Phase::Running(child) => {
                    settled = false;
                    match child.try_wait() {
                        Ok(Some(status)) => handle_exit(w, status, plan, cfg),
                        Ok(None) => {}
                        Err(e) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            fail_attempt(w, format!("cannot poll worker: {e}"), None, cfg);
                        }
                    }
                }
                Phase::Backoff(until) => {
                    settled = false;
                    if Instant::now() >= *until {
                        w.phase = Phase::Idle;
                    }
                }
                Phase::Done(_) | Phase::Failed => {}
            }
        }
        if settled {
            break;
        }
        if !cfg.quiet && Instant::now() >= next_sample {
            next_sample = Instant::now() + Duration::from_millis(500);
            let samples = sample_fleet(&workers);
            let now_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(line) = fleet.sample(now_ns, &samples) {
                eprintln!("{line}");
            }
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    if !cfg.quiet {
        eprintln!("{}", FleetProgress::render(&sample_fleet(&workers)));
    }

    assemble(plan, cfg, workers)
}

/// Launches the next incarnation of `w`, redirecting its output to the
/// worker log. A spawn failure consumes a restart like any other death.
fn spawn_worker(
    w: &mut Worker,
    plan: &TaskPlan,
    cfg: &OrchestratorConfig,
    launch: &dyn Fn(&WorkerLaunch<'_>) -> Command,
) {
    // A stale output from a previous incarnation (or a previous
    // orchestrate of the same campaign) must not be mistaken for this
    // incarnation's work.
    let _ = std::fs::remove_file(&w.paths.output);
    let spec = WorkerLaunch {
        worker: w.index,
        shard: w.shard,
        paths: &w.paths,
        skip: &w.skip,
        attempt: w.restarts,
    };
    let mut cmd = launch(&spec);
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&w.paths.log);
    match log.and_then(|f| f.try_clone().map(|g| (f, g))) {
        Ok((out, err)) => {
            cmd.stdout(Stdio::from(out)).stderr(Stdio::from(err));
        }
        Err(e) => {
            fail_attempt(w, format!("cannot open worker log: {e}"), None, cfg);
            return;
        }
    }
    cmd.stdin(Stdio::null());
    match cmd.spawn() {
        Ok(child) => {
            if !cfg.quiet {
                let what = if w.restarts == 0 {
                    "launched".to_string()
                } else {
                    format!("restarted (attempt {})", w.restarts + 1)
                };
                eprintln!(
                    "[orchestrate] w{} shard {}: {what}, {} cell(s) assigned{}",
                    w.index,
                    w.shard.display(),
                    w.assigned.len(),
                    if w.skip.is_empty() {
                        String::new()
                    } else {
                        format!(", skipping {} quarantined", w.skip.len())
                    }
                );
            }
            w.phase = Phase::Running(child);
        }
        Err(e) => fail_attempt(w, format!("cannot spawn worker: {e}"), None, cfg),
    }
    // Silence the unused warning for plan: kept in the signature so the
    // launch site has the plan available if future policies scope argv
    // per incarnation.
    let _ = plan;
}

/// Classifies a worker exit: success means exit-0 **and** a verified
/// output file; anything else is a failure attempt with a diagnosis
/// pulled from the worker log.
fn handle_exit(w: &mut Worker, status: ExitStatus, plan: &TaskPlan, cfg: &OrchestratorConfig) {
    let verified = if status.success() {
        verify_output(w, plan)
    } else {
        Err(format!("worker died ({status})"))
    };
    match verified {
        Ok(out) => {
            if !cfg.quiet {
                eprintln!(
                    "[orchestrate] w{} shard {}: completed {} cell(s) ({} resumed from journal)",
                    w.index,
                    w.shard.display(),
                    out.cells.len(),
                    out.resumed_cells
                );
            }
            w.phase = Phase::Done(Box::new(out));
        }
        Err(err) => {
            let diag = diagnose_log(&w.paths.log);
            let err = match &diag.detail {
                Some(line) => format!("{err} — {line}"),
                None => err,
            };
            fail_attempt(w, err, diag.culprit, cfg);
        }
    }
}

/// Verifies a successfully-exited worker's output file: parseable, same
/// plan, same shard coordinates, and covering exactly the assigned cells
/// minus quarantined ones. An exit code is an opinion; the output file
/// is the evidence.
fn verify_output(w: &Worker, plan: &TaskPlan) -> Result<ShardOutput, String> {
    let text = std::fs::read_to_string(&w.paths.output)
        .map_err(|e| format!("exited 0 but shard output is unreadable: {e}"))?;
    let out: ShardOutput = serde_json::from_str(&text)
        .map_err(|e| format!("exited 0 but shard output does not parse: {e}"))?;
    if out.fingerprint != plan.fingerprint() {
        return Err(format!(
            "shard output fingerprint {} does not match plan {}",
            out.fingerprint,
            plan.fingerprint()
        ));
    }
    if out.total_cells != plan.len() || out.speedups != plan.speedups {
        return Err("shard output disagrees with the plan shape".to_string());
    }
    if out.shard_index != w.shard.index || out.shard_count != w.shard.count {
        return Err(format!(
            "shard output claims shard {}/{} but this worker runs {}",
            out.shard_index + 1,
            out.shard_count,
            w.shard.display()
        ));
    }
    let covered: HashSet<usize> = out.cells.iter().map(|c| c.index).collect();
    let assigned: HashSet<usize> = w.assigned.iter().copied().collect();
    let skipped = w.skip_indices(plan);
    if let Some(&stray) = covered.iter().find(|i| !assigned.contains(i)) {
        return Err(format!("shard output claims unassigned cell {stray}"));
    }
    let missing: Vec<usize> = w
        .assigned
        .iter()
        .copied()
        .filter(|i| !covered.contains(i) && !skipped.contains(i))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "exited 0 but shard output covers {} of {} assigned cell(s); missing {:?}{}",
            covered.len(),
            assigned.len() - skipped.len(),
            &missing[..missing.len().min(8)],
            if missing.len() > 8 { ", ..." } else { "" }
        ));
    }
    Ok(out)
}

/// What a dead worker's log tail yields: the culprit cell key (the last
/// `key=<16 hex>` tag in the log — panic relabels and fault markers both
/// carry one) and the last diagnostic line for human consumption.
struct LogDiagnosis {
    culprit: Option<String>,
    detail: Option<String>,
}

fn diagnose_log(path: &Path) -> LogDiagnosis {
    let Ok(bytes) = std::fs::read(path) else {
        return LogDiagnosis {
            culprit: None,
            detail: None,
        };
    };
    let text = String::from_utf8_lossy(&bytes);
    let culprit = extract_last_key(&text);
    let detail = text
        .lines()
        .rev()
        .find(|l| l.contains("panicked") || l.contains("[fault]"))
        .map(|l| {
            let mut s = l.trim().to_string();
            if s.len() > 240 {
                s.truncate(240);
                s.push_str("...");
            }
            s
        });
    LogDiagnosis { culprit, detail }
}

/// Extracts the last `key=<16 hex>` occurrence in `text`.
fn extract_last_key(text: &str) -> Option<String> {
    let mut last = None;
    let mut rest = text;
    while let Some(at) = rest.find("key=") {
        let candidate = &rest[at + 4..];
        let hex: String = candidate
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .take(16)
            .collect();
        if hex.len() == 16 {
            last = Some(hex.to_ascii_lowercase());
        }
        rest = &rest[at + 4..];
    }
    last
}

/// Books one failed incarnation: quarantines the culprit cell when the
/// worker died on it twice in a row, then either schedules a restart
/// under exponential backoff or marks the worker failed once the budget
/// is spent.
fn fail_attempt(w: &mut Worker, err: String, culprit: Option<String>, cfg: &OrchestratorConfig) {
    if let Some(c) = &culprit {
        if w.last_culprit.as_deref() == Some(c.as_str()) && !w.skip.contains(c) {
            if !cfg.quiet {
                eprintln!(
                    "[orchestrate] w{}: cell key={c} killed two incarnations in a row; \
                     quarantining it",
                    w.index
                );
            }
            w.skip.push(c.clone());
            w.quarantine_errors.push((c.clone(), err.clone()));
        }
    }
    w.last_culprit = culprit;
    w.last_error = Some(err.clone());
    w.restarts += 1;
    if w.restarts > cfg.max_restarts {
        if !cfg.quiet {
            eprintln!(
                "[orchestrate] w{}: {err}; restart budget ({}) exhausted, giving up on this \
                 worker (its journal will be salvaged)",
                w.index, cfg.max_restarts
            );
        }
        w.phase = Phase::Failed;
        return;
    }
    let wait = backoff_ms(cfg.backoff_base_ms, cfg.backoff_cap_ms, w.restarts);
    if !cfg.quiet {
        eprintln!(
            "[orchestrate] w{}: {err}; restarting from journal in {wait} ms (restart {}/{})",
            w.index, w.restarts, cfg.max_restarts
        );
    }
    w.phase = Phase::Backoff(Instant::now() + Duration::from_millis(wait));
}

fn sample_fleet(workers: &[Worker]) -> Vec<WorkerSample> {
    workers
        .iter()
        .map(|w| {
            let (phase, done) = match &w.phase {
                Phase::Done(out) => (WorkerPhase::Done, out.cells.len()),
                Phase::Failed => (WorkerPhase::Failed, count_journal_cells(&w.paths.journal)),
                Phase::Backoff(_) => (
                    WorkerPhase::BackingOff,
                    count_journal_cells(&w.paths.journal),
                ),
                Phase::Idle | Phase::Running(_) => {
                    (WorkerPhase::Running, count_journal_cells(&w.paths.journal))
                }
            };
            WorkerSample {
                worker: w.index,
                done,
                total: w.assigned.len(),
                restarts: w.restarts,
                phase,
            }
        })
        .collect()
}

/// Durable cells in a worker journal, cheaply: terminated lines minus
/// the header. Progress sampling only — salvage uses [`Journal::peek`].
fn count_journal_cells(path: &Path) -> usize {
    match std::fs::read(path) {
        Ok(bytes) => bytes
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            .saturating_sub(1),
        Err(_) => 0,
    }
}

/// Assembles the final outcome: full merge when everything completed
/// clean, otherwise a partial result from verified outputs plus
/// journal salvage, with a manifest naming every missing cell.
fn assemble(
    plan: &TaskPlan,
    cfg: &OrchestratorConfig,
    workers: Vec<Worker>,
) -> Result<OrchestrateOutcome, String> {
    let total_restarts: u32 = workers.iter().map(|w| w.restarts).sum();
    let manifest_path = cfg.dir.join("manifest.json");
    // Partition-quality telemetry: how unevenly measured cell work
    // landed across the fleet (verified outputs only — a failed worker
    // has no trustworthy timing).
    let busy: Vec<u64> = workers
        .iter()
        .filter_map(|w| match &w.phase {
            Phase::Done(out) => Some(out.timing.cells_ns),
            _ => None,
        })
        .collect();
    let imbalance_ratio = crate::costs::imbalance_ratio(&busy);
    if !cfg.quiet && busy.len() > 1 {
        eprintln!(
            "[orchestrate] shard busy-time imbalance: {imbalance_ratio:.3}× (max/mean over {} \
             worker(s))",
            busy.len()
        );
    }
    let all_clean = workers
        .iter()
        .all(|w| matches!(w.phase, Phase::Done(_)) && w.skip.is_empty());

    if all_clean {
        let reports: Vec<WorkerReport> = workers.iter().map(|w| report_of(w, true)).collect();
        let outputs: Vec<ShardOutput> = workers
            .into_iter()
            .map(|w| match w.phase {
                Phase::Done(out) => *out,
                _ => unreachable!("all_clean checked above"),
            })
            .collect();
        let result = merge_shards(outputs)?;
        let manifest = CampaignManifest {
            fingerprint: plan.fingerprint().to_string(),
            complete: true,
            total_cells: plan.len(),
            completed_cells: result.cells.len(),
            total_restarts,
            imbalance_ratio,
            quarantined: Vec::new(),
            workers: reports,
        };
        write_manifest(&manifest_path, &manifest)?;
        return Ok(OrchestrateOutcome {
            result,
            manifest,
            manifest_path,
        });
    }

    // Degraded path: recover everything recoverable, name the rest.
    let mut slots: Vec<Option<IndexedCell>> = (0..plan.len()).map(|_| None).collect();
    let mut result = CampaignResult {
        cells: Vec::new(),
        baseline_runs: 0,
        baseline_hits: 0,
        trace_generated: 0,
        trace_memo_hits: 0,
        trace_disk_hits: 0,
        resumed_cells: 0,
        timing: CampaignTiming::default(),
    };
    let mut reports = Vec::new();
    let mut quarantined = Vec::new();
    for w in &workers {
        let mut recovered = 0usize;
        match &w.phase {
            Phase::Done(out) => {
                result.baseline_runs += out.baseline_runs;
                result.baseline_hits += out.baseline_hits;
                result.trace_generated += out.trace_generated;
                result.trace_memo_hits += out.trace_memo_hits;
                result.trace_disk_hits += out.trace_disk_hits;
                result.resumed_cells += out.resumed_cells;
                result.timing.absorb(&out.timing);
                for cell in &out.cells {
                    if let Some(slot) = slots.get_mut(cell.index) {
                        recovered += usize::from(slot.is_none());
                        *slot = Some(cell.clone());
                    }
                }
            }
            Phase::Failed => {
                // Journal salvage: the dead worker's durable completions
                // count as resumed — they were restored from its
                // checkpoint, not executed by anyone still alive.
                let salvaged = Journal::peek(&w.paths.journal, plan).unwrap_or_default();
                for cell in salvaged {
                    if w.assigned.contains(&cell.index) {
                        if let Some(slot) = slots.get_mut(cell.index) {
                            recovered += usize::from(slot.is_none());
                            *slot = Some(cell);
                        }
                    }
                }
                result.resumed_cells += recovered;
            }
            Phase::Idle | Phase::Running(_) | Phase::Backoff(_) => {
                unreachable!("supervision loop only exits when every worker settled")
            }
        }
        for &i in &w.assigned {
            if slots[i].is_some() {
                continue;
            }
            let key = plan.cells[i].key.hex();
            let error = w
                .quarantine_errors
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, e)| e.clone())
                .or_else(|| w.last_error.clone());
            quarantined.push(QuarantinedCell {
                index: i,
                key,
                cell: plan.cells[i].cell.describe(),
                worker: w.index,
                error,
            });
        }
        let completed = matches!(w.phase, Phase::Done(_));
        let mut report = report_of(w, completed);
        report.cells = recovered;
        reports.push(report);
    }
    quarantined.sort_by_key(|q| q.index);
    result.cells = slots
        .into_iter()
        .filter_map(|s| s.map(|c| c.result))
        .collect();
    let manifest = CampaignManifest {
        fingerprint: plan.fingerprint().to_string(),
        complete: false,
        total_cells: plan.len(),
        completed_cells: result.cells.len(),
        total_restarts,
        imbalance_ratio,
        quarantined,
        workers: reports,
    };
    write_manifest(&manifest_path, &manifest)?;
    Ok(OrchestrateOutcome {
        result,
        manifest,
        manifest_path,
    })
}

fn report_of(w: &Worker, completed: bool) -> WorkerReport {
    WorkerReport {
        worker: w.index,
        shard: w.shard.display(),
        restarts: w.restarts,
        completed,
        cells: match &w.phase {
            Phase::Done(out) => out.cells.len(),
            _ => 0,
        },
        busy_ns: match &w.phase {
            Phase::Done(out) => out.timing.cells_ns,
            _ => 0,
        },
        last_error: w.last_error.clone(),
    }
}

fn write_manifest(path: &Path, manifest: &CampaignManifest) -> Result<(), String> {
    let text = serde_json::to_string_pretty(manifest)
        .map_err(|e| format!("manifest does not serialize: {e}"))?;
    std::fs::write(path, text + "\n")
        .file_ctx("write manifest", path)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_ms(250, 5_000, 1), 250);
        assert_eq!(backoff_ms(250, 5_000, 2), 500);
        assert_eq!(backoff_ms(250, 5_000, 3), 1_000);
        assert_eq!(backoff_ms(250, 5_000, 5), 4_000);
        assert_eq!(backoff_ms(250, 5_000, 6), 5_000, "cap");
        assert_eq!(backoff_ms(250, 5_000, 60), 5_000, "no shift overflow");
        assert_eq!(
            backoff_ms(10_000, 5_000, 1),
            10_000,
            "cap below base: base wins"
        );
    }

    #[test]
    fn culprit_extraction_takes_the_last_key() {
        let log = "freezing 2 artifacts\n\
                   [pool] worker panicked running Unison @ 512MB [key=00aabbccddeeff11] (item 3) \
                   after 1.2s: injected fault: poison cell key=ffeeddccbbaa9988\n";
        assert_eq!(
            extract_last_key(log).as_deref(),
            Some("ffeeddccbbaa9988"),
            "a panic payload carrying its own key outranks the batch label"
        );
        assert_eq!(extract_last_key("key=123 too short"), None);
        assert_eq!(extract_last_key("no tags at all"), None);
        assert_eq!(
            extract_last_key("[fault] crash-after-cells firing after cell key=0123456789ABCDEF"),
            Some("0123456789abcdef".to_string())
        );
    }
}
