//! Declarative experiment grids.

use unison_sim::Design;
use unison_trace::WorkloadSpec;

/// One experiment cell: a single `(design, cache size, workload, seed)`
/// simulation.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cache design under test.
    pub design: Design,
    /// Nominal cache capacity in bytes (0 for NoCache).
    pub cache_bytes: u64,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Trace seed for this cell.
    pub seed: u64,
}

/// The declarative cross product `designs × sizes × workloads × seeds`,
/// with optional per-workload size overrides (the paper sweeps CloudSuite
/// at 128 MB–1 GB but TPC-H at 1–8 GB).
#[derive(Debug, Clone, Default)]
pub struct ExperimentGrid {
    designs: Vec<Design>,
    workloads: Vec<WorkloadSpec>,
    sizes: Vec<u64>,
    size_overrides: Vec<(String, Vec<u64>)>,
    seeds: Vec<u64>,
}

impl ExperimentGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the designs axis.
    pub fn designs(mut self, designs: impl IntoIterator<Item = Design>) -> Self {
        self.designs = designs.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Appends one workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Sets the shared cache-size axis.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Overrides the size axis for one workload (by display name).
    pub fn sizes_for(mut self, workload: &str, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.size_overrides
            .push((workload.to_string(), sizes.into_iter().collect()));
        self
    }

    /// Sets explicit trace seeds (default: the campaign config's seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The size axis effective for `workload`.
    pub fn sizes_of(&self, workload: &str) -> &[u64] {
        self.size_overrides
            .iter()
            .find(|(name, _)| name == workload)
            .map(|(_, sizes)| sizes.as_slice())
            .unwrap_or(&self.sizes)
    }

    /// The designs axis.
    pub fn design_axis(&self) -> &[Design] {
        &self.designs
    }

    /// The workloads axis.
    pub fn workload_axis(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Enumerates all cells in deterministic grid order:
    /// workload (outermost) → seed → design → size. Grouping by workload
    /// keeps cells that share a baseline adjacent in the work queue.
    pub fn cells(&self, default_seed: u64) -> Vec<Cell> {
        let seeds: &[u64] = if self.seeds.is_empty() {
            std::slice::from_ref(&default_seed)
        } else {
            &self.seeds
        };
        let mut cells = Vec::new();
        for workload in &self.workloads {
            let sizes = self.sizes_of(workload.name);
            for &seed in seeds {
                for &design in &self.designs {
                    for &cache_bytes in sizes {
                        cells.push(Cell {
                            design,
                            cache_bytes,
                            workload: workload.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Total number of cells the grid enumerates (without materializing
    /// them): `designs × seeds × Σ_workload sizes`. Independent of the
    /// campaign's default seed — an empty seed axis still means one seed.
    pub fn len(&self) -> usize {
        let seeds = if self.seeds.is_empty() {
            1
        } else {
            self.seeds.len()
        };
        let size_points: usize = self
            .workloads
            .iter()
            .map(|w| self.sizes_of(w.name).len())
            .sum();
        self.designs.len() * seeds * size_points
    }

    /// True when the grid enumerates no cells (any required axis —
    /// designs, workloads, or every effective size list — is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unique `(workload, seed)` pairs — one baseline each.
    pub fn baseline_keys(&self, default_seed: u64) -> Vec<(WorkloadSpec, u64)> {
        let seeds: &[u64] = if self.seeds.is_empty() {
            std::slice::from_ref(&default_seed)
        } else {
            &self.seeds
        };
        let mut keys = Vec::new();
        for workload in &self.workloads {
            for &seed in seeds {
                if !keys
                    .iter()
                    .any(|(w, s): &(WorkloadSpec, u64)| w == workload && *s == seed)
                {
                    keys.push((workload.clone(), seed));
                }
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    #[test]
    fn cross_product_order_is_deterministic() {
        let grid = ExperimentGrid::new()
            .designs([Design::Alloy, Design::Unison])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([1 << 20, 2 << 20]);
        let cells = grid.cells(42);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload.name, "Web Search");
        assert_eq!(cells[0].design, Design::Alloy);
        assert_eq!(cells[0].cache_bytes, 1 << 20);
        assert_eq!(cells[1].cache_bytes, 2 << 20);
        assert_eq!(cells[2].design, Design::Unison);
        assert_eq!(cells[4].workload.name, "TPC-H");
        assert!(cells.iter().all(|c| c.seed == 42));
    }

    #[test]
    fn per_workload_size_override() {
        let grid = ExperimentGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([128 << 20])
            .sizes_for("TPC-H", [1 << 30, 8u64 << 30]);
        assert_eq!(grid.sizes_of("Web Search"), &[128 << 20]);
        assert_eq!(grid.sizes_of("TPC-H"), &[1 << 30, 8 << 30]);
        assert_eq!(grid.cells(1).len(), 3);
    }

    #[test]
    fn len_and_is_empty_agree_with_cells() {
        let no_sizes = ExperimentGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()]);
        assert!(no_sizes.is_empty());
        assert_eq!(no_sizes.len(), no_sizes.cells(42).len());

        let mixed = ExperimentGrid::new()
            .designs([Design::Unison, Design::Alloy])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([1 << 20])
            .sizes_for("TPC-H", [1u64 << 30, 2 << 30])
            .seeds([1, 2, 3]);
        assert!(!mixed.is_empty());
        assert_eq!(mixed.len(), mixed.cells(42).len());
        assert_eq!(mixed.len(), 2 * 3 * (1 + 2));
    }

    #[test]
    fn explicit_seeds_multiply_cells() {
        let grid = ExperimentGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([1 << 20])
            .seeds([1, 2, 3]);
        assert_eq!(grid.cells(42).len(), 3);
        assert_eq!(grid.baseline_keys(42).len(), 3);
    }

    #[test]
    fn baseline_keys_are_unique_per_workload_seed() {
        let grid = ExperimentGrid::new()
            .designs([
                Design::Alloy,
                Design::Footprint,
                Design::Unison,
                Design::Ideal,
            ])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([1 << 20, 2 << 20, 4 << 20, 8 << 20]);
        assert_eq!(grid.cells(42).len(), 32);
        assert_eq!(grid.baseline_keys(42).len(), 2);
    }
}
