//! Declarative experiment grids.

use unison_sim::{Design, Scenario, SystemSpec};
use unison_trace::WorkloadSpec;

/// One experiment cell: a single
/// `(design, scenario, cache size, workload, seed)` simulation.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cache design under test.
    pub design: Design,
    /// The simulated machine (core count/model, geometry overrides, DRAM
    /// presets).
    pub scenario: Scenario,
    /// Nominal cache capacity in bytes (0 for NoCache).
    pub cache_bytes: u64,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Trace seed for this cell.
    pub seed: u64,
}

impl Cell {
    /// One-line identity — design @ size on workload [scenario] (seed) —
    /// shared by progress lines, worker-panic labels, and journal
    /// diagnostics so a cell is named the same way everywhere.
    pub fn describe(&self) -> String {
        format!(
            "{} @ {}MB on {} [{}] (seed {})",
            self.design.name(),
            self.cache_bytes >> 20,
            self.workload.name,
            self.scenario.name,
            self.seed
        )
    }
}

/// The declarative cross product
/// `designs × scenarios × sizes × workloads × seeds`, with optional
/// per-workload size overrides (the paper sweeps CloudSuite at
/// 128 MB–1 GB but TPC-H at 1–8 GB).
///
/// The scenario axis defaults to the single [`Scenario::default`] (the
/// paper's Table III machine), so grids that never mention scenarios
/// behave exactly as they did before the axis existed.
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    designs: Vec<Design>,
    scenarios: Vec<Scenario>,
    workloads: Vec<WorkloadSpec>,
    sizes: Vec<u64>,
    size_overrides: Vec<(String, Vec<u64>)>,
    seeds: Vec<u64>,
}

/// The grid type's pre-scenario name; the scenario axis subsumed it.
pub type ExperimentGrid = ScenarioGrid;

impl ScenarioGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the designs axis.
    pub fn designs(mut self, designs: impl IntoIterator<Item = Design>) -> Self {
        self.designs = designs.into_iter().collect();
        self
    }

    /// Sets the scenario axis (default: the single default scenario).
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.scenarios = scenarios.into_iter().collect();
        self
    }

    /// Appends one scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Sets the workloads axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Appends one workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Sets the shared cache-size axis.
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Overrides the size axis for one workload (by display name).
    pub fn sizes_for(mut self, workload: &str, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.size_overrides
            .push((workload.to_string(), sizes.into_iter().collect()));
        self
    }

    /// Sets explicit trace seeds (default: the campaign config's seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The size axis effective for `workload`.
    pub fn sizes_of(&self, workload: &str) -> &[u64] {
        self.size_overrides
            .iter()
            .find(|(name, _)| name == workload)
            .map(|(_, sizes)| sizes.as_slice())
            .unwrap_or(&self.sizes)
    }

    /// The designs axis.
    pub fn design_axis(&self) -> &[Design] {
        &self.designs
    }

    /// The workloads axis.
    pub fn workload_axis(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// The explicit scenario axis (empty means "the default scenario").
    pub fn scenario_axis(&self) -> &[Scenario] {
        &self.scenarios
    }

    fn effective_scenarios(&self) -> Vec<Scenario> {
        if self.scenarios.is_empty() {
            vec![Scenario::default()]
        } else {
            self.scenarios.clone()
        }
    }

    fn effective_seeds(&self, default_seed: u64) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![default_seed]
        } else {
            self.seeds.clone()
        }
    }

    /// Enumerates all cells in deterministic grid order: workload
    /// (outermost) → scenario → seed → design → size. Grouping by
    /// `(workload, scenario, seed)` keeps cells that share a baseline
    /// (and a frozen trace) adjacent in the work queue. With the default
    /// single-scenario axis this is exactly the pre-scenario order.
    pub fn cells(&self, default_seed: u64) -> Vec<Cell> {
        let scenarios = self.effective_scenarios();
        let seeds = self.effective_seeds(default_seed);
        let mut cells = Vec::new();
        for workload in &self.workloads {
            let sizes = self.sizes_of(workload.name);
            for scenario in &scenarios {
                for &seed in &seeds {
                    for &design in &self.designs {
                        for &cache_bytes in sizes {
                            cells.push(Cell {
                                design,
                                scenario: scenario.clone(),
                                cache_bytes,
                                workload: workload.clone(),
                                seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total number of cells the grid enumerates (without materializing
    /// them): `designs × scenarios × seeds × Σ_workload sizes`.
    /// Independent of the campaign's default seed — an empty seed (or
    /// scenario) axis still means one.
    pub fn len(&self) -> usize {
        let seeds = if self.seeds.is_empty() {
            1
        } else {
            self.seeds.len()
        };
        let scenarios = if self.scenarios.is_empty() {
            1
        } else {
            self.scenarios.len()
        };
        let size_points: usize = self
            .workloads
            .iter()
            .map(|w| self.sizes_of(w.name).len())
            .sum();
        self.designs.len() * scenarios * seeds * size_points
    }

    /// True when the grid enumerates no cells (any required axis —
    /// designs, workloads, or every effective size list — is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unique `(workload, system spec, seed)` triples — one NoCache
    /// baseline each. Two scenarios whose *systems* are equal (labels
    /// aside) share a baseline; scenarios differing in any machine knob
    /// do not.
    pub fn baseline_keys(&self, default_seed: u64) -> Vec<(WorkloadSpec, SystemSpec, u64)> {
        let scenarios = self.effective_scenarios();
        let seeds = self.effective_seeds(default_seed);
        let mut keys: Vec<(WorkloadSpec, SystemSpec, u64)> = Vec::new();
        for workload in &self.workloads {
            for scenario in &scenarios {
                for &seed in &seeds {
                    if !keys
                        .iter()
                        .any(|(w, sys, s)| w == workload && *sys == scenario.system && *s == seed)
                    {
                        keys.push((workload.clone(), scenario.system, seed));
                    }
                }
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_sim::SystemSpec;
    use unison_trace::workloads;

    #[test]
    fn cross_product_order_is_deterministic() {
        let grid = ScenarioGrid::new()
            .designs([Design::Alloy, Design::Unison])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([1 << 20, 2 << 20]);
        let cells = grid.cells(42);
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload.name, "Web Search");
        assert_eq!(cells[0].design, Design::Alloy);
        assert_eq!(cells[0].cache_bytes, 1 << 20);
        assert_eq!(cells[1].cache_bytes, 2 << 20);
        assert_eq!(cells[2].design, Design::Unison);
        assert_eq!(cells[4].workload.name, "TPC-H");
        assert!(cells.iter().all(|c| c.seed == 42));
        assert!(cells.iter().all(|c| c.scenario.name == "default"));
    }

    #[test]
    fn per_workload_size_override() {
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([128 << 20])
            .sizes_for("TPC-H", [1 << 30, 8u64 << 30]);
        assert_eq!(grid.sizes_of("Web Search"), &[128 << 20]);
        assert_eq!(grid.sizes_of("TPC-H"), &[1 << 30, 8 << 30]);
        assert_eq!(grid.cells(1).len(), 3);
    }

    #[test]
    fn len_and_is_empty_agree_with_cells() {
        let no_sizes = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()]);
        assert!(no_sizes.is_empty());
        assert_eq!(no_sizes.len(), no_sizes.cells(42).len());

        let mixed = ScenarioGrid::new()
            .designs([Design::Unison, Design::Alloy])
            .workloads([workloads::web_search(), workloads::tpch()])
            .sizes([1 << 20])
            .sizes_for("TPC-H", [1u64 << 30, 2 << 30])
            .seeds([1, 2, 3])
            .scenarios([
                Scenario::default(),
                Scenario::from_spec(SystemSpec {
                    cores: Some(4),
                    ..SystemSpec::default()
                }),
            ]);
        assert!(!mixed.is_empty());
        assert_eq!(mixed.len(), mixed.cells(42).len());
        assert_eq!(mixed.len(), 2 * 2 * 3 * (1 + 2));
    }

    #[test]
    fn explicit_seeds_multiply_cells() {
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([1 << 20])
            .seeds([1, 2, 3]);
        assert_eq!(grid.cells(42).len(), 3);
        assert_eq!(grid.baseline_keys(42).len(), 3);
    }

    #[test]
    fn baseline_keys_are_unique_per_workload_scenario_seed() {
        let grid = ScenarioGrid::new()
            .designs([
                Design::Alloy,
                Design::Footprint,
                Design::Unison,
                Design::Ideal,
            ])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([1 << 20, 2 << 20, 4 << 20, 8 << 20]);
        assert_eq!(grid.cells(42).len(), 32);
        assert_eq!(grid.baseline_keys(42).len(), 2);
    }

    #[test]
    fn scenarios_multiply_cells_and_baselines() {
        let quad = Scenario::from_spec(SystemSpec {
            cores: Some(4),
            ..SystemSpec::default()
        });
        let grid = ScenarioGrid::new()
            .designs([Design::Unison])
            .workloads([workloads::web_search()])
            .sizes([1 << 20])
            .scenarios([Scenario::default(), quad.clone()]);
        let cells = grid.cells(42);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario.name, "default");
        assert_eq!(cells[1].scenario.name, "c4");
        assert_eq!(
            grid.baseline_keys(42).len(),
            2,
            "distinct machines need distinct baselines"
        );
    }

    #[test]
    fn equal_systems_with_different_names_share_a_baseline() {
        let a = Scenario {
            name: "alpha".into(),
            system: SystemSpec::default(),
        };
        let b = Scenario {
            name: "beta".into(),
            system: SystemSpec::default(),
        };
        let grid = ScenarioGrid::new()
            .designs([Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([1 << 20])
            .scenarios([a, b]);
        assert_eq!(grid.cells(42).len(), 2);
        assert_eq!(
            grid.baseline_keys(42).len(),
            1,
            "baselines key on the machine, not the label"
        );
    }
}
