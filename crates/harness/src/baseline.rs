//! Memoized baseline runs.
//!
//! Speedups are measured against the NoCache baseline, which depends only
//! on `(workload, seed, SimConfig)` — never on the design or cache size
//! under test. A 4-design × 4-size sweep therefore needs **one** baseline
//! simulation per workload, not sixteen; this store provides exactly-once
//! computation with cheap cached reads, safe to share across the worker
//! pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use unison_sim::{run_baseline, RunResult, SimConfig};
use unison_trace::WorkloadSpec;

/// Memo key: (serialized workload spec, trace seed).
type BaselineKey = (String, u64);

/// Exactly-once cache of NoCache baseline runs keyed by the **full
/// serialized workload spec** plus seed — two specs that share a display
/// name but differ in parameters get distinct baselines.
pub struct BaselineStore {
    cfg: SimConfig,
    cells: Mutex<HashMap<BaselineKey, Arc<OnceLock<RunResult>>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

impl BaselineStore {
    /// Creates an empty store; baselines run under `cfg` (with the seed
    /// overridden per request).
    pub fn new(cfg: SimConfig) -> Self {
        BaselineStore {
            cfg,
            cells: Mutex::new(HashMap::new()),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// Returns the baseline run for `(spec, seed)`, simulating it on
    /// first request and serving the memoized result afterwards.
    ///
    /// Concurrent first requests block on the in-flight simulation
    /// (`OnceLock` semantics) — the simulation still runs exactly once.
    pub fn get(&self, spec: &WorkloadSpec, seed: u64) -> RunResult {
        // Key on the *full* spec encoding, not just the display name: two
        // specs sharing a name but differing in parameters (e.g. a spec
        // and its `scaled()` variant) must not share a baseline.
        let key = serde_json::to_string(spec).expect("workload spec serializes");
        let cell = {
            let mut map = self.cells.lock().expect("baseline map poisoned");
            Arc::clone(
                map.entry((key, seed))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_here = false;
        let result = cell.get_or_init(|| {
            ran_here = true;
            self.computed.fetch_add(1, Ordering::Relaxed);
            let mut cfg = self.cfg;
            cfg.seed = seed;
            run_baseline(spec, &cfg)
        });
        if !ran_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of baseline simulations actually executed.
    pub fn computed_runs(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache without simulating.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    #[test]
    fn memoizes_and_returns_identical_results() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 42);
        let b = store.get(&spec, 42);
        assert_eq!(store.computed_runs(), 1, "second get must not re-simulate");
        assert_eq!(store.cache_hits(), 1);
        // Identical cached result, bit for bit.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn same_name_different_params_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let shrunk = spec.clone().scaled(4); // same display name, new params
        store.get(&spec, 42);
        store.get(&shrunk, 42);
        assert_eq!(
            store.computed_runs(),
            2,
            "differing specs must not share a baseline just because names match"
        );
    }

    #[test]
    fn distinct_seeds_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 1);
        let b = store.get(&spec, 2);
        assert_eq!(store.computed_runs(), 2);
        assert_ne!(a.elapsed_ps, b.elapsed_ps);
    }
}
