//! Memoized baseline runs.
//!
//! Speedups are measured against the NoCache baseline, which depends only
//! on `(workload, seed, SimConfig)` — never on the design or cache size
//! under test. A 4-design × 4-size sweep therefore needs **one** baseline
//! simulation per workload, not sixteen; this store provides exactly-once
//! computation with cheap cached reads, safe to share across the worker
//! pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use unison_sim::{
    run_baseline, run_experiment_with_source, Design, RunResult, SimConfig, TraceSource,
};
use unison_trace::WorkloadSpec;

use crate::trace_store::TraceStore;

/// Memo key: (serialized workload spec, trace seed).
type BaselineKey = (String, u64);

/// Exactly-once cache of NoCache baseline runs keyed by the **full
/// serialized workload spec** plus seed — two specs that share a display
/// name but differ in parameters get distinct baselines.
pub struct BaselineStore {
    cfg: SimConfig,
    traces: Option<Arc<TraceStore>>,
    cells: Mutex<HashMap<BaselineKey, Arc<OnceLock<RunResult>>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

impl BaselineStore {
    /// Creates an empty store; baselines run under `cfg` (with the seed
    /// overridden per request).
    pub fn new(cfg: SimConfig) -> Self {
        BaselineStore {
            cfg,
            traces: None,
            cells: Mutex::new(HashMap::new()),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// Routes baseline simulations through `traces`: the NoCache run
    /// replays the workload's shared frozen artifact instead of
    /// regenerating the stream (bit-identical either way).
    pub fn with_traces(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = Some(traces);
        self
    }

    /// Returns the baseline run for `(spec, seed)`, simulating it on
    /// first request and serving the memoized result afterwards.
    ///
    /// Concurrent first requests block on the in-flight simulation
    /// (`OnceLock` semantics) — the simulation still runs exactly once.
    pub fn get(&self, spec: &WorkloadSpec, seed: u64) -> RunResult {
        // Key on the *full* spec encoding, not just the display name: two
        // specs sharing a name but differing in parameters (e.g. a spec
        // and its `scaled()` variant) must not share a baseline.
        let key = serde_json::to_string(spec).expect("workload spec serializes");
        let cell = {
            let mut map = self.cells.lock().expect("baseline map poisoned");
            Arc::clone(
                map.entry((key, seed))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_here = false;
        let result = cell.get_or_init(|| {
            ran_here = true;
            self.computed.fetch_add(1, Ordering::Relaxed);
            let mut cfg = self.cfg;
            cfg.seed = seed;
            match &self.traces {
                Some(traces) => {
                    let plan = cfg.trace_plan(spec, 0);
                    let artifact = traces.get(&plan.scaled_spec, seed, plan.frozen_len);
                    run_experiment_with_source(
                        Design::NoCache,
                        0,
                        spec,
                        &cfg,
                        TraceSource::Replay(&artifact),
                    )
                }
                None => run_baseline(spec, &cfg),
            }
        });
        if !ran_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of baseline simulations actually executed.
    pub fn computed_runs(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache without simulating.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_trace::workloads;

    #[test]
    fn memoizes_and_returns_identical_results() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 42);
        let b = store.get(&spec, 42);
        assert_eq!(store.computed_runs(), 1, "second get must not re-simulate");
        assert_eq!(store.cache_hits(), 1);
        // Identical cached result, bit for bit.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn same_name_different_params_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let shrunk = spec.clone().scaled(4); // same display name, new params
        store.get(&spec, 42);
        store.get(&shrunk, 42);
        assert_eq!(
            store.computed_runs(),
            2,
            "differing specs must not share a baseline just because names match"
        );
    }

    #[test]
    fn distinct_seeds_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 1);
        let b = store.get(&spec, 2);
        assert_eq!(store.computed_runs(), 2);
        assert_ne!(a.elapsed_ps, b.elapsed_ps);
    }

    #[test]
    fn replayed_baseline_equals_live_baseline() {
        let cfg = SimConfig::quick_test();
        let spec = workloads::web_search();
        let live = BaselineStore::new(cfg).get(&spec, 42);

        let traces = Arc::new(crate::TraceStore::new());
        let store = BaselineStore::new(cfg).with_traces(Arc::clone(&traces));
        let replayed = store.get(&spec, 42);
        assert_eq!(traces.generated_traces(), 1, "baseline froze the trace");
        assert_eq!(
            serde_json::to_string(&live).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "replayed baseline must be bit-identical to live generation"
        );
    }
}
