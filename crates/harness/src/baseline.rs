//! Memoized baseline runs.
//!
//! Speedups are measured against the NoCache baseline, which depends only
//! on `(workload, system spec, seed, SimConfig)` — never on the design or
//! cache size under test. A 4-design × 4-size sweep therefore needs
//! **one** baseline simulation per `(workload, scenario)`, not sixteen;
//! this store provides exactly-once computation with cheap cached reads,
//! safe to share across the worker pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use unison_sim::{
    run_baseline, run_experiment_with_source, Design, RunResult, SimConfig, SystemSpec, TraceSource,
};
use unison_trace::WorkloadSpec;

use crate::trace_store::TraceStore;

/// Memo key: (serialized workload spec, serialized system spec, seed).
type BaselineKey = (String, String, u64);

/// The store's memo key for `(spec, system, seed)` — also how the task
/// planner dedupes baseline tasks, so "one baseline task per key" in the
/// plan is exactly "one simulation per key" in the store.
///
/// Keyed on the *full* spec encodings, not display names: two specs
/// sharing a name but differing in parameters (e.g. a workload and its
/// `scaled()` variant, or two scenarios differing only in core count or
/// DRAM preset) must not share a baseline. The core-count override is
/// normalized into the workload half of the key (the same way
/// trace-artifact keys see it), so `cores: Some(16)` and `cores: None` —
/// the identical machine for a 16-core workload — share one baseline
/// instead of simulating it twice.
pub(crate) fn baseline_key(spec: &WorkloadSpec, system: &SystemSpec, seed: u64) -> BaselineKey {
    let wkey =
        serde_json::to_string(&system.effective_workload(spec)).expect("workload spec serializes");
    let skey = {
        let mut sans_cores = *system;
        sans_cores.cores = None;
        serde_json::to_string(&sans_cores).expect("system spec serializes")
    };
    (wkey, skey, seed)
}

/// Exactly-once cache of NoCache baseline runs keyed by the **full
/// serialized workload spec**, the **full serialized system spec**, and
/// the seed — two requests that share display names but differ in any
/// parameter (a scaled workload variant, a different core count, another
/// DRAM preset) get distinct baselines.
pub struct BaselineStore {
    cfg: SimConfig,
    traces: Option<Arc<TraceStore>>,
    cells: Mutex<HashMap<BaselineKey, Arc<OnceLock<RunResult>>>>,
    computed: AtomicUsize,
    hits: AtomicUsize,
}

impl BaselineStore {
    /// Creates an empty store; baselines run under `cfg` (with the seed
    /// and system spec overridden per request).
    pub fn new(cfg: SimConfig) -> Self {
        BaselineStore {
            cfg,
            traces: None,
            cells: Mutex::new(HashMap::new()),
            computed: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// Routes baseline simulations through `traces`: the NoCache run
    /// replays the workload's shared frozen artifact instead of
    /// regenerating the stream (bit-identical either way).
    pub fn with_traces(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = Some(traces);
        self
    }

    /// Returns the baseline run for `(spec, seed)` on the store config's
    /// own system spec. Campaigns sweeping a scenario axis must use
    /// [`Self::get_for_system`].
    pub fn get(&self, spec: &WorkloadSpec, seed: u64) -> RunResult {
        self.get_for_system(spec, &self.cfg.system, seed)
    }

    /// Returns the baseline run for `(spec, system, seed)`, simulating it
    /// on first request and serving the memoized result afterwards.
    ///
    /// Concurrent first requests block on the in-flight simulation
    /// (`OnceLock` semantics) — the simulation still runs exactly once.
    pub fn get_for_system(&self, spec: &WorkloadSpec, system: &SystemSpec, seed: u64) -> RunResult {
        let cell = {
            let mut map = self.cells.lock().expect("baseline map poisoned");
            Arc::clone(
                map.entry(baseline_key(spec, system, seed))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut ran_here = false;
        let result = cell.get_or_init(|| {
            ran_here = true;
            self.computed.fetch_add(1, Ordering::Relaxed);
            let mut cfg = self.cfg;
            cfg.seed = seed;
            cfg.system = *system;
            match &self.traces {
                Some(traces) => {
                    let plan = cfg.trace_plan(spec, 0);
                    let artifact = traces.get(&plan.scaled_spec, seed, plan.frozen_len);
                    run_experiment_with_source(
                        Design::NoCache,
                        0,
                        spec,
                        &cfg,
                        TraceSource::Replay(&artifact),
                    )
                }
                None => run_baseline(spec, &cfg),
            }
        });
        if !ran_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Number of baseline simulations actually executed.
    pub fn computed_runs(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of requests served from the cache without simulating.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_dram::DramPreset;
    use unison_trace::workloads;

    #[test]
    fn memoizes_and_returns_identical_results() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 42);
        let b = store.get(&spec, 42);
        assert_eq!(store.computed_runs(), 1, "second get must not re-simulate");
        assert_eq!(store.cache_hits(), 1);
        // Identical cached result, bit for bit.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn same_name_different_params_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let shrunk = spec.clone().scaled(4); // same display name, new params
        store.get(&spec, 42);
        store.get(&shrunk, 42);
        assert_eq!(
            store.computed_runs(),
            2,
            "differing specs must not share a baseline just because names match"
        );
    }

    #[test]
    fn distinct_seeds_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let a = store.get(&spec, 1);
        let b = store.get(&spec, 2);
        assert_eq!(store.computed_runs(), 2);
        assert_ne!(a.elapsed_ps, b.elapsed_ps);
    }

    #[test]
    fn distinct_core_counts_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let four = SystemSpec {
            cores: Some(4),
            ..SystemSpec::default()
        };
        let a = store.get_for_system(&spec, &SystemSpec::default(), 42);
        let b = store.get_for_system(&spec, &four, 42);
        assert_eq!(
            store.computed_runs(),
            2,
            "a 4-core baseline must not be reused for 16 cores"
        );
        assert_ne!(a.uipc, b.uipc, "core count visibly changes the baseline");
    }

    #[test]
    fn explicit_default_core_count_shares_the_default_baseline() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search(); // 16-core workload
        let explicit_16 = SystemSpec {
            cores: Some(16),
            ..SystemSpec::default()
        };
        store.get_for_system(&spec, &SystemSpec::default(), 42);
        store.get_for_system(&spec, &explicit_16, 42);
        assert_eq!(
            store.computed_runs(),
            1,
            "cores: Some(16) is the same machine as cores: None for a \
             16-core workload — one baseline, not two"
        );
        assert_eq!(store.cache_hits(), 1);
    }

    #[test]
    fn distinct_dram_presets_are_distinct_cells() {
        let store = BaselineStore::new(SimConfig::quick_test());
        let spec = workloads::web_search();
        let fast_mem = SystemSpec {
            offchip: DramPreset::Ddr4_2400,
            ..SystemSpec::default()
        };
        let a = store.get_for_system(&spec, &SystemSpec::default(), 42);
        let b = store.get_for_system(&spec, &fast_mem, 42);
        assert_eq!(
            store.computed_runs(),
            2,
            "a DDR4 baseline must not be reused for DDR3"
        );
        assert_ne!(a.uipc, b.uipc, "off-chip preset changes the baseline");
    }

    #[test]
    fn replayed_baseline_equals_live_baseline() {
        let cfg = SimConfig::quick_test();
        let spec = workloads::web_search();
        let live = BaselineStore::new(cfg).get(&spec, 42);

        let traces = Arc::new(crate::TraceStore::new());
        let store = BaselineStore::new(cfg).with_traces(Arc::clone(&traces));
        let replayed = store.get(&spec, 42);
        assert_eq!(traces.generated_traces(), 1, "baseline froze the trace");
        assert_eq!(
            serde_json::to_string(&live).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "replayed baseline must be bit-identical to live generation"
        );
    }
}
