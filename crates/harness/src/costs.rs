//! Learned per-cell cost model driving adaptive scheduling.
//!
//! Cell wall time varies ~2.7× by design alone (BENCH_v8: Ideal ≈ 1.06 s
//! mean vs Unison ≈ 2.86 s), so any scheduler that treats cells as
//! interchangeable — the in-process pool's final wave, the orchestrator's
//! blind `key % N` partition — is bound by the unluckiest wave or shard
//! rather than total-work/N. [`CostModel`] closes that gap:
//!
//! * **Learning.** Every completed cell carries `wall_ns`
//!   (JOURNAL_VERSION 2), so prior journals and shard outputs are a free
//!   training set. Observations are keyed by
//!   `(design, workload, scenario, cache_bytes)` — the axes that actually
//!   move cost — and aggregated as running means, deliberately ignoring
//!   the seed axis so a model learned at one seed transfers to the next.
//! * **Structural prior.** With no history, cost is estimated as
//!   `accesses × per-design weight`, with weights following the measured
//!   BENCH_v8 ratios. The prior only has to get the *ordering* roughly
//!   right for LPT to help; learned observations replace it as soon as
//!   one campaign has run.
//! * **Persistence.** [`CostModel::save`]/[`CostModel::load`] round-trip
//!   a `costs.json` (`sweep --costs FILE`); the orchestrator
//!   auto-discovers and refreshes one in its scratch dir so every run
//!   partitions on what the previous run measured.
//!
//! Consumers: the default [`Executor`](crate::Executor) sorts work
//! longest-first (LPT) so the most expensive cell starts first and the
//! tail of the pool drains through cheap cells; the orchestrator's
//! `--partition balanced` mode bin-packs cells onto workers with
//! [`partition_balanced`]. Both are pure functions of (plan, model), so
//! parent and shard workers reading the same `costs.json` compute
//! identical assignments in separate processes. Scheduling order is
//! observability-neutral: results are re-sorted to plan order and
//! byte-identity of canonical output is pinned by tests.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::campaign::CellResult;
use crate::grid::Cell;
use crate::journal::{IndexedCell, ShardOutput};
use crate::scheduler::TaskPlan;

/// Version stamp on serialized `costs.json` files. Bumped when the
/// observation schema changes incompatibly.
pub const COSTS_VERSION: u32 = 1;

/// Aggregated wall-time observations for one cost key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostObservation {
    /// Design display name ([`Design::name`](unison_sim::Design::name)).
    pub design: String,
    /// Workload display name.
    pub workload: String,
    /// Scenario display name.
    pub scenario: String,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Running mean of observed cell wall time, in nanoseconds.
    pub mean_ns: u64,
    /// Number of observations folded into `mean_ns`.
    pub samples: u64,
}

impl CostObservation {
    fn key(&self) -> (&str, &str, &str, u64) {
        (
            &self.design,
            &self.workload,
            &self.scenario,
            self.cache_bytes,
        )
    }
}

/// Per-cell cost estimates learned from prior runs, with a structural
/// prior for never-seen cells. See the module docs for the full story.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// File-format marker + version (mirrors the journal's
    /// `unison_journal` header field).
    unison_costs: u32,
    /// Observations, kept sorted by key so serialization is
    /// deterministic regardless of learning order.
    observations: Vec<CostObservation>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// An empty model: every prediction falls back to the structural
    /// prior.
    pub fn new() -> CostModel {
        CostModel {
            unison_costs: COSTS_VERSION,
            observations: Vec::new(),
        }
    }

    /// Number of distinct cost keys with at least one observation.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when no observations have been recorded (prior-only model).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The aggregated observations, sorted by key.
    pub fn observations(&self) -> &[CostObservation] {
        &self.observations
    }

    /// Folds one measured cell wall time into the model. Zero wall
    /// times (canonicalized results, clockless runs) are ignored.
    pub fn record(
        &mut self,
        design: &str,
        workload: &str,
        scenario: &str,
        cache_bytes: u64,
        wall_ns: u64,
    ) {
        if wall_ns == 0 {
            return;
        }
        let key = (design, workload, scenario, cache_bytes);
        match self.observations.binary_search_by(|o| o.key().cmp(&key)) {
            Ok(i) => {
                let o = &mut self.observations[i];
                let total = u128::from(o.mean_ns) * u128::from(o.samples) + u128::from(wall_ns);
                o.samples += 1;
                o.mean_ns = (total / u128::from(o.samples)) as u64;
            }
            Err(i) => self.observations.insert(
                i,
                CostObservation {
                    design: design.to_string(),
                    workload: workload.to_string(),
                    scenario: scenario.to_string(),
                    cache_bytes,
                    mean_ns: wall_ns,
                    samples: 1,
                },
            ),
        }
    }

    /// Folds a completed cell's `wall_ns` into the model.
    pub fn observe(&mut self, result: &CellResult) {
        self.record(
            result.design(),
            result.workload(),
            &result.scenario,
            result.cache_bytes(),
            result.wall_ns,
        );
    }

    /// Learns from a journal file (JSONL: header line + completed
    /// cells). Lines that are not cell entries — the header, a torn
    /// final line — are skipped, so any journal is safe to feed in.
    /// Returns the number of cells learned.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read.
    pub fn learn_journal(&mut self, path: &Path) -> Result<usize, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        let mut learned = 0;
        for line in text.lines() {
            if let Ok(entry) = serde_json::from_str::<IndexedCell>(line) {
                self.observe(&entry.result);
                learned += 1;
            }
        }
        Ok(learned)
    }

    /// Learns from a shard output file (`worker-N.shard.json`).
    /// Returns the number of cells learned.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read or parsed.
    pub fn learn_shard_output(&mut self, path: &Path) -> Result<usize, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read shard output {}: {e}", path.display()))?;
        let out: ShardOutput = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse shard output {}: {e}", path.display()))?;
        for entry in &out.cells {
            self.observe(&entry.result);
        }
        Ok(out.cells.len())
    }

    /// Loads a model previously written by [`CostModel::save`].
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read, parsed, or has a
    /// different [`COSTS_VERSION`].
    pub fn load(path: &Path) -> Result<CostModel, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read cost model {}: {e}", path.display()))?;
        let model: CostModel = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse cost model {}: {e}", path.display()))?;
        if model.unison_costs != COSTS_VERSION {
            return Err(format!(
                "cost model {} has version {} (expected {COSTS_VERSION})",
                path.display(),
                model.unison_costs
            ));
        }
        Ok(model)
    }

    /// Writes the model as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut text = serde_json::to_string_pretty(self).expect("cost model serializes");
        text.push('\n');
        fs::write(path, text)
            .map_err(|e| format!("cannot write cost model {}: {e}", path.display()))
    }

    /// The learned mean for an exact key, if observed.
    pub fn lookup(
        &self,
        design: &str,
        workload: &str,
        scenario: &str,
        cache_bytes: u64,
    ) -> Option<u64> {
        let key = (design, workload, scenario, cache_bytes);
        self.observations
            .binary_search_by(|o| o.key().cmp(&key))
            .ok()
            .map(|i| self.observations[i].mean_ns)
    }

    /// Predicted wall time for `cell` in a campaign simulating
    /// `accesses` records per run: the learned mean when the key has
    /// history, the structural prior otherwise.
    pub fn predict(&self, cell: &Cell, accesses: u64) -> u64 {
        self.lookup(
            &cell.design.name(),
            cell.workload.name,
            &cell.scenario.name,
            cell.cache_bytes,
        )
        .unwrap_or_else(|| prior_ns(&cell.design.name(), accesses))
    }

    /// Predicted cost for every cell of `plan`, indexed by plan index.
    pub fn plan_costs(&self, plan: &TaskPlan, accesses: u64) -> Vec<u64> {
        plan.cells
            .iter()
            .map(|pc| self.predict(&pc.cell, accesses))
            .collect()
    }

    /// Deterministic LPT bin-packing of `plan`'s cells onto `workers`
    /// bins under this model; `bins[w]` is worker `w`'s assignment in
    /// ascending plan order. Pure function of (plan, model, workers):
    /// separate processes loading the same `costs.json` agree.
    pub fn partition(&self, plan: &TaskPlan, accesses: u64, workers: u32) -> Vec<Vec<usize>> {
        partition_balanced(&self.plan_costs(plan, accesses), workers)
    }
}

/// Structural prior: `accesses × per-design weight` (ns). The weights
/// follow the measured BENCH_v8 per-design mean cell times (Ideal
/// 1.06 s : Footprint 2.19 : Alloy 2.38 : Unison 2.86) — only the
/// ordering matters for LPT, so precision is not required.
pub fn prior_ns(design: &str, accesses: u64) -> u64 {
    let weight = match design {
        "Ideal" => 26,
        "Footprint" => 54,
        "Alloy" => 58,
        "NoCache" => 18,
        d if d.starts_with("Unison") => 70,
        _ => 55,
    };
    accesses.saturating_mul(weight)
}

/// Sorts `indices` longest-processing-time-first under `costs`
/// (descending predicted cost, ascending index on ties — deterministic).
pub fn order_lpt(costs: &[u64], indices: &mut [usize]) {
    indices.sort_by_key(|&i| (std::cmp::Reverse(costs.get(i).copied().unwrap_or(0)), i));
}

/// Greedy LPT bin-packing: every index `0..costs.len()` is assigned to
/// the currently least-loaded of `bins` bins, considering items in
/// descending cost order. Ties break on the lowest index / lowest bin,
/// so the result is a deterministic pure function of its inputs. Each
/// bin's indices are returned in ascending order.
pub fn partition_balanced(costs: &[u64], bins: u32) -> Vec<Vec<usize>> {
    let bins = bins.max(1) as usize;
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order_lpt(costs, &mut order);
    let mut loads = vec![0u64; bins];
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); bins];
    for i in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(b, &load)| (load, b))
            .map(|(b, _)| b)
            .expect("at least one bin");
        loads[lightest] = loads[lightest].saturating_add(costs[i]);
        assignment[lightest].push(i);
    }
    for bin in &mut assignment {
        bin.sort_unstable();
    }
    assignment
}

/// Total cost landing in each bin of an `assignment` under `costs`.
pub fn bin_loads(costs: &[u64], assignment: &[Vec<usize>]) -> Vec<u64> {
    assignment
        .iter()
        .map(|bin| {
            bin.iter()
                .map(|&i| costs.get(i).copied().unwrap_or(0))
                .sum()
        })
        .collect()
}

/// Imbalance ratio of per-bin loads: max/mean. 1.0 is perfect balance;
/// empty or all-zero loads also report 1.0 (nothing to balance).
pub fn imbalance_ratio(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let total: u128 = loads.iter().map(|&l| u128::from(l)).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CellKey, Executor, ShardSpec, ShardedExecutor};
    use crate::ScenarioGrid;
    use proptest::prelude::*;
    use unison_sim::{Design, SimConfig};
    use unison_trace::workloads;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("unison-costs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn record_keeps_a_running_mean_per_key() {
        let mut m = CostModel::new();
        m.record("Unison", "web_search", "default", 1 << 27, 100);
        m.record("Unison", "web_search", "default", 1 << 27, 300);
        m.record("Ideal", "web_search", "default", 1 << 27, 50);
        assert_eq!(
            m.lookup("Unison", "web_search", "default", 1 << 27),
            Some(200)
        );
        assert_eq!(
            m.lookup("Ideal", "web_search", "default", 1 << 27),
            Some(50)
        );
        assert_eq!(m.lookup("Alloy", "web_search", "default", 1 << 27), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_wall_times_are_ignored() {
        let mut m = CostModel::new();
        m.record("Unison", "web_search", "default", 1 << 27, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn save_load_round_trips_and_is_order_independent() {
        let dir = scratch("roundtrip");
        let mut a = CostModel::new();
        a.record("Unison", "w", "s", 1, 10);
        a.record("Alloy", "w", "s", 1, 20);
        let mut b = CostModel::new();
        b.record("Alloy", "w", "s", 1, 20);
        b.record("Unison", "w", "s", 1, 10);
        let pa = dir.join("a.json");
        let pb = dir.join("b.json");
        a.save(&pa).unwrap();
        b.save(&pb).unwrap();
        assert_eq!(
            std::fs::read(&pa).unwrap(),
            std::fs::read(&pb).unwrap(),
            "serialization must not depend on learning order"
        );
        let loaded = CostModel::load(&pa).unwrap();
        assert_eq!(loaded.observations(), a.observations());
    }

    #[test]
    fn prior_orders_designs_by_measured_weight() {
        let n = 1_000_000;
        assert!(prior_ns("Unison", n) > prior_ns("Alloy", n));
        assert!(prior_ns("Alloy", n) > prior_ns("Footprint", n));
        assert!(prior_ns("Footprint", n) > prior_ns("Ideal", n));
        assert!(prior_ns("Unison-1984B", n) > prior_ns("Ideal", n));
    }

    #[test]
    fn predictions_fall_back_to_the_prior_then_learn() {
        let grid = ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search()])
            .sizes([128 << 20]);
        let cells = grid.cells(42);
        let mut m = CostModel::new();
        let unison = &cells[0];
        let ideal = &cells[1];
        assert!(m.predict(unison, 1000) > m.predict(ideal, 1000));
        m.record(
            &unison.design.name(),
            unison.workload.name,
            &unison.scenario.name,
            unison.cache_bytes,
            7,
        );
        assert_eq!(m.predict(unison, 1000), 7);
    }

    #[test]
    fn lpt_order_is_descending_cost_with_index_ties() {
        let costs = [5, 9, 9, 1];
        let mut idx = vec![0, 1, 2, 3];
        order_lpt(&costs, &mut idx);
        assert_eq!(idx, vec![1, 2, 0, 3]);
    }

    #[test]
    fn balanced_partition_splits_a_skewed_load_evenly() {
        // One heavy item and three light ones: LPT puts the heavy item
        // alone and packs the rest together.
        let costs = [90, 30, 30, 30];
        let bins = partition_balanced(&costs, 2);
        assert_eq!(bins, vec![vec![0], vec![1, 2, 3]]);
        let loads = bin_loads(&costs, &bins);
        assert_eq!(loads, vec![90, 90]);
        assert!((imbalance_ratio(&loads) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio_handles_degenerate_inputs() {
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0, 0]), 1.0);
        assert!((imbalance_ratio(&[30, 10]) - 1.5).abs() < 1e-12);
    }

    /// Makespan (max bin load) of the blind `key % N` partition over the
    /// same plan, for comparison with the balanced packing.
    fn hash_makespan(costs: &[u64], keys: &[CellKey], bins: u32) -> u64 {
        let mut loads = vec![0u64; bins.max(1) as usize];
        for (i, key) in keys.iter().enumerate() {
            loads[key.shard_of(bins) as usize] += costs[i];
        }
        loads.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn balanced_beats_blind_hashing_on_the_headline_grid_prior() {
        // The real grid shape: designs × workloads × sizes, prior-only
        // model (what a first orchestrated run uses).
        let grid = ScenarioGrid::new()
            .designs([
                Design::Alloy,
                Design::Footprint,
                Design::Unison,
                Design::Ideal,
            ])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([128 << 20, 256 << 20]);
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid, true);
        let keys: Vec<CellKey> = plan.cells.iter().map(|pc| pc.key).collect();
        // Prior-only model (a first orchestrated run) and a model that
        // learned BENCH_v8-like per-design means (every later run).
        let mut learned = CostModel::new();
        for pc in &plan.cells {
            let ns = match pc.cell.design {
                Design::Ideal => 1_062_000_000,
                Design::Footprint => 2_190_000_000,
                Design::Alloy => 2_379_000_000,
                _ => 2_860_000_000,
            };
            learned.record(
                &pc.cell.design.name(),
                pc.cell.workload.name,
                &pc.cell.scenario.name,
                pc.cell.cache_bytes,
                ns,
            );
        }
        for model in [CostModel::new(), learned] {
            let costs = model.plan_costs(&plan, cfg.accesses);
            for workers in [2u32, 3, 4] {
                let balanced = partition_balanced(&costs, workers);
                let makespan = *bin_loads(&costs, &balanced).iter().max().unwrap();
                assert!(
                    makespan <= hash_makespan(&costs, &keys, workers),
                    "balanced worse than hash at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn partition_matches_a_sharded_executor_shape() {
        // A balanced partition must be a drop-in replacement for the
        // key-hash partition: same plan coverage, disjoint shards.
        let grid = ScenarioGrid::new()
            .designs([Design::Unison, Design::Ideal])
            .workloads([workloads::web_search(), workloads::data_serving()])
            .sizes([128 << 20]);
        let cfg = SimConfig::quick_test();
        let plan = TaskPlan::lower(&cfg, &grid, true);
        let model = CostModel::new();
        let bins = model.partition(&plan, cfg.accesses, 2);
        let mut all: Vec<usize> = bins.concat();
        all.sort_unstable();
        assert_eq!(all, (0..plan.cells.len()).collect::<Vec<_>>());
        // And the hash partition covers the same universe.
        let hash_all: usize = (0..2)
            .map(|i| {
                ShardedExecutor::new(ShardSpec::new(i, 2).unwrap())
                    .assigned(&plan)
                    .len()
            })
            .sum();
        assert_eq!(hash_all, plan.cells.len());
    }

    proptest! {
        /// Balanced partitions are complete and disjoint for arbitrary
        /// cost vectors and worker counts.
        #[test]
        fn partition_is_complete_and_disjoint(
            costs in proptest::collection::vec(0u64..1_000_000, 0..64),
            bins in 1u32..9,
        ) {
            let assignment = partition_balanced(&costs, bins);
            prop_assert_eq!(assignment.len(), bins as usize);
            let mut seen: Vec<usize> = assignment.concat();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..costs.len()).collect();
            prop_assert_eq!(seen, expect, "every index exactly once");
        }

        /// The packing is a deterministic pure function of its inputs —
        /// the cross-process agreement `--partition balanced` relies on.
        #[test]
        fn partition_is_deterministic(
            costs in proptest::collection::vec(0u64..1_000_000, 0..64),
            bins in 1u32..9,
        ) {
            prop_assert_eq!(
                partition_balanced(&costs, bins),
                partition_balanced(&costs, bins)
            );
        }

        /// The packing honours the list-scheduling guarantee
        /// `bins × makespan ≤ total + (bins-1) × max_item` — the bound
        /// that makes it at most one item away from the mean load any
        /// partition (including `key % N`) must reach or exceed.
        #[test]
        fn partition_respects_the_greedy_bound(
            costs in proptest::collection::vec(0u64..1_000_000, 0..64),
            bins in 1u32..9,
        ) {
            let assignment = partition_balanced(&costs, bins);
            let makespan = bin_loads(&costs, &assignment).iter().copied().max().unwrap_or(0);
            let total: u128 = costs.iter().map(|&c| u128::from(c)).sum();
            let max_item = u128::from(costs.iter().copied().max().unwrap_or(0));
            prop_assert!(
                u128::from(makespan) * u128::from(bins)
                    <= total + (u128::from(bins) - 1) * max_item
            );
        }
    }
}
